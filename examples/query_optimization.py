"""Query decomposition and parameter tuning (Sections VI-B / VI-C).

Decomposes a cyclic query with each strategy, compares the search depth
``D`` each one pays, and runs the paper's offline grid search for the
(alpha, lambda) parameters.

Run:  python examples/query_optimization.py
"""

from repro import Star, dbpedia_like, decompose, tune_parameters
from repro.query import complex_workload
from repro.similarity import ScoringConfig, ScoringFunction


def main() -> None:
    graph = dbpedia_like(scale=0.3)
    scorer = ScoringFunction(graph, ScoringConfig(fast=True))
    print(f"Data graph: {graph}\n")

    workload = complex_workload(graph, 4, shape=(4, 5), seed=71)
    query = workload[0]
    print(f"Sample query: {query}")
    for node in query.nodes:
        print(f"  node {node.id}: {node.label!r} type={node.type!r}")
    for edge in query.edges:
        print(f"  edge {edge.src}-{edge.dst}: {edge.label!r}")

    print("\nDecompositions:")
    for method in ("rand", "maxdeg", "simsize", "simtop", "simdec"):
        result = decompose(query, method, scorer=scorer)
        stars = ", ".join(
            f"pivot {p} ({s.num_edges} edges)"
            for p, s in zip(result.pivots, result.stars)
        )
        print(f"  {method:8s} -> {result.num_stars} stars: {stars}")

    print("\nSearch depth D per method (k=10):")
    for method in ("rand", "maxdeg", "simsize", "simtop", "simdec"):
        engine = Star(graph, scorer=scorer, decomposition_method=method)
        total = 0
        for q in workload:
            engine.search(q, 10)
            total += engine.total_depth or 0
        print(f"  {method:8s} D = {total}")

    print("\nOffline (alpha, lambda) grid search (Section VI-C):")
    result = tune_parameters(
        scorer, workload[:2], k=5,
        alphas=[0.3, 0.5, 0.7], lams=[0.5, 1.0],
    )
    print(f"  best alpha={result.alpha} lambda={result.lam} "
          f"(total depth {result.total_depth})")
    for (alpha, lam), depth in sorted(result.grid.items()):
        print(f"    alpha={alpha} lambda={lam}: D={depth}")


if __name__ == "__main__":
    main()
