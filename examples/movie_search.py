"""The paper's running example (Fig. 1) on a generated movie-domain graph.

Demonstrates d-bounded matching: the query edge (movie maker, award) is
matched to a *path* through an intermediate film node, exactly Example 3
of the paper.

Run:  python examples/movie_search.py
"""

from repro import Star, dbpedia_like, star_query
from repro.core import StarDSearch
from repro.similarity import ScoringFunction


def describe(graph, match) -> str:
    parts = []
    for qid, node in sorted(match.assignment.items()):
        data = graph.node(node)
        parts.append(f"{qid}={data.name}[{data.type}]")
    hops = ", ".join(f"e{eid}:{h}hop" for eid, h in sorted(match.edge_hops.items()))
    return f"score={match.score:.3f}  {'  '.join(parts)}  ({hops})"


def main() -> None:
    graph = dbpedia_like(scale=0.3)
    print(f"Data graph: {graph}")
    scorer = ScoringFunction(graph)

    # Fig. 1: movie makers who worked with "Brad" and have won awards.
    # The (maker, award) edge may match a 2-hop path maker -> film -> award.
    query = star_query(
        "?",
        [("collaborated_with", "Brad"), ("?", "Academy Award")],
        pivot_type="director",
        leaf_types=["", "award"],
    )
    print(f"Query: {query}\n")

    print("Exact matching (d=1): the award must be a direct neighbor --")
    engine = Star(graph, scorer=scorer, d=1)
    exact = engine.search(query, k=3)
    if exact:
        for match in exact:
            print("  " + describe(graph, match))
    else:
        print("  no exact matches (the award is reached through a film)")

    print("\nd-bounded matching (d=2, procedure stard): edges match paths --")
    stard = StarDSearch(scorer, d=2)
    from repro.query import StarQuery

    for match in stard.search(query, k=3):
        print("  " + describe(graph, match))
    print("\nPath matches (2hop edges) surface the Example-3 interpretation:"
          "\nan award won by the maker's film counts, discounted by"
          " lambda^(h-1).")


if __name__ == "__main__":
    main()
