"""Quickstart: build a knowledge graph, pose a star query, get top-k.

Run:  python examples/quickstart.py
"""

from repro import KnowledgeGraph, Star, star_query


def build_graph() -> KnowledgeGraph:
    """A small movie knowledge graph (the paper's Fig. 1 world)."""
    g = KnowledgeGraph(name="movies")
    brad = g.add_node("Brad Pitt", "actor", ["drama"])
    angelina = g.add_node("Angelina Jolie", "actor")
    richard = g.add_node("Richard Linklater", "director")
    kathryn = g.add_node("Kathryn Bigelow", "director")
    troy = g.add_node("Troy", "film", ["war"])
    boyhood = g.add_node("Boyhood", "film", ["drama"])
    hurt = g.add_node("The Hurt Locker", "film", ["war"])
    oscar = g.add_node("Academy Award", "award")
    globe = g.add_node("Golden Globe", "award")
    g.add_edge(brad, troy, "acted_in")
    g.add_edge(brad, boyhood, "acted_in")
    g.add_edge(angelina, troy, "acted_in")
    g.add_edge(richard, boyhood, "directed")
    g.add_edge(kathryn, hurt, "directed")
    g.add_edge(boyhood, oscar, "film_won")
    g.add_edge(hurt, oscar, "film_won")
    g.add_edge(richard, globe, "won")
    g.add_edge(kathryn, oscar, "won")
    g.add_edge(brad, richard, "collaborated_with")
    return g


def main() -> None:
    graph = build_graph()
    print(f"Graph: {graph}")

    # "Find directors who worked with Brad and have won awards."
    query = star_query(
        "?",
        [("collaborated_with", "Brad"), ("won", "?")],
        pivot_type="director",
        leaf_types=["actor", "award"],
    )
    print(f"Query: {query}")

    engine = Star(graph)
    for rank, match in enumerate(engine.search(query, k=3), start=1):
        names = {
            qid: graph.node(v).name for qid, v in sorted(match.assignment.items())
        }
        print(f"  #{rank}  score={match.score:.3f}  {names}")


if __name__ == "__main__":
    main()
