"""Training the ranking function (the paper's learned 46-measure scorer).

Learns measure weights from synthetic labelled pairs on a generated
graph, evaluates holdout accuracy, and shows how the learned weights
change a query's ranking versus the shipped defaults.

Run:  python examples/custom_scoring.py
"""

from repro import Star, learn_weights, star_query, yago2_like
from repro.similarity import (
    DEFAULT_NODE_WEIGHTS,
    ScoringConfig,
    ScoringFunction,
    evaluate_weights,
)


def main() -> None:
    graph = yago2_like(scale=0.4)
    print(f"Data graph: {graph}\n")

    print("Learning measure weights from 400 synthetic labelled pairs ...")
    weights = learn_weights(graph, num_pairs=400, seed=5)
    accuracy = evaluate_weights(graph, weights, num_pairs=200)
    print(f"holdout accuracy: {accuracy:.2%}")

    ranked = sorted(weights.items(), key=lambda t: -t[1])[:8]
    print("\nheaviest learned measures:")
    for name, weight in ranked:
        default = DEFAULT_NODE_WEIGHTS.get(name, 0.0)
        print(f"  {name:24s} learned={weight:6.3f}  default={default:4.1f}")

    query = star_query(
        "Brad", [("acted_in", "?")], pivot_type="actor", leaf_types=["film"]
    )
    print(f"\nQuery: {query}")
    for label, config in (
        ("default weights", ScoringConfig()),
        ("learned weights", ScoringConfig(node_weights=weights)),
    ):
        engine = Star(graph, scorer=ScoringFunction(graph, config))
        matches = engine.search(query, k=3)
        print(f"\ntop-3 with {label}:")
        for match in matches:
            pivot = graph.node(match.assignment[0]).name
            print(f"  score={match.score:.3f}  pivot={pivot}")


if __name__ == "__main__":
    main()
