"""Mini Exp-5: BFS graph expansion and algorithm scaling.

Builds the nested G1..G3 series from a freebase-like universe with the
paper's expansion protocol and compares all four matchers on each.

Run:  python examples/scalability_study.py
"""

import time

from repro import freebase_like
from repro.eval.harness import run_star_workload
from repro.graph.sampling import scalability_series
from repro.query import star_workload
from repro.similarity import ScoringConfig, ScoringFunction


def main() -> None:
    universe = freebase_like(scale=0.8)
    print(f"Universe: {universe}")
    series = scalability_series(universe, [3000, 6000, 9000], seed=81)
    for i, graph in enumerate(series, start=1):
        print(f"  G{i}: {graph.num_nodes} nodes, {graph.num_edges} edges")

    print("\nAverage runtime per query (k=10, d=2, 5 star queries):")
    header = f"{'graph':8s}" + "".join(
        f"{name:>10s}" for name in ("stark", "stard", "graphta", "bp")
    )
    print(header)
    for i, graph in enumerate(series, start=1):
        scorer = ScoringFunction(graph, ScoringConfig(fast=True))
        workload = star_workload(graph, 5, seed=82)
        results = run_star_workload(
            scorer, workload, ("stark", "stard", "graphta", "bp"), k=10, d=2
        )
        cells = "".join(
            f"{results[name].avg_ms:9.1f}m"
            for name in ("stark", "stard", "graphta", "bp")
        )
        print(f"G{i:<7d}{cells}")
    print("\n(stard's message passing avoids the per-pivot d-hop traversal"
          "\nthat makes stark/graphTA/BP grow with the graph.)")


if __name__ == "__main__":
    main()
