"""RDF-style querying: the text query language + directed matching.

Shows (a) writing queries in the edge-pattern language instead of the
programmatic API, (b) enforcing edge orientation (SPARQL-style triple
patterns), and (c) explaining why the top match scored what it did.

Run:  python examples/rdf_style_search.py
"""

from repro import Star, dbpedia_like
from repro.query import parse_query
from repro.similarity import ScoringFunction
from repro.similarity.explain import explain_match

QUERY_TEXT = """
# films directed by someone who also won an award
(?film:film) <-[directed]- (?maker:director)
(?maker) -[won]-> (?prize:award)
"""


def main() -> None:
    graph = dbpedia_like(scale=0.3)
    scorer = ScoringFunction(graph)
    print(f"Data graph: {graph}\n")

    query = parse_query(QUERY_TEXT, name="rdf-style")
    print("Parsed query:")
    for node in query.nodes:
        print(f"  node {node.id}: {node.label!r} type={node.type!r}")
    for edge in query.edges:
        print(f"  edge: {edge.src} -[{edge.label}]-> {edge.dst}")

    print("\nUndirected matching (default -- arrowheads are intent only):")
    engine = Star(graph, scorer=scorer)
    undirected = engine.search(query, 3)
    for match in undirected:
        names = [graph.node(v).name for _q, v in sorted(match.assignment.items())]
        print(f"  score={match.score:.3f}  {names}")

    print("\nDirected matching (orientation enforced, SPARQL-style):")
    engine = Star(graph, scorer=scorer, directed=True)
    directed = engine.search(query, 3)
    for match in directed:
        names = [graph.node(v).name for _q, v in sorted(match.assignment.items())]
        print(f"  score={match.score:.3f}  {names}")
    print(f"\n(directed admits a subset: {len(directed)} of "
          f"{len(undirected)} undirected top matches survive orientation)")

    if directed:
        print("\nWhy the top match scored what it did:")
        print(explain_match(scorer, query, directed[0]))


if __name__ == "__main__":
    main()
