"""Unit tests for the observability core: metrics, tracer, determinism."""

import json

import pytest

from repro import obs
from repro.core.stark import StarKSearch
from repro.core.stard import StarDSearch
from repro.obs import Histogram, MetricsRegistry, Tracer
from repro.obs.tracer import NOOP_SPAN
from repro.query import star_query
from repro.similarity import ScoringFunction

from tests.conftest import build_random_graph


class TestCounterGauge:
    def test_counter_increments(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(4)
        assert registry.counter("hits").value == 5

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("depth").set(3.0)
        registry.gauge("depth").set(1.5)
        assert registry.gauge("depth").value == 1.5


class TestHistogram:
    def test_percentiles_nearest_rank(self):
        h = Histogram("ms")
        for value in [5, 1, 4, 2, 3]:
            h.observe(value)
        assert h.count == 5
        assert h.min == 1 and h.max == 5
        assert h.percentile(50) == 3
        assert h.percentile(95) == 5
        assert h.percentile(99) == 5
        assert h.mean == pytest.approx(3.0)

    def test_percentile_order_independent(self):
        a, b = Histogram("a"), Histogram("b")
        values = [0.5, 9.0, 2.2, 7.1, 3.3]
        for v in values:
            a.observe(v)
        for v in reversed(values):
            b.observe(v)
        for p in (50, 95, 99):
            assert a.percentile(p) == b.percentile(p)

    def test_sample_retention_bound(self):
        h = Histogram("ms", max_samples=10)
        for i in range(25):
            h.observe(float(i))
        assert h.count == 25
        assert len(h.samples) == 10
        assert h.as_dict()["truncated"] is True
        assert h.max == 24.0  # extremes keep accumulating past the bound

    def test_empty_histogram_exports(self):
        h = Histogram("ms")
        out = h.as_dict()
        assert out["count"] == 0 and out["p50"] is None


class TestRegistryMerge:
    def test_worker_snapshots_merge_exactly(self):
        workers = []
        for offset in range(3):
            r = MetricsRegistry()
            r.counter("cache.hits").inc(offset + 1)
            r.gauge("depth").set(float(offset))
            for i in range(4):
                r.histogram("ms").observe(offset * 10.0 + i)
            workers.append(r.as_dict(include_samples=True))
        merged = MetricsRegistry.merged(workers)
        assert merged.counter("cache.hits").value == 6
        assert merged.gauge("depth").value == 2.0
        assert merged.histogram("ms").count == 12
        assert merged.histogram("ms").max == 23.0

    def test_as_dict_is_json_safe_and_sorted(self):
        r = MetricsRegistry()
        r.counter("b").inc()
        r.counter("a").inc()
        r.histogram("h").observe(1.0)
        out = r.as_dict()
        json.dumps(out)  # must not raise
        assert list(out["counters"]) == ["a", "b"]


class TestTracer:
    def test_nesting_builds_tree(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner.a"):
                pass
            with tracer.span("inner.b", items=3):
                pass
        assert len(tracer.roots) == 1
        root = tracer.roots[0]
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner.a", "inner.b"]
        assert root.children[1].attrs == {"items": 3}
        assert root.wall_ms >= 0.0 and root.cpu_ms >= 0.0

    def test_every_span_feeds_duration_histogram(self):
        tracer = Tracer()
        with tracer.span("phase"):
            pass
        with tracer.span("phase"):
            pass
        assert tracer.registry.histogram("span.phase.ms").count == 2

    def test_iter_spans_preorder_paths(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        paths = [path for _s, _d, path in tracer.iter_spans()]
        assert paths == ["a", "a/b"]

    def test_format_tree_renders_wall_and_cpu(self):
        tracer = Tracer()
        with tracer.span("stark.search", k=5):
            with tracer.span("stark.pivot_search"):
                pass
        text = tracer.format_tree()
        assert "stark.search" in text
        assert "  stark.pivot_search" in text
        assert "wall" in text and "cpu" in text and "k=5" in text


class TestGlobalHooks:
    def test_disabled_hooks_are_noops(self):
        assert not obs.is_enabled()
        assert obs.trace("anything") is NOOP_SPAN
        obs.count("nope")
        obs.observe("nope", 1.0)
        obs.set_gauge("nope", 1.0)
        assert obs.snapshot() is None
        assert obs.registry() is None

    def test_capture_restores_previous_state(self):
        assert not obs.is_enabled()
        with obs.capture() as outer:
            assert obs.is_enabled()
            obs.count("events")
            with obs.capture() as inner:
                assert obs.active_tracer() is inner
                obs.count("events")
            assert obs.active_tracer() is outer
        assert not obs.is_enabled()
        assert outer.registry.counter("events").value == 1
        assert inner.registry.counter("events").value == 1

    def test_capture_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with obs.capture():
                raise RuntimeError("boom")
        assert not obs.is_enabled()

    def test_enabled_hooks_record(self):
        with obs.capture() as tracer:
            with obs.trace("unit.phase", n=2):
                obs.count("unit.events", 3)
                obs.observe("unit.ms", 1.5)
                obs.set_gauge("unit.depth", 4.0)
        snap = tracer.registry.as_dict()
        assert snap["counters"]["unit.events"] == 3
        assert snap["histograms"]["unit.ms"]["count"] == 1
        assert snap["gauges"]["unit.depth"] == 4.0
        assert tracer.roots[0].name == "unit.phase"


class TestTraceDeterminism:
    """Satellite: same seed + query => byte-identical JSONL trace
    modulo timestamps (``include_timing=False``)."""

    @pytest.mark.parametrize("algo,d", [("stark", 1), ("stard", 2)])
    def test_jsonl_trace_byte_identical(self, algo, d):
        star = star_query(
            "Brad", [("acted_in", "?"), ("won", "?")], pivot_type="actor"
        )
        exports = []
        for _run in range(2):
            scorer = ScoringFunction(build_random_graph(7))
            cls = StarKSearch if algo == "stark" else StarDSearch
            with obs.capture() as tracer:
                cls(scorer, d=d).search(star, 4)
            exports.append(tracer.export_jsonl(include_timing=False))
        assert exports[0] == exports[1]
        assert exports[0].endswith("\n")
        # Each line is standalone JSON with deterministic fields only.
        for line in exports[0].splitlines():
            record = json.loads(line)
            assert set(record) <= {"name", "depth", "path", "attrs"}

    def test_jsonl_with_timing_has_clock_fields(self):
        with obs.capture() as tracer:
            with obs.trace("x"):
                pass
        record = json.loads(tracer.export_jsonl().splitlines()[0])
        assert "wall_ms" in record and "cpu_ms" in record

    def test_export_json_document(self):
        with obs.capture() as tracer:
            with obs.trace("x", k=1):
                pass
        doc = json.loads(tracer.export_json())
        assert doc["spans"][0]["name"] == "x"
