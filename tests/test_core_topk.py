"""Tests for Lemma 2 / Proposition 3 selection utilities."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.topk import (
    kth_largest_sum_bound,
    prop3_keep_sets,
    prop3_prune,
    top_k,
    top_k_items,
    top_k_sorted,
)

small_lists = st.lists(
    st.lists(st.floats(min_value=0.0, max_value=1.0,
                       allow_nan=False, allow_infinity=False),
             min_size=1, max_size=6),
    min_size=1, max_size=4,
)


class TestTopK:
    def test_basic(self):
        assert sorted(top_k([3, 1, 4, 1, 5], 2)) == [4, 5]

    def test_sorted(self):
        assert top_k_sorted([3, 1, 4, 1, 5], 3) == [5, 4, 3]

    def test_k_zero(self):
        assert top_k([1, 2], 0) == []

    def test_k_exceeds_n(self):
        assert top_k_sorted([2, 1], 5) == [2, 1]

    def test_items_payloads_not_compared(self):
        # Equal scores with un-comparable payloads must not raise.
        items = [(1.0, {"a": 1}), (1.0, {"b": 2}), (0.5, {"c": 3})]
        best = top_k_items(items, 2)
        assert [score for score, _p in best] == [1.0, 1.0]


class TestProp3:
    def test_paper_example_structure(self):
        """Example 5: three lists, k=3 -> keep each max + 2 more numbers."""
        lists = [[0.9, 0.2, 0.1], [0.7, 0.5, 0.1], [0.8, 0.7, 0.2]]
        keep = prop3_keep_sets(lists, 3)
        total_kept = sum(len(idxs) for idxs in keep)
        assert total_kept <= 3 + 3 - 1
        # Each list's max survives.
        for idxs, values in zip(keep, lists):
            assert max(range(len(values)), key=values.__getitem__) in idxs

    @given(small_lists, st.integers(min_value=1, max_value=5))
    @settings(max_examples=200, deadline=None)
    def test_pruned_lists_preserve_topk_sums(self, lists, k):
        """Core Prop. 3 guarantee: pruning never changes the top-k sums."""
        keep = prop3_keep_sets(lists, k)
        pruned = [
            [values[i] for i in sorted(set(idxs))]
            for idxs, values in zip(keep, lists)
        ]
        full_sums = sorted(
            (sum(c) for c in itertools.product(*lists)), reverse=True
        )
        pruned_sums = sorted(
            (sum(c) for c in itertools.product(*pruned)), reverse=True
        )
        top = min(k, len(full_sums))
        assert pruned_sums[:top] == pytest.approx(full_sums[:top])

    @given(small_lists, st.integers(min_value=1, max_value=4))
    @settings(max_examples=100, deadline=None)
    def test_size_bound(self, lists, k):
        """|L~| <= k + s - 1 as Proposition 3 states."""
        keep = prop3_keep_sets(lists, k)
        assert sum(len(set(idxs)) for idxs in keep) <= k + len(lists) - 1

    def test_prune_payloads(self):
        lists = [
            [(0.9, "a"), (0.1, "b")],
            [(0.8, "c"), (0.7, "d"), (0.2, "e")],
        ]
        pruned = prop3_prune(lists, k=2)
        # Sorted decreasing, maxima retained.
        assert pruned[0][0] == (0.9, "a")
        assert pruned[1][0] == (0.8, "c")
        for entries in pruned:
            scores = [s for s, _p in entries]
            assert scores == sorted(scores, reverse=True)

    def test_kth_largest_sum_bound_reference(self):
        lists = [[1.0, 0.5], [0.4, 0.2]]
        assert kth_largest_sum_bound(lists, 1) == pytest.approx(1.4)
        assert kth_largest_sum_bound(lists, 2) == pytest.approx(1.2)
        assert kth_largest_sum_bound(lists, 99) == pytest.approx(0.7)

    def test_empty_candidate_list_yields_empty_keep_sets(self):
        """No combination exists when any leaf list is empty: the keep
        sets must be empty rather than raising from ``max()``."""
        lists = [[0.9, 0.2], [], [0.8]]
        assert prop3_keep_sets(lists, 3) == [[], [], []]
        assert prop3_keep_sets([[], []], 1) == [[], []]

    def test_prune_with_empty_list(self):
        lists = [[(0.9, "a")], []]
        assert prop3_prune(lists, k=2) == [[], []]

    def test_kth_largest_sum_bound_rejects_bad_k(self):
        lists = [[1.0], [0.4]]
        with pytest.raises(ValueError, match="k must be >= 1"):
            kth_largest_sum_bound(lists, 0)
        with pytest.raises(ValueError, match="k must be >= 1"):
            kth_largest_sum_bound(lists, -3)

    def test_kth_largest_sum_bound_rejects_empty_list(self):
        with pytest.raises(ValueError, match="at least one input list"):
            kth_largest_sum_bound([[1.0], []], 1)
