"""Smoke tests: every example script runs to completion and produces the
expected output markers."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

EXPECTED_MARKERS = {
    "quickstart.py": ["Graph:", "score="],
    "movie_search.py": ["d-bounded matching", "2hop"],
    "query_optimization.py": ["Decompositions:", "best alpha="],
    "scalability_study.py": ["G1", "stard"],
    "custom_scoring.py": ["holdout accuracy", "learned weights"],
    "rdf_style_search.py": ["Directed matching", "match score"],
}


def test_every_example_is_covered():
    scripts = {f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")}
    assert scripts == set(EXPECTED_MARKERS)


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    for marker in EXPECTED_MARKERS[script]:
        assert marker in result.stdout, (script, marker)
