"""Cross-algorithm agreement on a second topology (schema-generated).

The main property tests run on random and movie-domain graphs; this file
repeats the agreement checks on a structurally different domain (a
citation network built with the user-facing Schema API) to guard against
topology-specific bugs.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import GraphTA, brute_force_star, brute_force_topk
from repro.core import HybridStarSearch, Star, StarDSearch, StarKSearch
from repro.graph.schema import Schema
from repro.query import Query, StarQuery, star_query
from repro.similarity import ScoringFunction

_SCORERS = {}


def citation_scorer(seed: int) -> ScoringFunction:
    if seed not in _SCORERS:
        schema = Schema(name=f"citations-{seed}")
        schema.add_node_type("author", share=0.35, name_style="person")
        schema.add_node_type("paper", share=0.45, name_style="title")
        schema.add_node_type("venue", share=0.1, name_style="org")
        schema.add_node_type("topic", share=0.1, name_style="generic")
        schema.add_relation("wrote", "author", "paper", weight=3.0)
        schema.add_relation("cites", "paper", "paper", weight=2.0)
        schema.add_relation("published_at", "paper", "venue", weight=1.0)
        schema.add_relation("about", "paper", "topic", weight=1.0)
        schema.add_relation("advises", "author", "author", weight=0.5)
        graph = schema.generate(num_nodes=250, avg_degree=5.0, seed=seed)
        _SCORERS[seed] = ScoringFunction(graph)
    return _SCORERS[seed]


class TestCitationTopology:
    @given(
        seed=st.integers(min_value=0, max_value=25),
        k=st.integers(min_value=1, max_value=5),
        d=st.integers(min_value=1, max_value=2),
    )
    @settings(max_examples=20, deadline=None)
    def test_star_matchers_agree(self, seed, k, d):
        scorer = citation_scorer(seed)
        star = star_query(
            "?", [("wrote", "?"), ("advises", "?")],
            pivot_type="author", leaf_types=["paper", "author"],
        )
        want = [round(m.score, 9) for m in
                brute_force_star(scorer, star, k, d=d)]
        assert [round(m.score, 9) for m in
                StarKSearch(scorer, d=d).search(star, k)] == want
        assert [round(m.score, 9) for m in
                StarDSearch(scorer, d=d).search(star, k)] == want
        assert [round(m.score, 9) for m in
                HybridStarSearch(scorer, d=d).search(star, k)] == want

    @given(seed=st.integers(min_value=0, max_value=15))
    @settings(max_examples=10, deadline=None)
    def test_cyclic_join_agrees(self, seed):
        scorer = citation_scorer(seed)
        # paper cites paper; both share a venue: a triangle pattern.
        query = Query(name="cite-triangle")
        a = query.add_node("?", type="paper")
        b = query.add_node("?", type="paper")
        v = query.add_node("?", type="venue")
        query.add_edge(a, b, "cites")
        query.add_edge(a, v, "published_at")
        query.add_edge(b, v, "published_at")
        want = [round(m.score, 8) for m in
                brute_force_topk(scorer, query, 3)]
        engine = Star(scorer.graph, scorer=scorer,
                      decomposition_method="maxdeg")
        assert [round(m.score, 8) for m in engine.search(query, 3)] == want
        assert [round(m.score, 8) for m in
                GraphTA(scorer).search(query, 3)] == want
