"""Hypothesis differential tests: random mutate/search interleavings must
match a from-scratch rebuild byte-for-byte (the dynamic-update oracle)."""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.core.framework import Star
from repro.dynamic import apply_operation, apply_operations
from repro.eval.harness import disjoint_edge_stream
from repro.graph import KnowledgeGraph
from repro.perf import attach_cache
from repro.query.parser import parse_query

from tests.conftest import build_random_graph
from tests.oracle import assert_same_results

_TYPES = ("actor", "director", "film", "award", "place")
_RELATIONS = ("acted_in", "directed", "won", "born_in", "married_to")
_QUERIES = (
    "(?m:person) -[?]- (?f:film)",
    "(?m:actor) -[acted_in]- (?f:film)",
    "(?m:person) -[?]- (Entity 7 Beta:person)",
)


def _base_ops(rng, num_nodes=24, num_edges=40):
    """Op records that build a random-but-valid starting graph."""
    ops = [
        ["add_node", f"Entity {i} {rng.choice(['Alpha', 'Beta', 'Gamma'])}",
         rng.choice(_TYPES)]
        for i in range(num_nodes)
    ]
    seen = set()
    while sum(1 for op in ops if op[0] == "add_edge") < num_edges:
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a == b or (a, b) in seen:
            continue
        seen.add((a, b))
        ops.append(["add_edge", a, b, rng.choice(_RELATIONS)])
    return ops


def _random_mutation(rng, graph):
    """One valid mutation record against the graph's current state."""
    live_nodes = list(graph.nodes())
    live_edges = [eid for eid, _s, _d in graph.edges()]
    choices = ["add_node", "add_edge", "update_node_attrs"]
    if live_edges:
        choices += ["remove_edge", "update_edge"]
    if len(live_nodes) > 4:
        choices.append("remove_node")
    kind = rng.choice(choices)
    if kind == "add_node":
        return ["add_node", f"Late {rng.randrange(10**6)}",
                rng.choice(_TYPES)]
    if kind == "add_edge":
        for _ in range(20):
            a, b = rng.sample(live_nodes, 2)
            return ["add_edge", a, b, rng.choice(_RELATIONS)]
    if kind == "remove_edge":
        return ["remove_edge", rng.choice(live_edges)]
    if kind == "remove_node":
        return ["remove_node", rng.choice(live_nodes)]
    if kind == "update_node_attrs":
        return ["update_node_attrs", rng.choice(live_nodes),
                {"touched": rng.randrange(100)}]
    return ["update_edge", rng.choice(live_edges),
            rng.choice(_RELATIONS)]


class TestMutateSearchOracle:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_interleaved_mutations_match_rebuild(self, seed):
        rng = random.Random(seed)
        applied = _base_ops(rng)
        live = KnowledgeGraph("live")
        apply_operations(live, applied)
        engine = Star(live, d=1)
        attach_cache(engine.scorer)

        query = parse_query(rng.choice(_QUERIES), name="q")
        for _round in range(3):
            for _ in range(rng.randint(1, 4)):
                # Generate against the *current* state so a record never
                # names an id a previous record in the batch removed.
                record = _random_mutation(rng, live)
                apply_operation(live, record)
                applied.append(record)
            engine.scorer.refresh()
            got = engine.search(query, 5)

            # Oracle: replay the identical op sequence into a fresh graph
            # and search with a cold engine (no cache, no memos to reuse).
            fresh = KnowledgeGraph("fresh")
            apply_operations(fresh, applied)
            expected = Star(fresh, d=1).search(query, 5)
            assert_same_results(got, expected)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_snapshot_of_mutated_graph_matches_rebuild(self, seed, tmp_path_factory):
        rng = random.Random(seed)
        applied = _base_ops(rng)
        live = KnowledgeGraph("live")
        apply_operations(live, applied)
        for _ in range(5):
            record = _random_mutation(rng, live)
            apply_operation(live, record)
            applied.append(record)

        path = tmp_path_factory.mktemp("snap") / f"g{seed}.kgs"
        live.save(path)
        loaded = KnowledgeGraph.load(path)

        fresh = KnowledgeGraph("fresh")
        apply_operations(fresh, applied)
        query = parse_query(rng.choice(_QUERIES), name="q")
        assert_same_results(
            Star(loaded, d=1).search(query, 5),
            Star(fresh, d=1).search(query, 5),
        )


class TestDisjointMutationSurvival:
    def test_survivals_nonzero_for_disjoint_mutations(self):
        graph = build_random_graph(seed=23, num_nodes=150, num_edges=320)
        query = parse_query("(?m:person) -[?]- (Brad Pitt:person)", name="q")
        engine = Star(graph, d=1)
        cache = attach_cache(engine.scorer)
        baseline = engine.search(query, 5)
        assert engine.search(query, 5) is not None  # warm hit pass
        assert cache.stats.hits > 0

        footprint = frozenset().union(
            *(entry.deps[0] for entry in cache._data.values()
              if entry.deps))
        stream = disjoint_edge_stream(graph, 30, avoid=footprint, seed=7)
        assert stream
        apply_operations(graph, stream)
        engine.scorer.refresh()
        after = engine.search(query, 5)

        assert cache.stats.survivals > 0
        assert cache.stats.invalidations == 0
        assert_same_results(after, baseline)
