"""Dynamic-update subsystem: mutations, journal, fine-grained cache
invalidation, scorer refresh, snapshots, and mutation streams."""

from __future__ import annotations

import os

import pytest

from tests.conftest import build_movie_graph, build_random_graph
from repro.core.framework import Star
from repro.dynamic import (
    Delta,
    DeltaJournal,
    apply_operation,
    apply_operations,
    load_any,
    load_operations,
    load_snapshot,
    save_operations,
    save_snapshot,
)
from repro.errors import DatasetError, GraphError, ScoringError
from repro.eval.harness import disjoint_edge_stream
from repro.graph import KnowledgeGraph, load_graph, save_graph
from repro.graph.sketch import NeighborhoodSketch
from repro.perf import attach_cache
from repro.query.parser import parse_query
from repro.similarity.scoring import ScoringFunction
from repro import textutil

from tests.oracle import assert_same_results


# ----------------------------------------------------------------------
# Mutation API
# ----------------------------------------------------------------------
class TestMutations:
    def test_remove_edge(self):
        g = build_movie_graph()
        edges_before = g.num_edges
        src, dst, data = g.edge(0)
        removed = g.remove_edge(0)
        assert removed == data
        assert g.num_edges == edges_before - 1
        assert g.num_edge_slots == edges_before  # slot stays, tombstoned
        with pytest.raises(GraphError):
            g.edge(0)
        with pytest.raises(GraphError):
            g.remove_edge(0)
        assert (dst, 0) not in g.neighbors(src)
        assert (src, 0) not in g.neighbors(dst)

    def test_remove_node_cascades(self):
        g = build_movie_graph()
        victim = 0
        incident = [eid for _nbr, eid in g.neighbors(victim)]
        neighbors = [nbr for nbr, _eid in g.neighbors(victim)]
        nodes_before = g.num_nodes
        g.remove_node(victim)
        assert g.num_nodes == nodes_before - 1
        assert victim not in g
        assert not g.has_tombstones or g.num_node_slots == nodes_before
        with pytest.raises(GraphError):
            g.node(victim)
        for eid in incident:
            with pytest.raises(GraphError):
                g.edge(eid)
        for nbr in neighbors:
            assert all(n != victim for n, _e in g.neighbors(nbr))

    def test_ids_stable_after_removal(self):
        g = build_movie_graph()
        survivor_data = g.node(5)
        g.remove_node(2)
        assert g.node(5) == survivor_data  # same id still names same node
        new_id = g.add_node("Newcomer", "actor")
        assert new_id == g.num_node_slots - 1  # removed ids never reused

    def test_token_and_type_indexes_maintained(self):
        g = build_movie_graph()
        data = g.node(0)
        token = next(iter(data.tokens()))
        assert 0 in g.nodes_with_token(token)
        g.remove_node(0)
        assert 0 not in g.nodes_with_token(token)
        assert 0 not in g.nodes_of_type(data.type)
        assert 0 not in g.nodes_of_subtype(data.type)

    def test_types_drops_emptied_type(self):
        g = KnowledgeGraph("t")
        a = g.add_node("A", "onlytype")
        assert "onlytype" in g.types()
        g.remove_node(a)
        assert "onlytype" not in g.types()

    def test_vocabulary_drops_emptied_token(self):
        g = KnowledgeGraph("t")
        a = g.add_node("Zyzzyx", "place")
        assert "zyzzyx" in g.vocabulary()
        g.remove_node(a)
        assert "zyzzyx" not in g.vocabulary()

    def test_relations_refcounted(self):
        g = KnowledgeGraph("t")
        a, b, c = (g.add_node(n, "thing") for n in "abc")
        e1 = g.add_edge(a, b, "rel")
        e2 = g.add_edge(b, c, "rel")
        assert g.relations() == {"rel"}
        g.remove_edge(e1)
        assert g.relations() == {"rel"}
        g.remove_edge(e2)
        assert g.relations() == set()

    def test_max_degree_recomputed_on_removal(self):
        g = KnowledgeGraph("t")
        hub, a, b, c = (g.add_node(n, "thing") for n in "habc")
        eids = [g.add_edge(hub, other, "r") for other in (a, b, c)]
        assert g.max_degree == 3
        g.remove_edge(eids[0])
        assert g.max_degree == 2
        g.remove_node(hub)
        assert g.max_degree == 0

    def test_update_node_attrs_merges_and_deletes(self):
        g = KnowledgeGraph("t")
        a = g.add_node("A", "thing", born=1963, alive=True)
        g.update_node_attrs(a, born=None, oscar=1)
        assert g.node(a).attrs == {"alive": True, "oscar": 1}
        # name/type/keywords untouched; indexes still agree
        assert a in g.nodes_of_type("thing")

    def test_update_edge_relabel(self):
        g = KnowledgeGraph("t")
        a, b = g.add_node("A", "t"), g.add_node("B", "t")
        e = g.add_edge(a, b, "old", since=1999)
        g.update_edge(e, relation="new", since=None, until=2020)
        _s, _d, data = g.edge(e)
        assert data.relation == "new"
        assert data.attrs == {"until": 2020}
        assert g.relations() == {"new"}

    def test_add_edge_rejects_removed_endpoint(self):
        g = build_movie_graph()
        g.remove_node(3)
        with pytest.raises(GraphError):
            g.add_edge(0, 3, "r")

    def test_subtype_closure_maintained_incrementally(self):
        g = build_movie_graph()
        # Warm the lazily built closure, then mutate and compare against
        # a closure built from scratch on an equivalent graph.
        _ = g.nodes_of_subtype("person")
        g.remove_node(0)
        added = g.add_node("Fresh Actor", "actor")
        fresh = KnowledgeGraph("fresh")
        for node_id in g.nodes():
            data = g.node(node_id)
            fresh.add_node(data.name, data.type, data.keywords)
        expected_types = {fresh.node(i).type for i in fresh.nodes()}
        live = g.nodes_of_subtype("person")
        assert 0 not in live
        assert added in live


# ----------------------------------------------------------------------
# Delta journal
# ----------------------------------------------------------------------
class TestJournal:
    def test_each_mutation_appends_one_delta(self):
        g = KnowledgeGraph("t")
        a = g.add_node("A", "t")
        b = g.add_node("B", "t")
        e = g.add_edge(a, b, "r")
        g.update_edge(e, relation="r2")
        g.remove_edge(e)
        g.remove_node(b)
        assert g.version == 6
        assert len(g.journal) == 6
        assert g.journal.latest_version == 6

    def test_since_semantics(self):
        g = KnowledgeGraph("t", journal_limit=4)
        for i in range(6):
            g.add_node(f"N{i}", "t")
        assert g.delta_since(g.version).empty
        assert g.delta_since(g.version - 2).count == 2
        # Trimmed past: versions 1..2 are gone (limit 4, latest 6).
        assert g.delta_since(0) is None
        assert g.delta_since(1) is None
        assert g.delta_since(2) is not None

    def test_stats_changed_flags(self):
        g = KnowledgeGraph("t")
        a = g.add_node("A", "t")
        b = g.add_node("B", "t")
        c = g.add_node("C", "t")
        assert g.journal.entries()[-1].stats_changed  # node count moved
        g.add_edge(a, b, "r")
        assert g.journal.entries()[-1].stats_changed  # max degree 0 -> 1
        e = g.add_edge(a, c, "r")  # max degree 1 -> 2
        assert g.journal.entries()[-1].stats_changed
        g.add_edge(b, c, "r")  # degrees 2,2: max unchanged
        assert not g.journal.entries()[-1].stats_changed
        relabel = g.update_edge(e, relation="r9")
        last = g.journal.entries()[-1]
        assert not last.stats_changed
        assert last.nodes == frozenset()  # relabels touch no nodes
        assert last.relations == {"r", "r9"}

    def test_journal_limit_validation(self):
        with pytest.raises(ValueError):
            DeltaJournal(limit=0)

    def test_delta_record_round_trip(self):
        delta = Delta(3, "remove_node", nodes=frozenset({1, 2}),
                      tokens=frozenset({"tok"}), types=frozenset({"t"}),
                      relations=frozenset({"r"}), stats_changed=True)
        clone = Delta.from_record(delta.as_record())
        assert (clone.version, clone.kind, clone.nodes, clone.tokens,
                clone.types, clone.relations, clone.stats_changed) == (
                    delta.version, delta.kind, delta.nodes, delta.tokens,
                    delta.types, delta.relations, delta.stats_changed)


# ----------------------------------------------------------------------
# Fine-grained cache invalidation
# ----------------------------------------------------------------------
def _warm_engine(graph, query, k=5):
    engine = Star(graph, d=1)
    cache = attach_cache(engine.scorer)
    baseline = engine.search(query, k)
    return engine, cache, baseline


class TestCacheInvalidation:
    QUERY = "(?m:person) -[?]- (Brad Pitt:person)"

    def test_survival_on_disjoint_relabel(self):
        g = build_random_graph(seed=5, num_nodes=120, num_edges=260)
        query = parse_query(self.QUERY, name="t")
        engine, cache, baseline = _warm_engine(g, query)
        g.update_edge(0, relation="zz_unrelated")  # touches zero nodes
        engine.scorer.refresh()
        again = engine.search(query, 5)
        assert cache.stats.survivals > 0
        assert cache.stats.invalidations == 0
        assert_same_results(again, baseline)

    def test_survival_on_disjoint_edge_inserts(self):
        g = build_random_graph(seed=5, num_nodes=120, num_edges=260)
        query = parse_query(self.QUERY, name="t")
        engine, cache, baseline = _warm_engine(g, query)
        footprint = frozenset().union(
            *(entry.deps[0] for entry in cache._data.values()))
        stream = disjoint_edge_stream(g, 20, avoid=footprint, seed=3)
        assert stream, "graph too small to build a disjoint stream"
        applied = apply_operations(g, stream)
        engine.scorer.refresh()
        again = engine.search(query, 5)
        assert cache.stats.survivals > 0
        assert cache.stats.invalidations == 0
        # Parity with a from-scratch engine on the mutated graph.
        cold = Star(g, d=1).search(query, 5)
        assert_same_results(again, cold)
        assert_same_results(again, baseline)
        assert applied == len(stream)

    def test_invalidation_when_footprint_touched(self):
        g = build_random_graph(seed=5, num_nodes=120, num_edges=260)
        query = parse_query(self.QUERY, name="t")
        engine, cache, _ = _warm_engine(g, query)
        touched = next(iter(next(
            entry.deps[0] for entry in cache._data.values()
            if entry.deps and entry.deps[0]
        )))
        g.update_node_attrs(touched, flag=True)
        engine.scorer.refresh()
        before = cache.stats.invalidations
        again = engine.search(query, 5)
        assert cache.stats.invalidations > before
        cold = Star(g, d=1).search(query, 5)
        assert_same_results(again, cold)

    def test_full_invalidation_on_stats_change(self):
        g = build_random_graph(seed=5, num_nodes=120, num_edges=260)
        query = parse_query(self.QUERY, name="t")
        engine, cache, _ = _warm_engine(g, query)
        g.add_node("Totally Unrelated", "place")  # IDF denominators move
        engine.scorer.refresh()
        again = engine.search(query, 5)
        assert cache.stats.invalidations > 0
        assert cache.stats.survivals == 0
        cold = Star(g, d=1).search(query, 5)
        assert_same_results(again, cold)

    def test_journal_overflow_invalidates_conservatively(self):
        g = build_random_graph(seed=5, num_nodes=120, num_edges=260)
        g.journal.limit = 4
        g.journal._entries = type(g.journal._entries)(
            g.journal._entries, 4)
        query = parse_query(self.QUERY, name="t")
        engine, cache, _ = _warm_engine(g, query)
        for record in disjoint_edge_stream(g, 6, seed=9):
            apply_operation(g, record)
        engine.scorer = ScoringFunction(g, engine.scorer.config)
        attach_cache(engine.scorer, cache)
        again = engine.search(query, 5)
        assert cache.stats.invalidations > 0  # diff window lost -> rebuild
        cold = Star(g, d=1).search(query, 5)
        assert_same_results(again, cold)

    def test_legacy_api_still_works(self):
        cache = attach_cache(ScoringFunction(build_movie_graph()))
        cache.put(("k", 1), (1, 2, 3))
        assert cache.get(("k", 1)) == (1, 2, 3)
        assert cache.stats.hits == 1 and cache.stats.misses == 0

    def test_stats_dict_round_trip_includes_dynamic_counters(self):
        from repro.perf import CacheStats

        stats = CacheStats(hits=2, survivals=3, invalidations=1)
        clone = CacheStats.from_dict(stats.as_dict())
        assert clone == stats
        merged = CacheStats().merge(stats).merge(stats)
        assert merged.survivals == 6 and merged.invalidations == 2


# ----------------------------------------------------------------------
# Scorer refresh
# ----------------------------------------------------------------------
class TestScorerRefresh:
    def test_assert_graph_unchanged_guides_to_refresh(self):
        g = build_movie_graph()
        scorer = ScoringFunction(g)
        g.add_node("New", "actor")
        with pytest.raises(ScoringError, match="refresh"):
            scorer.assert_graph_unchanged()
        assert scorer.refresh() is True
        scorer.assert_graph_unchanged()
        assert scorer.refresh() is False  # idempotent

    @pytest.mark.parametrize("mutate", [
        lambda g: g.add_node("Extra Person", "actor"),
        lambda g: g.remove_node(7),
        lambda g: g.remove_edge(2),
        lambda g: g.update_node_attrs(0, note=1),
        lambda g: g.update_edge(0, relation="reworked"),
        lambda g: g.add_edge(8, 9, "new_link"),
    ])
    def test_refresh_matches_fresh_scorer(self, mutate):
        g = build_movie_graph()
        scorer = ScoringFunction(g)
        query = parse_query("(?m:film) -[?]- (Brad Pitt:actor)", name="t")
        engine = Star(g, scorer=scorer, d=1)
        engine.search(query, 5)  # warm every memo
        mutate(g)
        scorer.refresh()
        warm = engine.search(query, 5)
        cold = Star(g, d=1).search(query, 5)
        assert_same_results(warm, cold)


# ----------------------------------------------------------------------
# Snapshots
# ----------------------------------------------------------------------
class TestSnapshot:
    def _mutated_graph(self):
        g = build_movie_graph()
        g.remove_edge(1)
        g.remove_node(6)
        g.update_node_attrs(0, oscar=True)
        g.update_edge(0, relation="starred_in")
        g.add_node("Late Arrival", "director", keywords=("auteur",))
        return g

    def test_round_trip_equality(self, tmp_path):
        g = self._mutated_graph()
        path = tmp_path / "graph.kgs"
        g.save(path)
        loaded = KnowledgeGraph.load(path)
        assert loaded.version == g.version
        assert list(loaded.nodes()) == list(g.nodes())
        assert list(loaded.edges()) == list(g.edges())
        for node_id in g.nodes():
            assert loaded.node(node_id) == g.node(node_id)
            assert loaded.neighbors(node_id) == g.neighbors(node_id)
        assert loaded.max_degree == g.max_degree
        assert loaded.relations() == g.relations()
        assert loaded.vocabulary() == g.vocabulary()
        assert loaded.types() == g.types()
        assert loaded.uid != g.uid
        assert len(loaded.journal) == len(g.journal)

    def test_double_save_byte_identical(self, tmp_path):
        g = self._mutated_graph()
        p1, p2 = tmp_path / "a.kgs", tmp_path / "b.kgs"
        g.save(p1)
        KnowledgeGraph.load(p1).save(p2)
        assert p1.read_bytes() == p2.read_bytes()

    def test_search_parity_after_load(self, tmp_path):
        g = self._mutated_graph()
        path = tmp_path / "graph.kgs"
        g.save(path)
        loaded = load_snapshot(path)
        query = parse_query("(?m:film) -[?]- (Brad Pitt:actor)", name="t")
        assert_same_results(
            Star(loaded, d=1).search(query, 5),
            Star(g, d=1).search(query, 5),
        )

    def test_journal_survives_restart(self, tmp_path):
        g = self._mutated_graph()
        watermark = g.version - 2
        expected = g.delta_since(watermark)
        path = tmp_path / "graph.kgs"
        g.save(path)
        loaded = KnowledgeGraph.load(path)
        got = loaded.delta_since(watermark)
        assert got.count == expected.count
        assert got.nodes == expected.nodes
        assert got.stats_changed == expected.stats_changed

    def test_load_clears_token_memo(self, tmp_path):
        g = build_movie_graph()
        path = tmp_path / "graph.kgs"
        g.save(path)
        textutil.tokenize_tuple("memo warm entry")
        assert textutil.token_memo_info().currsize > 0
        KnowledgeGraph.load(path)
        assert textutil.token_memo_info().currsize == 0

    def test_corruption_detected(self, tmp_path):
        g = build_movie_graph()
        path = tmp_path / "graph.kgs"
        g.save(path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        bad = tmp_path / "bad.kgs"
        bad.write_bytes(bytes(raw))
        with pytest.raises(DatasetError):
            load_snapshot(bad)
        notmagic = tmp_path / "x.kgs"
        notmagic.write_bytes(b"NOPE" + bytes(raw[4:]))
        with pytest.raises(DatasetError):
            load_snapshot(notmagic)
        with pytest.raises(DatasetError):
            load_snapshot(tmp_path / "missing.kgs")

    def test_unsupported_format_version(self, tmp_path):
        g = build_movie_graph()
        path = tmp_path / "graph.kgs"
        g.save(path)
        raw = bytearray(path.read_bytes())
        raw[4] = 99  # format-version byte
        path.write_bytes(bytes(raw))
        with pytest.raises(DatasetError, match="format version"):
            load_snapshot(path)

    def test_load_any_sniffs_both_formats(self, tmp_path):
        g = build_movie_graph()
        snap, json_path = tmp_path / "g.kgs", tmp_path / "g.kg"
        g.save(snap)
        save_graph(g, json_path)
        assert list(load_any(snap).nodes()) == list(g.nodes())
        assert list(load_any(json_path).nodes()) == list(g.nodes())

    def test_line_json_refuses_tombstones(self, tmp_path):
        g = self._mutated_graph()
        with pytest.raises(DatasetError, match="snapshot"):
            save_graph(g, tmp_path / "g.kg")
        # The positional format still loads/saves dense graphs.
        dense = build_movie_graph()
        save_graph(dense, tmp_path / "dense.kg")
        assert load_graph(tmp_path / "dense.kg").num_nodes == dense.num_nodes


# ----------------------------------------------------------------------
# Operation streams
# ----------------------------------------------------------------------
class TestOps:
    OPS = [
        ["add_node", "A", "actor", ["star"], {"born": 1963}],
        ["add_node", "B", "film"],
        ["add_node", "C", "actor"],
        ["add_edge", 0, 1, "acted_in", {"year": 2004}],
        ["add_edge", 2, 1, "acted_in"],
        ["remove_edge", 1],
        ["remove_node", 2],
        ["update_node_attrs", 0, {"born": None, "oscar": True}],
        ["update_edge", 0, "starred_in"],
    ]

    def test_replay_is_deterministic(self):
        g1, g2 = KnowledgeGraph("a"), KnowledgeGraph("a")
        apply_operations(g1, self.OPS)
        apply_operations(g2, self.OPS)
        assert list(g1.nodes()) == list(g2.nodes())
        assert list(g1.edges()) == list(g2.edges())
        assert g1.node(0) == g2.node(0)
        assert g1.version == g2.version

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        save_operations(self.OPS, path)
        loaded = load_operations(path)
        assert loaded == self.OPS
        g = KnowledgeGraph("t")
        assert apply_operations(g, loaded) == len(self.OPS)
        assert g.num_nodes == 2 and g.num_edges == 1

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "ops.jsonl"
        path.write_text('# header\n\n["add_node", "A", "t"]\n')
        assert load_operations(path) == [["add_node", "A", "t"]]

    def test_malformed_records_raise(self, tmp_path):
        g = KnowledgeGraph("t")
        with pytest.raises(DatasetError, match="unknown operation"):
            apply_operation(g, ["frobnicate", 1])
        with pytest.raises(DatasetError, match="malformed"):
            apply_operation(g, ["add_edge", "not-an-int", None])
        with pytest.raises(DatasetError):
            apply_operation(g, "not-a-list")
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"not": "a list"}\n')
        with pytest.raises(DatasetError, match="array"):
            load_operations(bad)
        bad.write_text("not json\n")
        with pytest.raises(DatasetError, match="invalid JSON"):
            load_operations(bad)

    def test_graph_errors_propagate(self):
        g = KnowledgeGraph("t")
        with pytest.raises(GraphError):
            apply_operation(g, ["remove_node", 5])


# ----------------------------------------------------------------------
# Tombstone-aware auxiliary structures
# ----------------------------------------------------------------------
class TestTombstoneAwareness:
    def test_sketch_aligned_with_ids_after_removal(self):
        g = build_movie_graph()
        g.remove_node(2)
        sketch = NeighborhoodSketch(g)
        last = g.num_node_slots - 1
        # signature_of indexes by id; every live id must be addressable.
        for node_id in g.nodes():
            sketch.signature_of(node_id)
        assert sketch.signature_of(2) == 0  # removed slot: empty signature
        assert last in g

    def test_workload_generation_on_mutated_graph(self):
        from repro.query.workload import star_workload

        g = build_random_graph(seed=11, num_nodes=60, num_edges=120)
        g.remove_node(0)
        g.remove_node(59)
        queries = star_workload(g, 5, seed=3)
        assert queries


# ----------------------------------------------------------------------
# Token memo (satellite)
# ----------------------------------------------------------------------
class TestTokenMemo:
    def teardown_method(self):
        textutil.configure_token_memo(textutil.DEFAULT_TOKEN_MEMO_SIZE)

    def test_identity_memoization(self):
        assert (textutil.tokenize_tuple("Brad Pitt")
                is textutil.tokenize_tuple("Brad Pitt"))

    def test_clear(self):
        textutil.tokenize_tuple("Some Warm Entry")
        assert textutil.token_memo_info().currsize > 0
        textutil.clear_token_memo()
        assert textutil.token_memo_info().currsize == 0

    def test_configure_size(self):
        textutil.configure_token_memo(2)
        for text in ("aa bb", "cc dd", "ee ff"):
            textutil.tokenize_tuple(text)
        assert textutil.token_memo_info().currsize <= 2
        assert textutil.token_memo_info().maxsize == 2
        with pytest.raises(ValueError):
            textutil.configure_token_memo(-1)

    def test_env_override(self):
        argv = [
            "-c",
            "import repro.textutil as t; import sys; "
            "sys.exit(0 if t.token_memo_info().maxsize == 123 else 1)",
        ]
        import subprocess
        import sys as _sys

        env = dict(os.environ, REPRO_TOKEN_MEMO_SIZE="123",
                   PYTHONPATH="src")
        proc = subprocess.run([_sys.executable, *argv], env=env,
                              cwd=os.path.dirname(os.path.dirname(
                                  os.path.abspath(__file__))))
        assert proc.returncode == 0


# ----------------------------------------------------------------------
# CLI commands
# ----------------------------------------------------------------------
class TestCli:
    def test_snapshot_and_search(self, tmp_path, capsys):
        from repro.cli import main

        g = build_movie_graph()
        json_path = tmp_path / "g.kg"
        save_graph(g, json_path)
        snap = tmp_path / "g.kgs"
        assert main(["snapshot", str(json_path), str(snap)]) == 0
        assert snap.read_bytes()[:4] == b"RKGS"
        assert main([
            "search", str(snap), "(?m:film) -[?]- (Brad Pitt:actor)", "-k", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "match(es)" in out

    def test_apply_delta(self, tmp_path, capsys):
        from repro.cli import main

        g = build_movie_graph()
        json_path = tmp_path / "g.kg"
        save_graph(g, json_path)
        ops_path = tmp_path / "ops.jsonl"
        save_operations([
            ["add_node", "Fresh Face", "actor"],
            ["remove_edge", 0],
        ], ops_path)
        out_path = tmp_path / "mutated.kgs"
        assert main([
            "apply-delta", str(json_path), str(ops_path), str(out_path),
        ]) == 0
        mutated = KnowledgeGraph.load(out_path)
        assert mutated.num_nodes == g.num_nodes + 1
        assert mutated.num_edges == g.num_edges - 1
        assert mutated.has_tombstones
        out = capsys.readouterr().out
        assert "applied 2 operation(s)" in out
