"""Acceptance test: the chaos harness's gates hold on a live server.

This is the PR's acceptance criterion, run end to end: mixed-priority
traffic at 2x measured capacity with 5% injected faults and one forced
worker crash must yield a valid (possibly degraded) response for every
admitted request, shed only low-priority traffic, keep gold p99 inside
its SLO deadline, and leave every shed/degrade/retry/crash/breaker
event visible in ``/statz``.
"""

import pytest

from repro.perf.parallel import fork_available
from repro.serve import ChaosConfig, ServeApp, ServerHandle, format_result
from repro.serve import run_chaos

QUERIES = [
    "(Brad:actor) -[acted_in]- (?:film)",
    "(?m:director) -[collaborated_with]- (Brad:actor);"
    "(?m) -[won]- (?:award)",
]


@pytest.mark.slow
def test_chaos_gates_hold(movie_graph):
    crash_ok = fork_available()
    app = ServeApp(movie_graph, workers=2, backend="auto",
                   breaker_cooldown_s=0.5)
    config = ChaosConfig(
        queries=QUERIES,
        n_requests=60,
        inject_crash=crash_ok,
        breaker_cooldown_s=0.5,
        seed=0,
    )
    with ServerHandle(app) as handle:
        result = run_chaos(*handle.address, config)

    assert result.passed, format_result(result)

    # Only low-priority classes were shed by overload; gold sheds (if
    # any) can only come from the hard-full path, which 2x load on a
    # 64-deep queue cannot reach.
    for outcome in result.outcomes:
        if outcome.response is not None and \
                outcome.response.status == "shed":
            assert outcome.request.priority != "gold", \
                f"gold request shed: {outcome.response.reason}"

    summary = result.summary()
    answered = summary["responses_by_status"].get("ok", 0) + \
        summary["responses_by_status"].get("degraded", 0)
    assert answered + summary["responses_by_status"].get("shed", 0) + \
        summary["responses_by_status"].get("error", 0) == config.n_requests
    # Overload at 2x must leave a visible degradation/shed trace.
    assert summary["responses_by_status"].get("degraded", 0) + \
        summary["responses_by_status"].get("shed", 0) > 0


def test_chaos_requires_queries():
    with pytest.raises(ValueError):
        run_chaos("127.0.0.1", 1, ChaosConfig(queries=[]))
