"""Parity suite for ``search_many``: parallel == serial == cached.

The headline invariant of the performance layer: for fixed inputs, the
``(assignment, score)`` lists are identical across worker counts,
backends (serial / fork / thread) and cache settings -- including under
deterministic anytime budgets, where degraded results must be flagged
and must never poison the cache.
"""

from __future__ import annotations

import pytest

from repro.core.framework import Star
from repro.errors import BudgetExceededError, SearchError
from repro.eval.harness import time_algorithm
from repro.perf import (
    BatchResult,
    CandidateCache,
    fork_available,
    resolve_backend,
    search_many,
)
from repro.query import random_subgraph_query, star_workload
from repro.runtime.budget import Budget


def serial_reference(graph, queries, k, budget_spec=None, **opts):
    """Per-query fresh-engine serial run: the ground-truth result keys."""
    keys = []
    degraded = 0
    for query in queries:
        engine = Star(graph, **opts)
        budget = Budget(**budget_spec) if budget_spec else None
        try:
            matches = engine.search(query, k, budget=budget)
        except BudgetExceededError:
            matches = []
        if engine.last_report is not None and engine.last_report.degraded:
            degraded += 1
        keys.append(tuple((m.key(), m.score) for m in matches))
    return keys, degraded


@pytest.fixture(scope="module")
def star_queries(yago_graph):
    return star_workload(yago_graph, 6, seed=11)


@pytest.fixture(scope="module")
def complex_queries(yago_graph):
    return [
        random_subgraph_query(yago_graph, 4, 4, seed=seed)
        for seed in (3, 7)
    ]


# ----------------------------------------------------------------------
# Input validation and backend resolution


def test_search_many_rejects_bad_inputs(yago_graph, star_queries):
    with pytest.raises(SearchError):
        search_many(yago_graph, star_queries, 0)
    with pytest.raises(SearchError):
        search_many(yago_graph, star_queries, 3, workers=0)
    with pytest.raises(SearchError):
        search_many(yago_graph, star_queries, 3, backend="gpu")


def test_search_many_rejects_unshareable_state(yago_graph, star_queries):
    from repro.similarity import ScoringFunction

    scorer = ScoringFunction(yago_graph)
    with pytest.raises(SearchError):
        search_many(yago_graph, star_queries, 3, workers=2, scorer=scorer,
                    backend="thread")
    with pytest.raises(SearchError):
        search_many(yago_graph, star_queries, 3, workers=2,
                    cache=CandidateCache(), backend="thread")


def test_resolve_backend():
    assert resolve_backend("auto", 1) == "serial"
    assert resolve_backend("fork", 1) == "serial"
    expected = "fork" if fork_available() else "thread"
    assert resolve_backend("auto", 4) == expected
    assert resolve_backend("thread", 4) == "thread"
    with pytest.raises(SearchError):
        resolve_backend("nope", 2)


# ----------------------------------------------------------------------
# Parity: serial == parallel == cached, per engine family


def assert_parity(result: BatchResult, expected_keys):
    assert isinstance(result, BatchResult)
    assert result.result_keys() == expected_keys
    assert [o.index for o in result.outcomes] == list(range(len(expected_keys)))


def test_stark_parity_across_workers_and_cache(yago_graph, star_queries):
    expected, _ = serial_reference(yago_graph, star_queries, 5, d=1)
    for kwargs in (
        {"workers": 1},
        {"workers": 1, "cache": True},
        {"workers": 2, "backend": "thread"},
        {"workers": 2, "backend": "thread", "cache": True},
    ):
        result = search_many(yago_graph, star_queries, 5, d=1, **kwargs)
        assert_parity(result, expected)


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_stark_parity_fork_backend(yago_graph, star_queries):
    expected, _ = serial_reference(yago_graph, star_queries, 5, d=1)
    result = search_many(yago_graph, star_queries, 5, d=1, workers=2,
                         backend="fork", cache=True)
    assert result.backend == "fork"
    assert_parity(result, expected)
    assert result.cache_stats is not None


def test_stard_parity_d2(yago_graph, star_queries):
    queries = star_queries[:4]
    expected, _ = serial_reference(yago_graph, queries, 4, d=2)
    for kwargs in (
        {"workers": 1, "cache": True},
        {"workers": 2, "backend": "thread"},
    ):
        assert_parity(
            search_many(yago_graph, queries, 4, d=2, **kwargs), expected
        )


def test_starjoin_parity_complex_queries(yago_graph, complex_queries):
    expected, _ = serial_reference(yago_graph, complex_queries, 3, d=1)
    for kwargs in (
        {"workers": 1, "cache": True},
        {"workers": 2, "backend": "thread"},
    ):
        assert_parity(
            search_many(yago_graph, complex_queries, 3, **kwargs), expected
        )


def test_warm_cache_batch_identical_to_cold(yago_graph, star_queries):
    cache = CandidateCache()
    cold = search_many(yago_graph, star_queries, 5, cache=cache)
    warm = search_many(yago_graph, star_queries, 5, cache=cache)
    assert warm.result_keys() == cold.result_keys()
    assert warm.cache_stats.hits > cold.cache_stats.hits


# ----------------------------------------------------------------------
# Anytime budgets: deterministic trips, flagged, never cache-poisoned


BUDGET = {"max_nodes": 60, "anytime": True}


def test_budgeted_parity_and_flagging(yago_graph, star_queries):
    expected, degraded = serial_reference(
        yago_graph, star_queries, 5, budget_spec=dict(BUDGET), d=1
    )
    serial = search_many(yago_graph, star_queries, 5,
                         budget_spec=dict(BUDGET))
    assert serial.result_keys() == expected
    assert serial.degraded == degraded
    assert serial.degraded > 0  # the budget actually binds on this load
    threaded = search_many(yago_graph, star_queries, 5, workers=2,
                           backend="thread", budget_spec=dict(BUDGET))
    assert threaded.result_keys() == expected
    assert threaded.degraded == degraded


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
def test_budgeted_parity_fork(yago_graph, star_queries):
    expected, degraded = serial_reference(
        yago_graph, star_queries, 5, budget_spec=dict(BUDGET), d=1
    )
    forked = search_many(yago_graph, star_queries, 5, workers=2,
                         backend="fork", budget_spec=dict(BUDGET))
    assert forked.result_keys() == expected
    assert forked.degraded == degraded


def test_budgeted_runs_do_not_poison_cache(yago_graph, star_queries):
    expected, _ = serial_reference(
        yago_graph, star_queries, 5, budget_spec=dict(BUDGET), d=1
    )
    cache = CandidateCache()
    first = search_many(yago_graph, star_queries, 5, cache=cache,
                        budget_spec=dict(BUDGET))
    second = search_many(yago_graph, star_queries, 5, cache=cache,
                         budget_spec=dict(BUDGET))
    assert first.result_keys() == expected
    assert second.result_keys() == expected  # warm == cold under budgets
    # No scored (partial) candidate list was ever cached.
    assert all(key[0] != "cand" for key in cache._data)
    # And an unbudgeted run afterwards still matches its own reference.
    unbudgeted, _ = serial_reference(yago_graph, star_queries, 5, d=1)
    after = search_many(yago_graph, star_queries, 5, cache=cache)
    assert after.result_keys() == unbudgeted


# ----------------------------------------------------------------------
# Merged reporting


def test_batch_result_reporting(yago_graph, star_queries):
    result = search_many(yago_graph, star_queries, 5, cache=True)
    assert result.total_matches == sum(len(m) for m in result.matches)
    assert result.queries_per_s > 0
    assert result.stats  # engine counters merged across queries
    assert all(value >= 0 for value in result.stats.values())
    text = result.summary()
    assert "quer" in text and "cache:" in text


def test_batch_result_budget_counters(yago_graph, star_queries):
    result = search_many(yago_graph, star_queries, 5,
                         budget_spec=dict(BUDGET))
    assert result.budget_exceeded >= result.degraded
    assert result.faults == 0


# ----------------------------------------------------------------------
# Harness integration: --workers measurement path


def test_harness_workers_parity(yago_scorer, star_queries):
    serial = time_algorithm("stark", yago_scorer, star_queries, 5)
    parallel = time_algorithm("stark", yago_scorer, star_queries, 5,
                              workers=2)
    assert len(parallel.runtimes) == len(serial.runtimes)
    assert parallel.matches_found == serial.matches_found
    assert parallel.empty_queries == serial.empty_queries
    assert parallel.budget_exceeded == serial.budget_exceeded == 0


def test_harness_workers_budgeted_parity(yago_scorer, star_queries):
    serial = time_algorithm("stark", yago_scorer, star_queries, 5,
                            max_nodes=60)
    parallel = time_algorithm("stark", yago_scorer, star_queries, 5,
                              max_nodes=60, workers=2)
    assert parallel.matches_found == serial.matches_found
    assert parallel.budget_exceeded == serial.budget_exceeded
    assert parallel.faults_recorded == serial.faults_recorded


def test_harness_rejects_bad_workers(yago_scorer, star_queries):
    with pytest.raises(SearchError):
        time_algorithm("stark", yago_scorer, star_queries, 5, workers=0)


# ----------------------------------------------------------------------
# Fault injection and dead-worker recovery


def test_fault_specs_thread_backend_flags_degraded(yago_graph, star_queries):
    """One-shot injected faults under anytime budgets: answered + flagged."""
    result = search_many(
        yago_graph, star_queries, 5, workers=2, backend="thread",
        budget_spec={"deadline_ms": 5000.0, "anytime": True},
        fault_specs=[{"site": "scorer.node_score", "mode": "raise"}],
    )
    assert len(result.matches) == len(star_queries)
    assert result.degraded >= 1
    assert result.worker_crashes == 0


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
def test_fork_worker_crash_recovers_serially(yago_graph, star_queries):
    """A crash fault kills fork workers; lost queries are re-run clean.

    Every query still gets its exact answer (the crash spec is not
    reapplied on the serial recovery path) and the crash is accounted
    in the batch result.
    """
    expected, _ = serial_reference(yago_graph, star_queries, 5)
    result = search_many(
        yago_graph, star_queries, 5, workers=2, backend="fork",
        fault_specs=[{"site": "scorer.node_score", "mode": "crash"}],
    )
    assert result.worker_crashes >= 1
    assert result.requeued >= 1
    assert "worker crash" in result.summary()
    got = [tuple((m.key(), m.score) for m in row) for row in result.matches]
    assert got == expected


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
def test_fork_clean_run_reports_no_crashes(yago_graph, star_queries):
    result = search_many(yago_graph, star_queries, 5, workers=2,
                         backend="fork")
    assert result.worker_crashes == 0
    assert result.requeued == 0
    assert "worker crash" not in result.summary()


# ----------------------------------------------------------------------
# LPT dispatch: idle-worker skew on deliberately skewed batches


def skewed_batch(graph):
    """Cheap specific queries plus one heavy full-wildcard star, LAST --
    the worst submission order for naive in-order dispatch."""
    from repro.query.model import Query

    cheap = star_workload(graph, 4, seed=17)
    heavy = Query()
    pivot = heavy.add_node("?")
    leaf = heavy.add_node("?")
    heavy.add_edge(pivot, leaf, "?")
    return list(cheap) + [heavy]


def test_estimate_query_cost_ranks_wildcards_heaviest(movie_graph):
    from repro.perf import estimate_query_cost

    queries = skewed_batch(movie_graph)
    costs = [estimate_query_cost(movie_graph, q) for q in queries]
    # The untyped full-wildcard query prices in a full scan per node.
    assert costs[-1] >= 2 * movie_graph.num_nodes
    assert costs[-1] == max(costs)
    assert all(c >= 0 for c in costs)


def test_dispatch_order_heavy_first_deterministic(movie_graph):
    from repro.perf import dispatch_order

    queries = skewed_batch(movie_graph)
    order = dispatch_order(movie_graph, queries)
    assert sorted(order) == list(range(len(queries)))
    assert order[0] == len(queries) - 1  # the heavy tail query leads
    assert order == dispatch_order(movie_graph, queries)


def test_skewed_batch_thread_parity_and_lpt_order(movie_graph):
    """Regression for idle-worker skew: a heavy query submitted last by
    index must be dispatched first, with results byte-identical to the
    serial run (LPT reorders submission, never results)."""
    queries = skewed_batch(movie_graph)
    expected, _ = serial_reference(movie_graph, queries, 4)
    result = search_many(movie_graph, queries, 4, workers=2,
                         backend="thread")
    got = [tuple((m.key(), m.score) for m in row) for row in result.matches]
    assert got == expected
    assert result.dispatch_order is not None
    assert result.dispatch_order[0] == len(queries) - 1


@pytest.mark.skipif(not fork_available(), reason="fork unavailable")
def test_skewed_batch_fork_parity_and_lpt_order(movie_graph):
    queries = skewed_batch(movie_graph)
    expected, _ = serial_reference(movie_graph, queries, 4)
    result = search_many(movie_graph, queries, 4, workers=2,
                         backend="fork")
    got = [tuple((m.key(), m.score) for m in row) for row in result.matches]
    assert got == expected
    assert result.dispatch_order[0] == len(queries) - 1


# ----------------------------------------------------------------------
# shards=N batch mode


def test_search_many_sharded_invariant_across_shard_counts(yago_graph,
                                                           star_queries):
    """shards=N rankings are byte-identical for every shard count and
    strategy (the canonical merge order is shard-oblivious)."""
    reference = None
    for shards, partition in ((1, "hash"), (3, "hash"), (3, "pivot-type")):
        result = search_many(yago_graph, star_queries, 5, shards=shards,
                             partition=partition, backend="serial")
        got = [tuple((m.key(), m.score) for m in row)
               for row in result.matches]
        if reference is None:
            reference = got
        else:
            assert got == reference, f"{partition}/{shards} diverged"
        assert result.workers == shards
        assert result.backend == "shard-serial"


def test_search_many_sharded_scores_match_serial(yago_graph, star_queries):
    """Tie-tolerant score parity between shards=N and the plain serial
    batch (assignments at equal scores may legally differ)."""
    expected, _ = serial_reference(yago_graph, star_queries, 5)
    result = search_many(yago_graph, star_queries, 5, shards=2,
                         backend="serial")
    for row, want in zip(result.matches, expected):
        assert ([round(m.score, 9) for m in row]
                == [round(s, 9) for _key, s in want])


def test_search_many_sharded_rejects_bad_combinations(yago_graph,
                                                      star_queries):
    with pytest.raises(SearchError, match="workers"):
        search_many(yago_graph, star_queries, 5, shards=2, workers=2)
    with pytest.raises(SearchError, match="fault_specs"):
        search_many(yago_graph, star_queries, 5, shards=2,
                    fault_specs=[{"site": "scorer.node_score",
                                  "mode": "raise"}])
