"""Differential fuzzing: mmap-backed store vs in-memory graph.

Satellite of the zero-copy store PR.  The contract: a graph opened with
:func:`repro.store.open_graph` (optionally with its index columns
attached via :func:`repro.store.attach_mmap_index`) returns *identical*
results to the in-memory graph it was compacted from -- same scores,
same rankings, same :class:`EngineStats` candidate counts -- across
every engine (stark / stard / starjoin), ``use_index`` on and off,
sharded and single-process, before and after overlay mutations.

Hypothesis drives random graphs, queries and mutation sequences; the
comparisons reuse :mod:`tests.oracle`.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.framework import Star
from repro.query import Query, star_query
from repro.similarity import ScoringFunction
from repro.store import attach_mmap_index, open_graph, write_store

from tests.conftest import build_movie_graph, build_random_graph
from tests.oracle import ALGORITHMS, assert_same_results, run_algorithm

# One store file per graph seed, shared across hypothesis re-runs.
_STORE_DIR = Path(tempfile.mkdtemp(prefix="repro-store-diff-"))
_PAIRS = {}


def graph_pair(seed: int):
    """(in-memory graph, mmap graph over its compacted store)."""
    if seed not in _PAIRS:
        graph = build_random_graph(seed)
        path = _STORE_DIR / f"g{seed}.rkgs2"
        write_store(graph, path)
        _PAIRS[seed] = (graph, open_graph(path))
    return _PAIRS[seed]


def star_of(size_choice: int):
    leaves = [
        [("acted_in", "?")],
        [("acted_in", "Troy"), ("won", "?")],
        [("?", "Brad"), ("directed", "?"), ("born_in", "Venice")],
    ][size_choice]
    return star_query("Brad", leaves, pivot_type="actor")


def triangle_query() -> Query:
    query = Query(name="tri")
    a = query.add_node("Brad", type="actor")
    b = query.add_node("?", type="film")
    c = query.add_node("?")
    query.add_edge(a, b, "acted_in")
    query.add_edge(b, c, "?")
    query.add_edge(a, c, "?")
    return query


class TestAlgorithmParity:
    @given(
        seed=st.integers(min_value=0, max_value=25),
        algorithm=st.sampled_from(ALGORITHMS),
        size_choice=st.integers(min_value=0, max_value=2),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_every_engine_identical_on_mmap_graph(
        self, seed, algorithm, size_choice, k
    ):
        graph, mgraph = graph_pair(seed)
        query = (triangle_query() if algorithm == "starjoin"
                 else star_of(size_choice))
        got_mem = run_algorithm(algorithm, ScoringFunction(graph),
                                query, k, d=2)
        got_map = run_algorithm(algorithm, ScoringFunction(mgraph),
                                query, k, d=2)
        assert_same_results(got_map, got_mem)


class TestIndexParity:
    @given(
        seed=st.integers(min_value=0, max_value=15),
        use_index=st.sampled_from(["on", "off"]),
        k=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=30, deadline=None)
    def test_attached_index_matches_built_index(self, seed, use_index, k):
        graph, mgraph = graph_pair(seed)
        query = star_of(1)
        mem = Star(graph, d=2, use_index=use_index)
        got_mem = mem.search(query, k)
        scorer = ScoringFunction(mgraph)
        if use_index != "off":
            scorer.graph_index = attach_mmap_index(mgraph, mgraph,
                                                   mode=use_index)
        mapped = Star(mgraph, scorer=scorer, d=2, use_index=use_index)
        got_map = mapped.search(query, k)
        assert_same_results(got_map, got_mem)
        # Candidate accounting must match too: an attached index that
        # prunes differently would still "pass" on tiny k otherwise.
        assert mapped.last_engine_stats == mem.last_engine_stats

    def test_movie_graph_stats_parity_all_modes(self, tmp_path):
        graph = build_movie_graph()
        path = tmp_path / "movies.rkgs2"
        write_store(graph, path)
        mgraph = open_graph(path)
        query = triangle_query()
        for use_index in ("auto", "on", "off"):
            mem = Star(graph, d=2, use_index=use_index)
            got_mem = mem.search(query, 5)
            scorer = ScoringFunction(mgraph)
            if use_index != "off":
                scorer.graph_index = attach_mmap_index(
                    mgraph, mgraph, mode=use_index)
            mapped = Star(mgraph, scorer=scorer, d=2, use_index=use_index)
            got_map = mapped.search(query, 5)
            assert_same_results(got_map, got_mem)
            assert mapped.last_engine_stats == mem.last_engine_stats


class TestShardedParity:
    @pytest.mark.parametrize("partition", ["hash", "pivot-type"])
    def test_sharded_mmap_matches_single_process(self, tmp_path, partition):
        from repro.shard import ShardedEngine

        graph = build_random_graph(3, num_nodes=40, num_edges=90)
        path = tmp_path / "g.rkgs2"
        write_store(graph, path)
        mgraph = open_graph(path)
        query = triangle_query()
        single = Star(graph, d=2, use_index="on")
        got_single = single.search(query, 6)
        scorer = ScoringFunction(mgraph)
        scorer.graph_index = attach_mmap_index(mgraph, mgraph, mode="on")
        engine = ShardedEngine(mgraph, scorer=scorer, shards=3,
                               partition=partition, d=2, use_index="on")
        try:
            got_sharded = engine.search(query, 6)
        finally:
            engine.close()
        assert_same_results(got_sharded, got_single)


class TestMutationParity:
    # Each op mutates the in-memory twin and the mmap overlay the same
    # way; ids are deterministic so both graphs stay bit-for-bit equal.
    @given(
        seed=st.integers(min_value=0, max_value=10),
        ops=st.lists(
            st.tuples(st.sampled_from(["add_node", "add_edge",
                                       "remove_edge", "remove_node",
                                       "update_attrs"]),
                      st.integers(min_value=0, max_value=10 ** 6)),
            min_size=1, max_size=12,
        ),
        k=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_search_parity_after_mutations(self, seed, ops, k):
        graph = build_random_graph(seed)
        with tempfile.TemporaryDirectory(prefix="repro-mut-") as tmp:
            path = Path(tmp) / "mut.rkgs2"
            write_store(graph, path)
            mgraph = open_graph(path)
            self._check(graph, mgraph, ops, k)

    def _check(self, graph, mgraph, ops, k):
        for op, arg in ops:
            self._apply(graph, op, arg)
            self._apply(mgraph, op, arg)
        assert sorted(graph.nodes()) == sorted(mgraph.nodes())
        assert sorted(graph.edges()) == sorted(mgraph.edges())
        assert graph.version == mgraph.version
        query = star_of(0)
        got_mem = run_algorithm("stark", ScoringFunction(graph),
                                query, k, d=2)
        got_map = run_algorithm("stark", ScoringFunction(mgraph),
                                query, k, d=2)
        assert_same_results(got_map, got_mem)
        mgraph.close()

    @staticmethod
    def _apply(graph, op: str, arg: int) -> None:
        nodes = sorted(graph.nodes())
        edges = sorted(eid for eid, _s, _d in graph.edges())
        if op == "add_node":
            graph.add_node(f"Node {arg}", "film", [f"kw{arg % 7}"])
        elif op == "add_edge" and len(nodes) >= 2:
            src = nodes[arg % len(nodes)]
            dst = nodes[(arg // 7) % len(nodes)]
            if src != dst:
                graph.add_edge(src, dst, "won")
        elif op == "remove_edge" and edges:
            graph.remove_edge(edges[arg % len(edges)])
        elif op == "remove_node" and len(nodes) > 4:
            graph.remove_node(nodes[arg % len(nodes)])
        elif op == "update_attrs" and nodes:
            graph.update_node_attrs(nodes[arg % len(nodes)], year=arg)

    def test_mutated_overlay_recompacts_identically(self, tmp_path):
        graph = build_movie_graph()
        first = tmp_path / "a.rkgs2"
        write_store(graph, first)
        mgraph = open_graph(first)
        for g in (graph, mgraph):
            nid = g.add_node("Se7en", "film", ["thriller"])
            g.add_edge(0, nid, "acted_in")
            g.remove_node(9)
        second = tmp_path / "b.rkgs2"
        write_store(mgraph, second)
        refolded = open_graph(second)
        assert refolded.version == graph.version
        assert sorted(refolded.nodes()) == sorted(graph.nodes())
        assert sorted(refolded.edges()) == sorted(graph.edges())
        got_mem = run_algorithm("stark", ScoringFunction(graph),
                                star_of(0), 5, d=2)
        got_map = run_algorithm("stark", ScoringFunction(refolded),
                                star_of(0), 5, d=2)
        assert_same_results(got_map, got_mem)


class TestGraphAccessorParity:
    @given(seed=st.integers(min_value=0, max_value=25))
    @settings(max_examples=25, deadline=None)
    def test_structure_and_labels_identical(self, seed):
        graph, mgraph = graph_pair(seed)
        assert sorted(mgraph.nodes()) == sorted(graph.nodes())
        assert sorted(mgraph.edges()) == sorted(graph.edges())
        assert mgraph.num_nodes == graph.num_nodes
        assert mgraph.num_edges == graph.num_edges
        assert mgraph.max_degree == graph.max_degree
        assert sorted(mgraph.types()) == sorted(graph.types())
        assert sorted(mgraph.token_dfs()) == sorted(graph.token_dfs())
        for v in graph.nodes():
            assert mgraph.node(v) == graph.node(v)
            assert sorted(mgraph.neighbors(v)) == sorted(graph.neighbors(v))
            assert (sorted(mgraph.out_neighbors(v))
                    == sorted(graph.out_neighbors(v)))
            assert (sorted(mgraph.in_neighbors(v))
                    == sorted(graph.in_neighbors(v)))
            assert mgraph.degree(v) == graph.degree(v)
