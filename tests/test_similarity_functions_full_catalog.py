"""Behavioural tests for every measure not covered individually elsewhere.

Together with ``test_similarity_functions.py`` every one of the 46
measures has at least one dedicated positive and negative case.
"""

import pytest

from repro.similarity import CorpusContext, Descriptor
from repro.similarity import functions as F

CTX = CorpusContext.empty()


def d(name, type="", keywords=(), degree=0):
    return Descriptor(name, type, tuple(keywords), degree)


class TestRemainingNameMeasures:
    def test_name_edit(self):
        assert F.name_edit(d("brad"), d("brab"), CTX) == pytest.approx(0.75)
        assert F.name_edit(d("?"), d("x"), CTX) == 0.0

    def test_name_jaro_winkler(self):
        assert F.name_jaro_winkler(d("brad"), d("brad"), CTX) == 1.0
        assert F.name_jaro_winkler(d("brad"), d("zzzz"), CTX) == 0.0

    def test_token_jaccard_dice_overlap_ordering(self):
        q, data = d("brad pitt"), d("brad pitt jr")
        j = F.token_jaccard(q, data, CTX)
        dice = F.token_dice(q, data, CTX)
        overlap = F.token_overlap(q, data, CTX)
        assert 0 < j < dice < overlap == 1.0

    def test_prefix_suffix_ratio(self):
        assert F.prefix_ratio(d("brad"), d("brady"), CTX) == 1.0
        assert F.suffix_ratio(d("linklater"), d("slater"), CTX) > 0.8
        assert F.prefix_ratio(d("?"), d("x"), CTX) == 0.0

    def test_data_token_coverage(self):
        assert F.data_token_coverage(d("brad pitt actor"), d("brad pitt"),
                                     CTX) == 1.0
        assert F.data_token_coverage(d("brad"), d("brad pitt"), CTX) == 0.5

    def test_bigram_trigram_jaccard(self):
        same = F.bigram_jaccard(d("brad"), d("brad"), CTX)
        near = F.bigram_jaccard(d("brad"), d("brat"), CTX)
        far = F.bigram_jaccard(d("brad"), d("zzzz"), CTX)
        assert same == 1.0 and same > near > far == 0.0
        assert F.trigram_jaccard(d("brad"), d("brad"), CTX) == 1.0

    def test_soundex_first_token(self):
        assert F.soundex_first_token(d("Robert Smith"), d("Rupert Jones"),
                                     CTX) == 1.0
        assert F.soundex_first_token(d("Robert"), d("Kate"), CTX) == 0.0
        assert F.soundex_first_token(d("123"), d("Kate"), CTX) == 0.0

    def test_phonetic_name(self):
        assert F.phonetic_name(d("philip"), d("filip"), CTX) == 1.0
        assert F.phonetic_name(d("?"), d("x"), CTX) == 0.0


class TestRemainingSemanticMeasures:
    def test_synset_jaccard_expands_both_sides(self):
        score = F.synset_jaccard(d("teacher"), d("educator"), CTX)
        assert score > 0.5  # same synonym group dominates both expansions

    def test_type_synonym(self):
        assert F.type_synonym(d("x", "movie"), d("y", "film"), CTX) == 1.0
        assert F.type_synonym(d("x", "movie"), d("y", "award"), CTX) == 0.0
        assert F.type_synonym(d("x"), d("y", "film"), CTX) == 0.0

    def test_type_token_overlap(self):
        score = F.type_token_overlap(
            d("x", "historic venue"), d("y", "modern venue"), CTX
        )
        assert score == pytest.approx(1 / 3)


class TestRemainingKeywordMeasures:
    def test_keyword_jaccard_and_overlap(self):
        q = d("x", keywords=("drama", "war"))
        data = d("y", keywords=("drama",))
        assert F.keyword_jaccard(q, data, CTX) == pytest.approx(0.5)
        assert F.keyword_overlap(q, data, CTX) == 1.0
        assert F.keyword_jaccard(d("x"), data, CTX) == 0.0

    def test_keyword_in_name(self):
        q = d("x", keywords=("pitt",))
        assert F.keyword_in_name(q, d("Brad Pitt"), CTX) == 1.0
        assert F.keyword_in_name(q, d("Angelina"), CTX) == 0.0
        assert F.keyword_in_name(d("x"), d("Brad"), CTX) == 0.0

    def test_name_in_keyword(self):
        data = d("someone", keywords=("producer", "director"))
        assert F.name_in_keyword(d("producer"), data, CTX) == 1.0
        assert F.name_in_keyword(d("actor"), data, CTX) == 0.0


class TestRemainingNumericMeasures:
    def test_length_ratio(self):
        assert F.length_ratio(d("abcd"), d("ab"), CTX) == pytest.approx(0.5)
        assert F.length_ratio(d("abcd"), d("abcd"), CTX) == 1.0
        assert F.length_ratio(d("?"), d("abcd"), CTX) == 0.0

    def test_numeric_close_denominator_guard(self):
        # Values below 1 use denominator 1.0 (no division blow-up).
        score = F.numeric_close(d("episode 0"), d("episode 1"), CTX)
        assert score == pytest.approx(0.0)


class TestPublicApiSurface:
    def test_top_level_all_resolves(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_subpackage_all_resolves(self):
        import repro.core as core
        import repro.eval as eval_pkg
        import repro.graph as graph
        import repro.query as query
        import repro.similarity as similarity

        for module in (core, eval_pkg, graph, query, similarity):
            for name in module.__all__:
                assert getattr(module, name) is not None, (module.__name__, name)
