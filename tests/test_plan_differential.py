"""Hypothesis differential: planner-on == planner-off, everywhere.

The learned planner's contract is that every knob it may touch -- star
procedure (stark / stard / hybrid), index routing, decomposition method,
alpha -- is **result-preserving**.  This suite pins that contract across
random graphs, star and general (rank-joined) queries, d in {1, 2}, both
planner modes, the online explore -> exploit transition, single-process
and sharded execution, and in-memory vs memory-mapped graphs.

Comparisons are tie-tolerant in the oracle's style (the suite-wide
cross-algorithm contract): rank-by-rank score equality plus assignment
validity at that score -- a different procedure or decomposition may
legitimately surface a different member of an exact score tie.
"""

from __future__ import annotations

from collections import defaultdict

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.framework import Star
from repro.plan import CostModel, QueryPlanner
from repro.query import complex_workload, star_workload
from repro.shard import ShardedEngine
from repro.similarity import ScoringFunction

from tests.conftest import build_random_graph

ROUND = 9
K = 5
#: Rounds through the workload: enough for min_samples=1 models to leave
#: exploration and take genuinely learned decisions.
ROUNDS = 3


def ranking(matches):
    return [(m.key(), round(m.score, ROUND)) for m in matches]


def assert_tie_tolerant_equal(got, expected_topk, expected_full):
    assert ([round(m.score, ROUND) for m in got]
            == [round(m.score, ROUND) for m in expected_topk])
    by_score = defaultdict(set)
    for m in expected_full:
        by_score[round(m.score, ROUND)].add(m.key())
    for m in got:
        assert m.key() in by_score[round(m.score, ROUND)]
    keys = [m.key() for m in got]
    assert len(keys) == len(set(keys))


def _warm_planner(mode: str) -> QueryPlanner:
    """A planner that starts taking non-static decisions immediately."""
    return QueryPlanner(mode=mode, model=CostModel(min_samples=1))


# Deterministic per-seed fixtures (hypothesis re-runs the same seeds).
_STAR_BASE = {}
_GENERAL_BASE = {}


def star_baseline(seed: int, d: int):
    key = (seed, d)
    if key not in _STAR_BASE:
        graph = build_random_graph(seed)
        engine = Star(graph, scorer=ScoringFunction(graph), d=d)
        queries = star_workload(graph, 3, seed=seed)
        expected = [(q, engine.search(q, K), engine.search(q, 200))
                    for q in queries]
        _STAR_BASE[key] = (graph, expected)
    return _STAR_BASE[key]


def general_baseline(seed: int):
    if seed not in _GENERAL_BASE:
        graph = build_random_graph(seed, num_nodes=25, num_edges=70)
        engine = Star(graph, scorer=ScoringFunction(graph), d=1)
        queries = complex_workload(graph, 2, shape=(3, 3), seed=seed + 7)
        expected = [(q, engine.search(q, K), engine.search(q, 200))
                    for q in queries]
        _GENERAL_BASE[seed] = (graph, expected)
    return _GENERAL_BASE[seed]


class TestPlannerDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=6),
        d=st.sampled_from((1, 2)),
        mode=st.sampled_from(("auto", "learned")),
    )
    @settings(max_examples=20, deadline=None)
    def test_star_rankings_score_identical(self, seed, d, mode):
        """Covers stark, stard and hybrid arms via the planner's menu."""
        graph, expected = star_baseline(seed, d)
        planner = _warm_planner(mode)
        engine = Star(graph, scorer=ScoringFunction(graph), d=d,
                      plan=mode, planner=planner)
        for _ in range(ROUNDS):
            for query, topk, full in expected:
                assert_tie_tolerant_equal(engine.search(query, K), topk, full)
        assert sum(planner.decisions.values()) == ROUNDS * len(expected)

    @given(
        seed=st.integers(min_value=0, max_value=5),
        mode=st.sampled_from(("auto", "learned")),
    )
    @settings(max_examples=12, deadline=None)
    def test_general_queries_tie_tolerant_equal(self, seed, mode):
        """Covers the decomposition-method / alpha arms (starjoin path)."""
        graph, expected = general_baseline(seed)
        planner = _warm_planner(mode)
        engine = Star(graph, scorer=ScoringFunction(graph), d=1,
                      plan=mode, planner=planner)
        for _ in range(ROUNDS):
            for query, topk, full in expected:
                assert_tie_tolerant_equal(engine.search(query, K), topk, full)

    @given(
        seed=st.integers(min_value=0, max_value=5),
        d=st.sampled_from((1, 2)),
        shards=st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=12, deadline=None)
    def test_sharded_planned_equals_static_single(self, seed, d, shards):
        graph, expected = star_baseline(seed, d)
        engine = ShardedEngine(
            graph, scorer=ScoringFunction(graph), shards=shards,
            backend="serial", d=d, plan="auto", planner=_warm_planner("auto"),
        )
        try:
            for _ in range(ROUNDS):
                for query, topk, full in expected:
                    assert_tie_tolerant_equal(
                        engine.search(query, K), topk, full
                    )
        finally:
            engine.close()


class TestPlannerMmapDifferential:
    @pytest.mark.parametrize("d", (1, 2))
    @pytest.mark.parametrize("mode", ("auto", "learned"))
    def test_mmap_planned_equals_in_memory_static(self, tmp_path, d, mode):
        from repro.graph import KnowledgeGraph
        from repro.store import write_store

        graph = build_random_graph(3)
        static = Star(graph, scorer=ScoringFunction(graph), d=d)
        queries = star_workload(graph, 3, seed=3)
        expected = [(q, static.search(q, K), static.search(q, 200))
                    for q in queries]

        path = str(tmp_path / "g.rkgs2")
        write_store(graph, path)
        mapped = KnowledgeGraph.open_mmap(path)
        try:
            engine = Star(mapped, scorer=ScoringFunction(mapped), d=d,
                          plan=mode, planner=_warm_planner(mode))
            for _ in range(ROUNDS):
                for query, topk, full in expected:
                    assert_tie_tolerant_equal(
                        engine.search(query, K), topk, full
                    )
        finally:
            mapped.close()
