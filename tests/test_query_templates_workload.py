"""Tests for the 50-template workload and query generation."""

import pytest

from repro.errors import QueryError
from repro.query import (
    StarQuery,
    all_templates,
    complex_workload,
    instantiate,
    random_subgraph_query,
    star_workload,
    templates_of_size,
)


class TestTemplates:
    def test_exactly_fifty(self):
        assert len(all_templates()) == 50

    def test_variable_fraction_capped(self):
        """The paper caps variable labels at 50% per template."""
        for t in all_templates():
            assert t.variable_fraction() <= 0.5, t.name

    def test_sizes_cover_2_to_6(self):
        """Exp-2 varies star size from 2 to 6 query nodes."""
        for size in range(2, 7):
            assert templates_of_size(size), f"no templates of size {size}"

    def test_names_unique(self):
        names = [t.name for t in all_templates()]
        assert len(names) == len(set(names))

    def test_single_edge_templates_cover_both_orientations(self):
        names = {t.name for t in all_templates()}
        assert "acted_in_fwd" in names and "acted_in_rev" in names


class TestInstantiate:
    def test_star_shaped_output(self, yago_graph):
        import random

        rng = random.Random(4)
        for template in all_templates()[:10]:
            q = instantiate(template, yago_graph, rng)
            q.validate()
            assert q.is_star()
            star = StarQuery.from_query(q)
            assert star.size == template.size

    def test_variable_leaves_get_data_labels(self, yago_graph):
        import random

        template = next(t for t in all_templates() if t.name == "acted_in_rev")
        q = instantiate(template, yago_graph, random.Random(7))
        # Leaf label must be instantiated (not the raw variable).
        assert q.nodes[1].label != "?"

    def test_deterministic_given_rng(self, yago_graph):
        import random

        template = all_templates()[5]
        q1 = instantiate(template, yago_graph, random.Random(42))
        q2 = instantiate(template, yago_graph, random.Random(42))
        assert [n.label for n in q1.nodes] == [n.label for n in q2.nodes]


class TestStarWorkload:
    def test_count_and_shape(self, yago_graph):
        queries = star_workload(yago_graph, 25, seed=1)
        assert len(queries) == 25
        assert all(q.is_star() for q in queries)

    def test_size_filter(self, yago_graph):
        queries = star_workload(yago_graph, 10, seed=1, size=3)
        assert all(q.num_nodes == 3 for q in queries)

    def test_empty_pool_rejected(self, yago_graph):
        with pytest.raises(QueryError):
            star_workload(yago_graph, 5, size=99)

    def test_deterministic(self, yago_graph):
        a = star_workload(yago_graph, 5, seed=3)
        b = star_workload(yago_graph, 5, seed=3)
        assert [n.label for q in a for n in q.nodes] == [
            n.label for q in b for n in q.nodes
        ]


class TestComplexQueries:
    def test_shape_respected(self, dense_graph):
        q = random_subgraph_query(dense_graph, 4, 5, seed=11)
        q.validate()
        assert q.num_nodes == 4 and q.num_edges == 5
        assert not q.is_star()  # 5 edges on 4 nodes always has a cycle

    def test_wildcard_budget(self, dense_graph):
        for seed in range(5):
            q = random_subgraph_query(dense_graph, 6, 6, seed=seed)
            wildcards = sum(1 for n in q.nodes if n.is_wildcard)
            assert wildcards <= 3

    def test_infeasible_shape_rejected(self, dense_graph):
        with pytest.raises(QueryError):
            random_subgraph_query(dense_graph, 4, 7)  # > C(4,2)
        with pytest.raises(QueryError):
            random_subgraph_query(dense_graph, 4, 2)  # < spanning tree
        with pytest.raises(QueryError):
            random_subgraph_query(dense_graph, 1, 0)

    def test_has_exact_answer_structure(self, dense_graph):
        """The lifted subgraph guarantees a structural answer exists."""
        from repro.baselines import brute_force_topk
        from repro.similarity import ScoringConfig, ScoringFunction

        scorer = ScoringFunction(dense_graph, ScoringConfig(fast=True))
        q = random_subgraph_query(dense_graph, 3, 3, seed=5)
        assert brute_force_topk(scorer, q, 1, candidate_limit=300)

    def test_complex_workload(self, dense_graph):
        queries = complex_workload(dense_graph, 4, shape=(4, 4), seed=2)
        assert len(queries) == 4
        assert all(q.num_edges == 4 for q in queries)
