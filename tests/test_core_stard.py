"""Tests for procedure stard: message passing and d-bounded exactness."""

import itertools

import pytest

from repro.baselines import brute_force_star
from repro.core import StarDSearch, StarKSearch, is_monotone_non_increasing
from repro.core.messages import Top2, estimate_leaf_bound, propagate
from repro.errors import SearchError
from repro.graph import KnowledgeGraph
from repro.query import StarQuery, star_query, star_workload


class TestTop2:
    def test_keeps_two_best_distinct_origins(self):
        t = Top2(0.5, origin=1)
        t.offer(0.9, origin=2)
        t.offer(0.7, origin=3)
        assert (t.s1, t.o1) == (0.9, 2)
        assert (t.s2, t.o2) == (0.7, 3)

    def test_same_origin_updates_in_place(self):
        t = Top2(0.5, origin=1)
        t.offer(0.8, origin=1)
        assert (t.s1, t.o1) == (0.8, 1)
        assert t.o2 == -1

    def test_best_excluding(self):
        t = Top2(0.9, origin=7)
        t.offer(0.6, origin=8)
        assert t.best_excluding(None) == 0.9
        assert t.best_excluding(7) == 0.6
        assert t.best_excluding(8) == 0.9

    def test_best_excluding_single_entry(self):
        t = Top2(0.9, origin=7)
        assert t.best_excluding(7) is None

    def test_merge(self):
        a = Top2(0.9, 1)
        b = Top2(0.8, 2)
        b.offer(0.7, 3)
        a.merge(b)
        assert (a.s1, a.o1) == (0.9, 1)
        assert (a.s2, a.o2) == (0.8, 2)


class TestPropagation:
    def path_graph(self, n):
        g = KnowledgeGraph()
        for i in range(n):
            g.add_node(f"v{i}")
        for i in range(n - 1):
            g.add_edge(i, i + 1)
        return g

    def test_walk_distance_semantics(self):
        g = self.path_graph(5)
        layers = propagate(g, {0: 0.9}, d=3)
        assert layers[0][0].s1 == 0.9
        assert layers[1][1].s1 == 0.9
        assert layers[2][2].s1 == 0.9
        assert layers[3][3].s1 == 0.9
        # Walks bounce back: at h=2 the seed reaches itself again.
        assert layers[2][0].s1 == 0.9
        assert 4 not in layers[3] or layers[3][4].s1 != 0.9

    def test_multiple_seeds_max_wins(self):
        g = self.path_graph(3)
        layers = propagate(g, {0: 0.5, 2: 0.9}, d=1)
        # Node 1 hears both seeds; best first, runner-up kept.
        top2 = layers[1][1]
        assert (top2.s1, top2.o1) == (0.9, 2)
        assert (top2.s2, top2.o2) == (0.5, 0)

    def test_space_bound(self):
        """B[h] never exceeds |V| entries (paper: O(d|V|) space)."""
        g = self.path_graph(30)
        layers = propagate(g, {i: 0.5 for i in range(0, 30, 3)}, d=4)
        assert all(len(layer) <= g.num_nodes for layer in layers)

    def test_empty_seeds(self):
        g = self.path_graph(3)
        layers = propagate(g, {}, d=2)
        assert all(not layer for layer in layers)


class TestEstimates:
    def test_estimate_is_upper_bound(self, yago_scorer, yago_graph):
        """Message-passing estimates dominate exact per-pivot top-1 scores."""
        from repro.core.candidates import node_candidates

        for query in star_workload(yago_graph, 5, seed=31):
            star = StarQuery.from_query(query)
            matcher = StarDSearch(yago_scorer, d=2)
            layers = matcher._propagate_leaves(star)
            exact = StarKSearch(yago_scorer, d=2)
            from repro.core.stark import bounded_leaf_provider

            provider = bounded_leaf_provider(yago_scorer, star, {}, 2, True)
            for pivot_node, pivot_score in node_candidates(
                yago_scorer, star.pivot
            )[:10]:
                estimate = matcher._pivot_estimate(
                    star, pivot_node, pivot_score, {}, layers
                )
                gen = exact.build_generator(
                    star, pivot_node, pivot_score, {}, provider
                )
                if gen is None:
                    continue
                first = gen.next_match()
                if first is None:
                    continue
                assert estimate is not None
                assert estimate >= first.score - 1e-9

    def test_estimate_leaf_bound_skips_thresholded_hops(self):
        g = KnowledgeGraph()
        for i in range(4):
            g.add_node(f"v{i}")
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        layers = propagate(g, {3: 0.9}, d=3)
        # With a huge edge threshold only direct edges qualify; node 0 only
        # reaches the seed in 3 hops, so no bound exists.
        bound = estimate_leaf_bound(
            layers, 0, 3, lambda h: 1.0 if h == 1 else 0.25 ** (h - 1),
            edge_threshold=0.9, exclude_pivot=True,
        )
        assert bound is None


class TestExactness:
    @pytest.mark.parametrize("d", [2, 3])
    def test_matches_oracle(self, yago_scorer, yago_graph, d):
        for query in star_workload(yago_graph, 6, seed=32):
            star = StarQuery.from_query(query)
            got = StarDSearch(yago_scorer, d=d).search(star, 5)
            want = brute_force_star(yago_scorer, star, 5, d=d)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            ), query.name

    def test_agrees_with_stark_d(self, yago_scorer, yago_graph):
        """stard == stark at equal d (Fig. 12's correctness premise)."""
        for query in star_workload(yago_graph, 6, seed=33):
            star = StarQuery.from_query(query)
            fast = StarDSearch(yago_scorer, d=2).search(star, 8)
            slow = StarKSearch(yago_scorer, d=2).search(star, 8)
            assert [m.score for m in fast] == pytest.approx(
                [m.score for m in slow]
            )

    def test_d1_delegates_to_stark(self, yago_scorer, yago_graph):
        query = star_workload(yago_graph, 1, seed=34)[0]
        star = StarQuery.from_query(query)
        d1 = StarDSearch(yago_scorer, d=1).search(star, 5)
        stark = StarKSearch(yago_scorer).search(star, 5)
        assert [m.score for m in d1] == [m.score for m in stark]

    def test_monotone_stream(self, yago_scorer, yago_graph):
        query = star_workload(yago_graph, 1, seed=35)[0]
        star = StarQuery.from_query(query)
        stream = StarDSearch(yago_scorer, d=2).stream(star)
        assert is_monotone_non_increasing(list(itertools.islice(stream, 25)))

    def test_invalid_d(self, yago_scorer):
        with pytest.raises(SearchError):
            StarDSearch(yago_scorer, d=0)

    def test_k_validation(self, yago_scorer):
        star = star_query("Brad", [("acted_in", "?")])
        with pytest.raises(SearchError):
            StarDSearch(yago_scorer, d=2).search(star, -1)


class TestLaziness:
    def test_evaluates_fewer_pivots_than_stark(self, yago_scorer, yago_graph):
        """The whole point of stard: skip most exact d-hop traversals."""
        evaluated = []
        considered = []
        for query in star_workload(yago_graph, 10, seed=36):
            star = StarQuery.from_query(query)
            matcher = StarDSearch(yago_scorer, d=2)
            matcher.search(star, 5)
            stark = StarKSearch(yago_scorer, d=2)
            stark.search(star, 5)
            evaluated.append(matcher.pivots_evaluated)
            considered.append(stark.stats.pivots_considered)
        assert sum(evaluated) < sum(considered)
