"""Tests for scoring-config persistence and ASCII charts."""

import pytest

from repro.errors import ScoringError
from repro.eval.charts import ascii_chart
from repro.similarity import (
    Descriptor,
    ScoringConfig,
    ScoringFunction,
    learn_weights,
    load_config,
    save_config,
)


class TestConfigIo:
    def test_roundtrip_default(self, tmp_path):
        path = tmp_path / "cfg.json"
        save_config(ScoringConfig(), path)
        loaded = load_config(path)
        assert dict(loaded.node_weights) == dict(ScoringConfig().node_weights)
        assert loaded.node_threshold == ScoringConfig().node_threshold
        assert loaded.path_lambda == ScoringConfig().path_lambda

    def test_roundtrip_learned_weights_scores_identical(
        self, yago_graph, tmp_path
    ):
        weights = learn_weights(yago_graph, num_pairs=100, seed=77)
        config = ScoringConfig(node_weights=weights, node_threshold=0.2)
        path = tmp_path / "learned.json"
        save_config(config, path)
        loaded = load_config(path)
        a = ScoringFunction(yago_graph, config)
        b = ScoringFunction(yago_graph, loaded)
        q = Descriptor("Brad", "actor")
        for node in range(0, 200, 7):
            assert a.node_score(q, node) == pytest.approx(
                b.node_score(q, node)
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(ScoringError):
            load_config(tmp_path / "none.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ScoringError):
            load_config(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"version": 99}')
        with pytest.raises(ScoringError):
            load_config(path)

    def test_invalid_values_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            '{"version": 1, "node_weights": {"exact_name": -1},'
            ' "edge_weights": {}, "node_threshold": 0.2,'
            ' "edge_threshold": 0.1, "path_lambda": 0.5}'
        )
        with pytest.raises(ScoringError):
            load_config(path)

    def test_invalid_config_not_saved(self, tmp_path):
        config = ScoringConfig(node_threshold=2.0)
        with pytest.raises(ScoringError):
            save_config(config, tmp_path / "x.json")


class TestAsciiChart:
    def test_contains_series_and_labels(self):
        text = ascii_chart(
            "T", [1, 2, 3],
            [("a", [1.0, 10.0, 100.0]), ("b", [2.0, 20.0, 200.0])],
        )
        assert "== T ==" in text
        assert "* a" in text and "o b" in text
        assert "log10" in text
        for x in ("1", "2", "3"):
            assert x in text

    def test_extremes_hit_first_and_last_rows(self):
        text = ascii_chart("T", [1, 2], [("a", [1.0, 1000.0])], height=10)
        rows = text.splitlines()[1:11]
        assert "*" in rows[0]      # max on top row
        assert "*" in rows[-1]     # min on bottom row

    def test_linear_scale(self):
        text = ascii_chart(
            "T", [1, 2], [("a", [0.0, 5.0])], log_scale=False
        )
        assert "log10" not in text

    def test_handles_missing_points(self):
        text = ascii_chart("T", [1, 2, 3], [("a", [1.0, None, 3.0])])
        assert "== T ==" in text

    def test_empty_series(self):
        assert "(no data)" in ascii_chart("T", [1], [("a", [])])

    def test_non_positive_skipped_on_log_scale(self):
        text = ascii_chart("T", [1, 2], [("a", [0.0, 10.0])])
        assert "== T ==" in text
