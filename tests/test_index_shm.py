"""Tests for shared-memory export/attach of GraphIndex columns.

The contract of :mod:`repro.index.shm`: an attached index serves the
exact same candidates as the index it was exported from (same values,
same order), refuses maintenance past the export version, and never
leaks ``/dev/shm`` segments -- unlink is idempotent and backed by a
``weakref.finalize`` safety net.
"""

from __future__ import annotations

import gc
import pickle
from pathlib import Path

import pytest

from repro.core.candidates import node_candidates
from repro.index import (
    GraphIndex,
    attach_index,
    attach_shared_index,
    export_index,
)
from repro.index.shm import SEGMENT_PREFIX
from repro.query.model import QueryNode
from repro.similarity import ScoringFunction

from tests.conftest import build_movie_graph, build_random_graph

SHM_DIR = Path("/dev/shm")

needs_shm_dir = pytest.mark.skipif(
    not SHM_DIR.is_dir(), reason="no /dev/shm on this platform"
)


def stale_segments():
    if not SHM_DIR.is_dir():
        return []
    return sorted(p.name for p in SHM_DIR.glob(f"{SEGMENT_PREFIX}*"))


def exported_pair(graph):
    """(indexed scorer, SharedIndexColumns) over a refreshed index."""
    scorer = ScoringFunction(graph)
    index = attach_index(scorer, mode="on")
    index.refresh()
    columns = export_index(index, corpus=scorer.corpus)
    return scorer, columns


class TestExportAttachParity:
    def test_attached_candidates_identical(self):
        graph = build_movie_graph()
        scorer, columns = exported_pair(graph)
        try:
            attached = attach_shared_index(columns.handle, graph)
            mirror = ScoringFunction(graph)
            mirror.graph_index = attached
            for qnode in (QueryNode(0, "Brad Pitt", "actor"),
                          QueryNode(0, "the hurt locker", "film"),
                          QueryNode(0, "?", "award")):
                for limit in (None, 2, 5):
                    expect = node_candidates(scorer, qnode, limit=limit)
                    got = node_candidates(mirror, qnode, limit=limit)
                    assert got == expect
            attached.detach()
        finally:
            columns.unlink()

    def test_attached_parity_on_random_graphs(self):
        for seed in (0, 5, 9):
            graph = build_random_graph(seed)
            scorer, columns = exported_pair(graph)
            try:
                attached = attach_shared_index(columns.handle, graph)
                mirror = ScoringFunction(graph)
                mirror.graph_index = attached
                qnode = QueryNode(0, "Brad Pitt", "actor")
                assert (node_candidates(mirror, qnode, limit=4)
                        == node_candidates(scorer, qnode, limit=4))
                attached.detach()
            finally:
                columns.unlink()

    def test_handle_is_picklable(self):
        graph = build_movie_graph()
        _scorer, columns = exported_pair(graph)
        try:
            clone = pickle.loads(pickle.dumps(columns.handle))
            assert clone == columns.handle
        finally:
            columns.unlink()


class TestValidation:
    def test_export_requires_synced_index(self):
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        index = attach_index(scorer, mode="on")
        index.refresh()
        graph.add_node("late arrival", "actor")
        with pytest.raises(ValueError, match="synced"):
            export_index(index, corpus=scorer.corpus)

    def test_export_requires_corpus_when_idf_stale(self):
        graph = build_movie_graph()
        index = GraphIndex(graph, mode="on")
        assert index.vocab.idf_stale
        with pytest.raises(ValueError, match="IDF is stale"):
            export_index(index)

    def test_attach_rejects_other_graph(self):
        graph = build_movie_graph()
        _scorer, columns = exported_pair(graph)
        try:
            with pytest.raises(ValueError, match="belongs to graph"):
                attach_shared_index(columns.handle, build_movie_graph())
        finally:
            columns.unlink()

    def test_attach_rejects_version_drift(self):
        graph = build_movie_graph()
        _scorer, columns = exported_pair(graph)
        try:
            graph.add_node("version bump", "actor")
            with pytest.raises(ValueError, match="version"):
                attach_shared_index(columns.handle, graph)
        finally:
            columns.unlink()

    def test_attached_refresh_contract(self):
        graph = build_movie_graph()
        _scorer, columns = exported_pair(graph)
        try:
            attached = attach_shared_index(columns.handle, graph)
            assert attached.refresh() is False  # same version: no-op
            graph.add_node("mutation", "actor")
            with pytest.raises(RuntimeError, match="re-export"):
                attached.refresh()
            attached.detach()
        finally:
            columns.unlink()

    def test_attached_constructor_blocked(self):
        from repro.index.shm import AttachedGraphIndex

        with pytest.raises(TypeError):
            AttachedGraphIndex()


@needs_shm_dir
class TestCleanup:
    def test_unlink_is_idempotent_and_removes_segment(self):
        before = stale_segments()
        graph = build_movie_graph()
        _scorer, columns = exported_pair(graph)
        name = columns.handle.name
        assert any(name in seg for seg in stale_segments())
        columns.unlink()
        columns.unlink()  # second call must be a no-op
        assert stale_segments() == before

    def test_finalizer_cleans_dropped_owner(self):
        before = stale_segments()
        graph = build_movie_graph()
        _scorer, columns = exported_pair(graph)
        del columns
        gc.collect()
        assert stale_segments() == before

    def test_detach_releases_views(self):
        graph = build_movie_graph()
        scorer, columns = exported_pair(graph)
        try:
            attached = attach_shared_index(columns.handle, graph)
            mirror = ScoringFunction(graph)
            mirror.graph_index = attached
            node_candidates(mirror, QueryNode(0, "brad", "actor"), limit=3)
            attached.detach()
            assert attached.postings.postings == []
            assert attached._shm is None
        finally:
            columns.unlink()
