"""Tests for the cursor-lattice match generator."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.lattice import PivotMatchGenerator, make_leaf_list


def build_generator(leaf_value_lists, injective=True, pivot_node=100,
                    pivot_score=0.5):
    """Each leaf list: [(node, node_score)]; edge score fixed at 0.1."""
    leaf_lists = [
        make_leaf_list([
            (ns + 0.1, node, ns, 0.1, 1) for node, ns in entries
        ])
        for entries in leaf_value_lists
    ]
    positions = [(i + 1, i) for i in range(len(leaf_lists))]
    return PivotMatchGenerator(
        0, pivot_node, pivot_score, pivot_score, positions, leaf_lists,
        injective=injective,
    )


class TestEnumeration:
    def test_single_leaf_order(self):
        gen = build_generator([[(1, 0.9), (2, 0.5), (3, 0.7)]])
        scores = [m.score for m in gen]
        assert scores == sorted(scores, reverse=True)
        assert len(scores) == 3

    def test_two_leaves_full_enumeration(self):
        gen = build_generator([[(1, 0.9), (2, 0.5)], [(3, 0.8), (4, 0.4)]])
        matches = list(gen)
        assert len(matches) == 4
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_best_first(self):
        gen = build_generator([[(1, 0.9), (2, 0.5)], [(3, 0.8), (4, 0.4)]])
        first = gen.next_match()
        assert first.assignment == {0: 100, 1: 1, 2: 3}
        assert first.score == pytest.approx(0.5 + (0.9 + 0.1) + (0.8 + 0.1))

    def test_empty_leaf_list_yields_nothing(self):
        gen = build_generator([[(1, 0.9)], []])
        assert gen.next_match() is None

    def test_exhaustion_is_stable(self):
        gen = build_generator([[(1, 0.9)]])
        assert gen.next_match() is not None
        assert gen.next_match() is None
        assert gen.next_match() is None
        assert gen.peek_score() is None


class TestInjectivity:
    def test_collision_skipped(self):
        # Both leaves prefer node 7; injective mode must not assign twice.
        gen = build_generator([[(7, 0.9), (1, 0.2)], [(7, 0.8), (2, 0.3)]])
        matches = list(gen)
        for m in matches:
            assert m.is_injective()
        # Valid combos: (7,2), (1,7), (1,2) -- not (7,7).
        assert len(matches) == 3

    def test_pivot_collision_impossible_by_construction(self):
        # Leaf node equal to the pivot node is excluded by providers, but
        # if present the generator still rejects the combination.
        gen = build_generator([[(100, 0.9), (1, 0.2)]])
        matches = list(gen)
        assert [m.assignment[1] for m in matches] == [1]

    def test_non_injective_allows_collisions(self):
        gen = build_generator(
            [[(7, 0.9)], [(7, 0.8)]], injective=False
        )
        match = gen.next_match()
        assert match is not None
        assert match.assignment[1] == match.assignment[2] == 7

    def test_completeness_after_skips(self):
        """Skipped colliding cursors still expand their successors."""
        gen = build_generator(
            [[(7, 0.9), (1, 0.1)], [(7, 0.8), (1, 0.1)], [(7, 0.7), (2, 0.1)]]
        )
        matches = list(gen)
        # Brute-force count of injective combos.
        nodes = [[7, 1], [7, 1], [7, 2]]
        expected = sum(
            1 for combo in itertools.product(*nodes)
            if len(set(combo)) == len(combo)
        )
        assert len(matches) == expected


class TestMonotonicityProperty:
    @given(
        st.lists(
            st.lists(
                st.tuples(st.integers(min_value=1, max_value=8),
                          st.floats(min_value=0.0, max_value=1.0,
                                    allow_nan=False)),
                min_size=1, max_size=5, unique_by=lambda t: t[0],
            ),
            min_size=1, max_size=3,
        ),
        st.booleans(),
    )
    @settings(max_examples=150, deadline=None)
    def test_scores_non_increasing_and_complete(self, value_lists, injective):
        gen = build_generator(value_lists, injective=injective)
        matches = list(gen)
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)
        # Completeness: count equals the number of (valid) combos.
        nodes = [[node for node, _s in entries] for entries in value_lists]
        combos = itertools.product(*nodes)
        if injective:
            expected = sum(
                1 for c in combos
                if len(set(c)) == len(c) and 100 not in c
            )
        else:
            expected = sum(1 for _ in combos)
        assert len(matches) == expected

    def test_match_breakdown_consistent(self):
        gen = build_generator([[(1, 0.9)], [(2, 0.4)]])
        m = gen.next_match()
        total = sum(m.node_scores.values()) + sum(m.edge_scores.values())
        assert m.score == pytest.approx(total)
        assert m.edge_hops == {0: 1, 1: 1}
