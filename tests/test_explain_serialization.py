"""Tests for score explanations and workload serialization."""

import pytest

from repro.core import Star, StarKSearch
from repro.errors import QueryError
from repro.query import (
    Query,
    StarQuery,
    complex_workload,
    load_workload,
    parse_query,
    save_workload,
    star_query,
    star_workload,
)
from repro.similarity import (
    Descriptor,
    explain_match,
    explain_node_score,
    explain_relation_score,
)


class TestExplainNodeScore:
    def test_contributions_sum_to_score(self, movie_scorer):
        q = Descriptor("Brad Pitt", "actor")
        score = movie_scorer.node_score(q, 0)
        contributions = explain_node_score(movie_scorer, q, 0)
        assert sum(c.weighted for c in contributions) == pytest.approx(score)

    def test_sorted_by_contribution(self, movie_scorer):
        q = Descriptor("Brad Pitt", "actor")
        contributions = explain_node_score(movie_scorer, q, 0)
        weights = [c.weighted for c in contributions]
        assert weights == sorted(weights, reverse=True)

    def test_top_parameter(self, movie_scorer):
        q = Descriptor("Brad Pitt", "actor")
        assert len(explain_node_score(movie_scorer, q, 0, top=3)) == 3

    def test_wildcard_synthetic_contribution(self, movie_scorer):
        q = Descriptor("?")
        contributions = explain_node_score(movie_scorer, q, 0)
        assert len(contributions) == 1
        assert contributions[0].measure == "wildcard_base_plus_popularity"
        assert contributions[0].weighted == pytest.approx(
            movie_scorer.node_score(q, 0)
        )

    def test_exact_name_dominant_for_exact_match(self, movie_scorer):
        q = Descriptor("Brad Pitt")
        top = explain_node_score(movie_scorer, q, 0, top=5)
        assert any(c.measure == "exact_name" for c in top)


class TestExplainRelation:
    def test_relation_contributions(self, movie_scorer):
        q = Descriptor("acted_in")
        contributions = explain_relation_score(movie_scorer, q, "acted_in")
        assert contributions
        score = movie_scorer.relation_score(q, "acted_in")
        assert sum(c.weighted for c in contributions) == pytest.approx(score)
        assert contributions[0].measure == "relation_exact"


class TestExplainMatch:
    def test_renders_all_elements(self, movie_graph, movie_scorer):
        q = parse_query(
            "(?m:director) -[collaborated_with]- (Brad:actor)\n"
            "(?m) -[won]- (?:award)"
        )
        match = Star(movie_graph, scorer=movie_scorer).search(q, 1)[0]
        text = explain_match(movie_scorer, q, match)
        assert f"match score {match.score:.3f}" in text
        assert "Richard Linklater" in text
        assert "F_N=" in text and "F_E=" in text
        assert "direct edge" in text

    def test_path_match_explanation(self, movie_graph, movie_scorer):
        star = star_query("Richard", [("?", "Academy Award")],
                          pivot_type="director")
        from repro.core import StarDSearch

        match = StarDSearch(movie_scorer, d=2).search(star, 1)[0]
        q = Query()
        a = q.add_node("Richard", type="director")
        b = q.add_node("Academy Award")
        q.add_edge(a, b, "?")
        text = explain_match(movie_scorer, q, match)
        assert "path of length 2" in text


class TestWorkloadSerialization:
    def test_roundtrip_star_workload(self, yago_graph, tmp_path):
        queries = star_workload(yago_graph, 6, seed=141)
        path = tmp_path / "workload.txt"
        save_workload(queries, path)
        loaded = load_workload(path)
        assert len(loaded) == len(queries)
        for original, rebuilt in zip(queries, loaded):
            assert rebuilt.name == original.name
            assert rebuilt.num_nodes == original.num_nodes
            assert rebuilt.num_edges == original.num_edges
            assert [e.label for e in rebuilt.edges] == [
                e.label for e in original.edges
            ]

    def test_roundtrip_preserves_search_results(self, yago_graph, yago_scorer,
                                                 tmp_path):
        queries = star_workload(yago_graph, 3, seed=142)
        path = tmp_path / "workload.txt"
        save_workload(queries, path)
        loaded = load_workload(path)
        for original, rebuilt in zip(queries, loaded):
            a = StarKSearch(yago_scorer).search(StarQuery.from_query(original), 3)
            b = StarKSearch(yago_scorer).search(StarQuery.from_query(rebuilt), 3)
            assert [round(m.score, 9) for m in a] == [
                round(m.score, 9) for m in b
            ]

    def test_complex_workload_roundtrip(self, yago_graph, tmp_path):
        queries = complex_workload(yago_graph, 2, shape=(4, 4), seed=143)
        path = tmp_path / "w.txt"
        save_workload(queries, path)
        loaded = load_workload(path)
        assert all(q.num_edges == 4 for q in loaded)

    def test_edgeless_query_rejected(self, tmp_path):
        q = Query()
        q.add_node("only")
        with pytest.raises(QueryError):
            save_workload([q], tmp_path / "w.txt")

    def test_missing_file(self, tmp_path):
        with pytest.raises(QueryError):
            load_workload(tmp_path / "nope.txt")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(QueryError):
            load_workload(path)


class TestCliExplain:
    def test_search_explain_flag(self, tmp_path, movie_graph, capsys):
        from repro.cli import main
        from repro.graph import save_graph

        path = tmp_path / "g.kg"
        save_graph(movie_graph, path)
        code = main([
            "search", str(path),
            "(?m:director) -[collaborated_with]- (Brad:actor)",
            "-k", "1", "--explain",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "match score" in out
        assert "contributes" in out
