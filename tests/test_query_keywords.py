"""Tests for the keyword-query front-end (``repro.query.keywords``)."""

from __future__ import annotations

import pytest

from repro.core.framework import Star
from repro.errors import QueryError
from repro.query.keywords import (
    KeywordInterpretation,
    parse_keywords,
    synthesize_query,
)
from repro.query.model import WILDCARD


class TestParseKeywords:
    def test_plain_split(self):
        assert parse_keywords("director drama oscar") \
            == ["director", "drama", "oscar"]

    def test_quoted_phrase_stays_single(self):
        assert parse_keywords('director "Brad Pitt"') \
            == ["director", "Brad Pitt"]

    def test_list_input_passthrough(self):
        assert parse_keywords(["  director ", "", "drama"]) \
            == ["director", "drama"]

    def test_unbalanced_quote_raises(self):
        with pytest.raises(QueryError, match="cannot parse keywords"):
            parse_keywords('director "unterminated')


class TestSynthesize:
    def test_type_keyword_becomes_typed_wildcard_pivot(self, movie_graph):
        interp = synthesize_query(movie_graph, "director drama")
        assert isinstance(interp, KeywordInterpretation)
        assert interp.pivot_keyword == "director"
        pivot = interp.query.nodes[0]
        assert pivot.label == WILDCARD
        assert pivot.type == "director"
        # 'drama' is a token leaf joined by a wildcard edge.
        assert interp.query.num_edges == 1
        assert interp.query.edges[0].label == WILDCARD

    def test_ambiguous_keyword_resolves_as_type(self, movie_graph):
        # 'actor' names a node type AND hits token postings (e.g. node
        # descriptions); the type reading wins, alternative recorded.
        interp = synthesize_query(movie_graph, "actor venice")
        role = interp.roles[0]
        assert role.keyword == "actor"
        assert role.role == "type"
        assert role.alternatives == ("token",)

    def test_token_only_keywords_pick_most_selective_pivot(self, movie_graph):
        interp = synthesize_query(movie_graph, "brad venice")
        roles = {r.keyword: r for r in interp.roles}
        assert all(r.role == "token" for r in roles.values())
        expected_pivot = min(
            roles.values(), key=lambda r: (r.matches, 0)
        ).keyword
        assert interp.pivot_keyword == expected_pivot

    def test_unknown_keywords_reported_not_fatal(self, movie_graph):
        interp = synthesize_query(movie_graph, "director xyzzynotaword")
        assert interp.unmatched == ("xyzzynotaword",)
        assert "ignored" in interp.describe()

    def test_all_unknown_raises(self, movie_graph):
        with pytest.raises(QueryError, match="no keyword matches"):
            synthesize_query(movie_graph, "xyzzy plugh")

    def test_empty_raises(self, movie_graph):
        with pytest.raises(QueryError, match="empty"):
            synthesize_query(movie_graph, "   ")

    def test_describe_marks_pivot_and_leaves(self, movie_graph):
        text = synthesize_query(movie_graph, "director drama").describe()
        assert "pivot" in text and "leaf" in text

    def test_synthesized_query_searches_end_to_end(self, movie_graph):
        interp = synthesize_query(movie_graph, "director globe")
        engine = Star(movie_graph, d=2)
        matches = engine.search(interp.query, 3)
        assert matches
        # The pivot slot is filled by an actual director.
        for match in matches:
            node = movie_graph.node(match.assignment[0])
            assert node.type == "director"

    def test_single_keyword_star(self, movie_graph):
        interp = synthesize_query(movie_graph, "director")
        assert interp.query.num_nodes == 1
        assert interp.query.num_edges == 0
        matches = Star(movie_graph).search(interp.query, 2)
        assert matches
