"""Budget / anytime-search contract tests for the runtime layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BeliefPropagation, GraphTA, brute_force_star
from repro.core import HybridStarSearch, Star, StarDSearch, StarKSearch
from repro.errors import (
    BudgetExceededError,
    SearchError,
    SearchTimeoutError,
)
from repro.query import Query, star_query
from repro.runtime import (
    MAX_DEGRADE_LEVEL,
    MODES,
    REASON_DEADLINE,
    REASON_FAULT,
    REASON_NODES,
    SLO_CLASSES,
    Budget,
    SearchReport,
    derive_budget_spec,
)


class FakeClock:
    """Deterministic monotonic clock for deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestBudgetUnit:
    def test_negative_limits_rejected(self):
        for kwargs in (
            {"deadline_ms": -1},
            {"max_nodes": -1},
            {"max_messages": -5},
            {"max_join_steps": -2},
        ):
            with pytest.raises(SearchError):
                Budget(**kwargs)

    def test_unlimited_budget_never_trips(self):
        b = Budget()
        for _ in range(1000):
            assert not b.charge_nodes()
        assert not b.check()
        assert b.exceeded_reason is None

    def test_node_cap_strict_raises(self):
        b = Budget(max_nodes=3)
        for _ in range(3):
            assert not b.charge_nodes()
        with pytest.raises(BudgetExceededError):
            b.charge_nodes()
        assert b.exceeded_reason == REASON_NODES

    def test_node_cap_anytime_returns_true_and_sticks(self):
        b = Budget(max_nodes=2, anytime=True)
        assert not b.charge_nodes()
        assert not b.charge_nodes()
        assert b.charge_nodes()
        # Sticky: every later charge (of any kind) reports exhaustion.
        assert b.charge_messages()
        assert b.charge_join_steps()
        assert b.check()

    def test_deadline_strict_raises_timeout_subclass(self):
        clock = FakeClock()
        b = Budget(deadline_ms=10, clock=clock)
        assert not b.check()
        clock.advance(0.011)
        with pytest.raises(SearchTimeoutError):
            b.check()
        # SearchTimeoutError is catchable as BudgetExceededError.
        assert issubclass(SearchTimeoutError, BudgetExceededError)

    def test_deadline_zero_trips_first_checkpoint(self):
        b = Budget(deadline_ms=0, anytime=True)
        assert b.check()
        assert b.exceeded_reason == REASON_DEADLINE

    def test_out_of_time_ignores_counter_trips(self):
        clock = FakeClock()
        b = Budget(deadline_ms=1000, max_nodes=1, anytime=True, clock=clock)
        b.charge_nodes()
        assert b.charge_nodes()  # tripped on nodes
        assert not b.out_of_time()  # but wall clock is fine: keep draining
        clock.advance(1.5)
        assert b.out_of_time()

    def test_start_rearms(self):
        b = Budget(max_nodes=1, anytime=True)
        b.charge_nodes()
        assert b.charge_nodes()
        b.start()
        assert b.exceeded_reason is None
        assert b.nodes_visited == 0
        assert not b.charge_nodes()

    def test_report_from_budget(self):
        b = Budget(max_nodes=1, anytime=True)
        b.charge_nodes()
        b.charge_nodes()
        report = SearchReport.from_budget("stark", b, 2)
        assert not report.completed
        assert report.degraded
        assert report.reason == REASON_NODES
        assert report.matches_returned == 2
        assert "incomplete" in report.summary()

    def test_report_flags_faults_without_trip(self):
        b = Budget(anytime=True)
        b.record_fault("scorer exploded")
        report = SearchReport.from_budget("stard", b, 1)
        assert not report.completed
        assert report.reason == REASON_FAULT
        assert report.faults == ["scorer exploded"]

    def test_report_without_budget_is_complete(self):
        report = SearchReport.from_budget("stark", None, 3)
        assert report.completed
        assert not report.degraded


class TestAlphaValidation:
    def test_star_rejects_alpha_outside_unit_interval(self, movie_graph):
        for alpha in (-0.1, 1.5):
            with pytest.raises(SearchError):
                Star(movie_graph, alpha=alpha)

    def test_star_accepts_boundary_alphas(self, movie_graph):
        for alpha in (0.0, 0.5, 1.0):
            Star(movie_graph, alpha=alpha)


def _star():
    return star_query("Brad", [("acted_in", "?")], pivot_type="actor")


def _general_query():
    q = Query(name="general")
    a = q.add_node("Brad", type="actor")
    f = q.add_node("?", type="film")
    d = q.add_node("?", type="director")
    q.add_edge(a, f, "acted_in")
    q.add_edge(d, f, "directed")
    return q


def _cycle_query():
    # A 4-cycle cannot be covered by one star: forces the join path.
    q = Query(name="cycle4")
    for i in range(4):
        q.add_node("?")
    for i in range(4):
        q.add_edge(i, (i + 1) % 4)
    return q


class TestEngineBudgets:
    def test_stark_strict_trip_raises_with_report(self, movie_scorer):
        matcher = StarKSearch(movie_scorer)
        with pytest.raises(BudgetExceededError) as info:
            matcher.search(_star(), 3, budget=Budget(max_nodes=1))
        assert info.value.report is not None
        assert info.value.report.algorithm == "stark"
        assert not info.value.report.completed

    def test_stark_anytime_flags_partial(self, movie_scorer):
        matcher = StarKSearch(movie_scorer)
        budget = Budget(max_nodes=1, anytime=True)
        got = matcher.search(_star(), 3, budget=budget)
        report = matcher.last_report
        assert not report.completed
        assert report.reason == REASON_NODES
        scores = [m.score for m in got]
        assert scores == sorted(scores, reverse=True)

    def test_stark_unbudgeted_report_is_complete(self, movie_scorer):
        matcher = StarKSearch(movie_scorer)
        got = matcher.search(_star(), 3)
        assert matcher.last_report.completed
        assert matcher.last_report.matches_returned == len(got)

    def test_stard_anytime_message_cap(self, movie_scorer):
        matcher = StarDSearch(movie_scorer, d=2)
        budget = Budget(max_messages=2, anytime=True)
        matcher.search(_star(), 3, budget=budget)
        assert not matcher.last_report.completed

    def test_stard_strict_deadline_zero(self, movie_scorer):
        matcher = StarDSearch(movie_scorer, d=2)
        with pytest.raises(SearchTimeoutError):
            matcher.search(_star(), 3, budget=Budget(deadline_ms=0))

    def test_hybrid_budget_paths(self, movie_scorer):
        matcher = HybridStarSearch(movie_scorer)
        budget = Budget(max_nodes=1, anytime=True)
        got = matcher.search(_star(), 3, budget=budget)
        assert not matcher.last_report.completed
        scores = [m.score for m in got]
        assert scores == sorted(scores, reverse=True)
        with pytest.raises(BudgetExceededError):
            matcher.search(_star(), 3, budget=Budget(max_nodes=1))

    def test_framework_star_query(self, movie_graph, movie_scorer):
        engine = Star(movie_graph, scorer=movie_scorer)
        budget = Budget(deadline_ms=0, anytime=True)
        engine.search(_star(), 3, budget=budget)
        assert engine.last_report is not None
        assert not engine.last_report.completed
        assert engine.last_report.reason == REASON_DEADLINE

    def test_framework_single_star_budget(self, movie_graph, movie_scorer):
        # This query decomposes into one star: the framework should take
        # the star path and still honour the budget.
        engine = Star(movie_graph, scorer=movie_scorer)
        exact = engine.search(_general_query(), 3)
        budget = Budget(max_nodes=1, anytime=True)
        got = engine.search(_general_query(), 3, budget=budget)
        assert not engine.last_report.completed
        assert len(got) <= len(exact)

    def test_framework_join_query_shares_budget(self, yago_graph, yago_scorer):
        engine = Star(yago_graph, scorer=yago_scorer)
        budget = Budget(max_join_steps=1, anytime=True)
        engine.search(_cycle_query(), 3, budget=budget)
        assert engine.last_report.algorithm == "starjoin"
        assert not engine.last_report.completed

    def test_framework_join_strict_raises(self, yago_graph, yago_scorer):
        engine = Star(yago_graph, scorer=yago_scorer)
        with pytest.raises(BudgetExceededError):
            engine.search(_cycle_query(), 3, budget=Budget(max_join_steps=1))

    def test_graphta_budget(self, movie_scorer):
        matcher = GraphTA(movie_scorer)
        budget = Budget(max_nodes=5, anytime=True)
        got = matcher.search(_general_query(), 3, budget=budget)
        assert not matcher.last_report.completed
        scores = [m.score for m in got]
        assert scores == sorted(scores, reverse=True)
        with pytest.raises(BudgetExceededError):
            matcher.search(_general_query(), 3, budget=Budget(max_nodes=5))

    def test_bp_budget(self, movie_scorer):
        matcher = BeliefPropagation(movie_scorer)
        budget = Budget(max_messages=3, anytime=True)
        got = matcher.search(_general_query(), 3, budget=budget)
        assert not matcher.last_report.completed
        for m in got:
            assert m.is_injective()
        with pytest.raises(BudgetExceededError):
            matcher.search(_general_query(), 3, budget=Budget(max_messages=3))

    def test_generous_budget_matches_exact(self, movie_scorer):
        exact = StarKSearch(movie_scorer).search(_star(), 3)
        matcher = StarKSearch(movie_scorer)
        budget = Budget(deadline_ms=60_000, max_nodes=1_000_000, anytime=True)
        got = matcher.search(_star(), 3, budget=budget)
        assert matcher.last_report.completed
        assert [m.score for m in got] == pytest.approx(
            [m.score for m in exact]
        )


class TestAnytimeProperty:
    """Satellite: prefix-consistency of anytime results (Hypothesis)."""

    K = 3

    @given(max_nodes=st.integers(min_value=0, max_value=60))
    @settings(deadline=None, max_examples=25)
    def test_anytime_results_prefix_consistent(
        self, movie_scorer, max_nodes
    ):
        star = _star()
        exact = StarKSearch(movie_scorer).search(star, self.K)
        universe = {
            round(m.score, 9)
            for m in brute_force_star(movie_scorer, star, 1000)
        }
        matcher = StarKSearch(movie_scorer)
        budget = Budget(max_nodes=max_nodes, anytime=True)
        got = matcher.search(star, self.K, budget=budget)
        report = matcher.last_report
        scores = [m.score for m in got]
        # Always: monotone non-increasing, genuine match scores only.
        assert scores == sorted(scores, reverse=True)
        for s in scores:
            assert round(s, 9) in universe
        # completed=True must mean "identical to the exact top-k"; any
        # degradation must be flagged (each returned score >= the exact
        # k-th score, OR the run reports completed=False).
        if report.completed:
            assert scores == pytest.approx([m.score for m in exact])
        else:
            assert report.reason is not None
        kth = exact[-1].score if len(exact) == self.K else float("-inf")
        assert report.degraded or all(s >= kth - 1e-9 for s in scores)


class TestDegradationMonotonicity:
    """Satellite: the serving layer's degrade-before-shed contract.

    Two halves.  :func:`repro.runtime.derive_budget_spec` must shrink
    budgets monotonically as the degrade level rises (the admission
    layer relies on it: more pressure may never *grow* a budget).  And
    the engine must honor what shrinking budgets imply: a run given
    more node budget rank-wise dominates a run given less, so degraded
    answers deteriorate gracefully rather than arbitrarily.
    """

    K = 3

    @given(level=st.integers(min_value=0, max_value=6),
           mode=st.sampled_from(MODES))
    @settings(deadline=None, max_examples=40)
    def test_derived_budgets_shrink_monotonically(self, level, mode):
        for slo in SLO_CLASSES.values():
            lower = derive_budget_spec(slo, level, mode=mode)
            higher = derive_budget_spec(slo, level + 1, mode=mode)
            assert higher["deadline_ms"] <= lower["deadline_ms"]
            if "max_nodes" in lower and "max_nodes" in higher:
                assert higher["max_nodes"] <= lower["max_nodes"]
            assert higher["max_nodes"] >= 1
            # Levels past the cap stop shrinking (budgets never hit 0).
            capped = derive_budget_spec(slo, MAX_DEGRADE_LEVEL + 3,
                                        mode=mode)
            assert capped == derive_budget_spec(slo, MAX_DEGRADE_LEVEL,
                                                mode=mode)

    @given(level=st.integers(min_value=1, max_value=6))
    @settings(deadline=None, max_examples=20)
    def test_every_degraded_level_is_anytime(self, level):
        for slo in SLO_CLASSES.values():
            for mode in MODES:
                assert derive_budget_spec(slo, level, mode=mode)["anytime"]
        # Level 0 keeps the caller's mode choice.
        assert derive_budget_spec(SLO_CLASSES["gold"], 0,
                                  mode="exact")["anytime"] is False
        assert derive_budget_spec(SLO_CLASSES["gold"], 0,
                                  mode="anytime")["anytime"] is True

    def test_deadline_override_tightens_all_levels(self):
        slo = SLO_CLASSES["silver"]
        for level in range(MAX_DEGRADE_LEVEL + 1):
            spec = derive_budget_spec(slo, level,
                                      deadline_override_ms=100.0)
            assert spec["deadline_ms"] <= 100.0

    def test_deadline_override_cannot_exceed_class_ceiling(self):
        # timeout_ms is tightening-only: a bronze client asking for an
        # hour still gets at most the bronze deadline.
        for slo in SLO_CLASSES.values():
            for level in range(MAX_DEGRADE_LEVEL + 1):
                spec = derive_budget_spec(
                    slo, level, deadline_override_ms=3_600_000.0)
                baseline = derive_budget_spec(slo, level)
                assert spec["deadline_ms"] == baseline["deadline_ms"]

    @given(small=st.integers(min_value=0, max_value=50),
           extra=st.integers(min_value=0, max_value=50))
    @settings(deadline=None, max_examples=25)
    def test_more_node_budget_rank_wise_dominates(
        self, movie_scorer, small, extra
    ):
        star = _star()
        large = small + extra

        low_matcher = StarKSearch(movie_scorer)
        low = low_matcher.search(
            star, self.K, budget=Budget(max_nodes=small, anytime=True))
        low_report = low_matcher.last_report

        high_matcher = StarKSearch(movie_scorer)
        high = high_matcher.search(
            star, self.K, budget=Budget(max_nodes=large, anytime=True))

        # The larger budget explores a superset of candidates, so at
        # every rank the smaller run produced, the larger run is at
        # least as good.
        assert len(high) >= len(low)
        for rank, match in enumerate(low):
            assert high[rank].score >= match.score - 1e-9

        # A completed smaller run pins both to the exact answer.
        if low_report.completed:
            exact = StarKSearch(movie_scorer).search(star, self.K)
            assert [m.score for m in low] == pytest.approx(
                [m.score for m in exact])
            assert [m.score for m in high] == pytest.approx(
                [m.score for m in exact])
