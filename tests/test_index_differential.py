"""Differential and unit tests for the compact graph kernels.

The headline invariant of ``repro.index``: candidate generation routed
through the :class:`~repro.index.GraphIndex` (interned-token postings +
WAND-style upper-bound pruning) returns lists **byte-identical** to the
seed's linear shortlist scan -- across random graphs, query shapes,
cutoffs, scoring configs, and graph mutations maintained through the
delta journal.  Hypothesis drives the differential; unit tests pin the
individual kernels (vocabulary, postings, CSR, features, footprint) and
the routing/eligibility contract.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.core.candidates import node_candidates, shortlist
from repro.core.framework import Star
from repro.errors import SearchError
from repro.graph import KnowledgeGraph
from repro.index import (
    GraphIndex,
    NodeFootprint,
    PostingIndex,
    Vocabulary,
    attach_index,
    detach_index,
)
from repro.perf.cache import attach_cache
from repro.query.model import QueryNode
from repro.runtime.budget import Budget
from repro.similarity import ScoringConfig, ScoringFunction

from tests.conftest import build_movie_graph, build_random_graph

# ----------------------------------------------------------------------
# Query-constraint pool for the differential (wildcards included: they
# must route linear and still agree).
# ----------------------------------------------------------------------
_LABELS = ("Brad Pitt", "Angelina", "Troy", "war film", "richard kathryn",
           "Venice", "the hurt locker", "Brad", "?")
_TYPES = ("", "actor", "film", "person", "award")
_KEYWORDS = ((), ("drama",), ("war", "drama"))
_LIMITS = (None, 1, 3, 8)


def make_qnode(label_i: int, type_i: int, kw_i: int) -> QueryNode:
    return QueryNode(0, _LABELS[label_i], _TYPES[type_i], _KEYWORDS[kw_i])


# Deterministic per-seed scorer pairs (hypothesis re-runs same seeds).
_PAIRS = {}


def scorer_pair(seed: int, fast: bool):
    key = (seed, fast)
    if key not in _PAIRS:
        graph = build_random_graph(seed)
        config = ScoringConfig(fast=fast)
        linear = ScoringFunction(graph, config)
        indexed = ScoringFunction(graph, config)
        attach_index(indexed, mode="on")
        _PAIRS[key] = (linear, indexed)
    return _PAIRS[key]


class TestIndexedDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=25),
        label_i=st.integers(min_value=0, max_value=len(_LABELS) - 1),
        type_i=st.integers(min_value=0, max_value=len(_TYPES) - 1),
        kw_i=st.integers(min_value=0, max_value=len(_KEYWORDS) - 1),
        limit_i=st.integers(min_value=0, max_value=len(_LIMITS) - 1),
        fast=st.booleans(),
    )
    @settings(max_examples=80, deadline=None)
    def test_indexed_equals_linear(
        self, seed, label_i, type_i, kw_i, limit_i, fast
    ):
        linear, indexed = scorer_pair(seed, fast)
        qnode = make_qnode(label_i, type_i, kw_i)
        limit = _LIMITS[limit_i]
        expect = node_candidates(linear, qnode, limit=limit)
        got = node_candidates(indexed, qnode, limit=limit)
        assert got == expect

    @given(
        seed=st.integers(min_value=0, max_value=12),
        ops=st.lists(
            st.integers(min_value=0, max_value=4), min_size=1, max_size=6
        ),
        label_i=st.integers(min_value=0, max_value=len(_LABELS) - 1),
        type_i=st.integers(min_value=0, max_value=len(_TYPES) - 1),
        limit_i=st.integers(min_value=0, max_value=len(_LIMITS) - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_indexed_equals_linear_after_mutations(
        self, seed, ops, label_i, type_i, limit_i
    ):
        """The journal-driven refresh keeps the index exact."""
        import random

        graph = build_random_graph(seed)
        linear = ScoringFunction(graph)
        indexed = ScoringFunction(graph)
        attach_index(indexed, mode="on")
        qnode = make_qnode(label_i, type_i, 0)
        limit = _LIMITS[limit_i]
        # Warm both paths pre-mutation (plans, memos, postings walks).
        assert (node_candidates(indexed, qnode, limit=limit)
                == node_candidates(linear, qnode, limit=limit))

        rng = random.Random(seed * 1000 + len(ops))
        counter = 0
        for op in ops:
            nodes = list(graph.nodes())
            if op == 0:  # add a node (token-indexed, typed)
                graph.add_node(f"brad novel {counter}", "actor",
                               keywords=("drama", f"x{counter}"))
                counter += 1
            elif op == 1 and len(nodes) > 4:  # remove a node
                graph.remove_node(rng.choice(nodes))
            elif op == 2 and len(nodes) >= 2:  # add an edge
                a, b = rng.sample(nodes, 2)
                graph.add_edge(a, b, "acted_in")
            elif op == 3:  # remove an edge
                live = [eid for eid, _s, _d in graph.edges()]
                if live:
                    graph.remove_edge(rng.choice(live))
            elif op == 4:  # relabel an edge (journals no endpoints)
                live = [eid for eid, _s, _d in graph.edges()]
                if live:
                    graph.update_edge(rng.choice(live), relation="won")
        linear.refresh()
        indexed.refresh()
        for lim in (limit, None):
            expect = node_candidates(linear, qnode, limit=lim)
            got = node_candidates(indexed, qnode, limit=lim)
            assert got == expect

    @given(
        seed=st.integers(min_value=0, max_value=15),
        label_i=st.integers(min_value=0, max_value=len(_LABELS) - 1),
        type_i=st.integers(min_value=0, max_value=len(_TYPES) - 1),
        nid_pick=st.integers(min_value=0, max_value=29),
    )
    @settings(max_examples=60, deadline=None)
    def test_bound_is_sound(self, seed, label_i, type_i, nid_pick):
        """plan.bound() upper-bounds the exact node score everywhere."""
        _linear, indexed = scorer_pair(seed, False)
        index = indexed.graph_index
        graph = index.graph
        qnode = make_qnode(label_i, type_i, 0)
        desc = qnode.descriptor
        if desc.is_wildcard:
            return
        nodes = sorted(graph.nodes())
        nid = nodes[nid_pick % len(nodes)]
        index.refresh()
        if index.vocab.idf_stale:
            index.vocab.refresh_idf(indexed.corpus)
        plan = index._plan_for(indexed, desc)
        mask = plan.mask_for(graph.node(nid).tokens())
        ub = plan.bound(nid, mask, graph.degree(nid))
        score = indexed.node_score(desc, nid)
        assert ub + 1e-9 >= score, (
            f"bound {ub} < score {score} for {desc!r} vs node {nid}"
        )

    def test_budgeted_calls_stay_linear_and_identical(self):
        graph = build_movie_graph()
        linear = ScoringFunction(graph)
        indexed = ScoringFunction(graph)
        index = attach_index(indexed, mode="on")
        qnode = QueryNode(0, "Brad Pitt", "actor")
        budget = Budget(max_nodes=1_000_000)
        expect = node_candidates(linear, qnode, budget=Budget(
            max_nodes=1_000_000))
        got = node_candidates(indexed, qnode, budget=budget)
        assert got == expect
        assert index.evaluated == 0  # the budgeted call never routed


class TestSearchParity:
    def test_star_search_identical_on_off_auto(self):
        graph = build_random_graph(3, num_nodes=40, num_edges=80)
        from repro.query import star_workload

        queries = star_workload(graph, 6, seed=5)
        engines = {
            mode: Star(graph, use_index=mode, candidate_limit=8)
            for mode in ("off", "auto", "on")
        }
        for query in queries:
            results = {
                mode: [(m.key(), round(m.score, 9))
                       for m in engine.search(query, 5)]
                for mode, engine in engines.items()
            }
            assert results["on"] == results["off"]
            assert results["auto"] == results["off"]

    def test_search_parity_after_mutations(self):
        graph = build_random_graph(7, num_nodes=40, num_edges=80)
        from repro.query import star_workload

        queries = star_workload(graph, 4, seed=11)
        off = Star(graph, use_index="off", candidate_limit=8)
        on = Star(graph, use_index="on", candidate_limit=8)
        for round_ in range(3):
            victim = next(iter(graph.nodes()))
            graph.remove_node(victim)
            graph.add_node(f"fresh {round_}", "actor", keywords=("brad",))
            off.scorer.refresh()
            on.scorer.refresh()
            for query in queries:
                a = [(m.key(), round(m.score, 9))
                     for m in off.search(query, 4)]
                b = [(m.key(), round(m.score, 9))
                     for m in on.search(query, 4)]
                assert a == b


class TestEligibilityAndRouting:
    def test_modes_validated(self):
        graph = build_movie_graph()
        with pytest.raises(ValueError):
            GraphIndex(graph, mode="sometimes")
        with pytest.raises(SearchError):
            Star(graph, use_index="sometimes")

    def test_auto_without_limit_builds_nothing(self):
        graph = build_movie_graph()
        engine = Star(graph, use_index="auto")
        assert engine.scorer.graph_index is None

    def test_auto_with_limit_builds_and_on_always_builds(self):
        graph = build_movie_graph()
        assert Star(graph, use_index="auto",
                    candidate_limit=5).scorer.graph_index is not None
        assert Star(graph, use_index="on").scorer.graph_index is not None
        assert Star(graph, use_index="off").scorer.graph_index is None

    def test_eligibility_matrix(self):
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        index = attach_index(scorer, mode="auto")
        desc = QueryNode(0, "Brad Pitt", "actor").descriptor
        wild = QueryNode(1, "?").descriptor
        budget = Budget(max_nodes=10)
        assert index.eligible(scorer, desc, 5, None)
        assert not index.eligible(scorer, desc, None, None)  # auto needs limit
        assert not index.eligible(scorer, desc, 5, budget)
        assert not index.eligible(scorer, wild, 5, None)
        index.mode = "on"
        assert index.eligible(scorer, desc, None, None)
        index.mode = "off"
        assert not index.eligible(scorer, desc, 5, None)
        # A scorer over a different graph never routes through this index.
        other = ScoringFunction(build_movie_graph())
        index.mode = "on"
        assert not index.eligible(other, desc, 5, None)

    def test_attach_detach(self):
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        index = attach_index(scorer, mode="on")
        assert scorer.graph_index is index
        assert detach_index(scorer) is index
        assert scorer.graph_index is None

    def test_obs_counters_emitted(self):
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        attach_index(scorer, mode="on")
        qnode = QueryNode(0, "Brad Pitt", "actor")
        with obs.capture() as tracer:
            node_candidates(scorer, qnode, limit=3)
        counters = tracer.registry.as_dict()["counters"]
        assert counters.get("index.postings_scanned", 0) > 0
        assert "index.evaluated" in counters
        assert any(span.name == "candidates.indexed"
                   for span in tracer.roots)


class TestCandidateCacheIntegration:
    def test_indexed_results_cached_and_invalidated(self):
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        cache = attach_cache(scorer)
        attach_index(scorer, mode="on")
        qnode = QueryNode(0, "Brad Pitt", "actor")
        first = node_candidates(scorer, qnode, limit=5)
        hits0 = cache.stats.hits
        again = node_candidates(scorer, qnode, limit=5)
        assert again == first
        assert cache.stats.hits == hits0 + 1
        # A mutation touching a cached candidate must invalidate.
        top = first[0][0]
        graph.remove_node(top)
        scorer.refresh()
        after = node_candidates(scorer, qnode, limit=5)
        assert all(nid != top for nid, _s in after)
        fresh = ScoringFunction(graph)
        assert after == node_candidates(fresh, qnode, limit=5)


class TestKernels:
    def test_vocabulary_interning(self):
        vocab = Vocabulary()
        a = vocab.intern("brad")
        b = vocab.intern("pitt")
        assert vocab.intern("brad") == a and a != b
        assert vocab.get("brad") == a and vocab.get("ghost") is None
        assert "pitt" in vocab and len(vocab) == 2

    def test_vocabulary_idf_refresh(self):
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        vocab = Vocabulary()
        tid = vocab.intern("brad")
        ghost = vocab.intern("zzz-never-indexed")
        assert vocab.idf_stale
        vocab.refresh_idf(scorer.corpus)
        assert not vocab.idf_stale
        assert vocab.idf[tid] == pytest.approx(scorer.corpus.idf_of("brad"))
        assert vocab.idf[ghost] == 1.0  # CorpusContext's unknown default

    def test_postings_match_graph_token_index(self):
        graph = build_movie_graph()
        vocab = Vocabulary()
        postings = PostingIndex.build(graph, vocab)
        for token, members in graph._token_index.items():
            tid = vocab.get(token)
            assert tid is not None
            assert list(postings.posting(tid)) == sorted(members)
        assert list(postings.posting(10_000)) == []

    def test_postings_kill_add_compact(self):
        graph = build_movie_graph()
        vocab = Vocabulary()
        postings = PostingIndex.build(graph, vocab)
        tid = vocab.get("brad")
        before = list(postings.posting(tid))
        postings.kill(before[0])
        assert postings.dead_nodes == 1
        old_array = postings.posting(tid)
        postings.compact()
        assert postings.dead_nodes == 0
        assert list(postings.posting(tid)) == before[1:]
        # Pre-compaction array references keep their frozen contents.
        assert list(old_array) == before
        # Re-adding via add_node is idempotent per node.
        postings.grow(graph.num_node_slots + 1)
        postings.add_node(graph.num_node_slots, frozenset(("brad",)), vocab)
        postings.add_node(graph.num_node_slots, frozenset(("brad",)), vocab)
        assert list(postings.posting(tid)).count(graph.num_node_slots) == 1

    def test_csr_grouped_relations_parity(self):
        graph = build_movie_graph()
        index = GraphIndex(graph, mode="on")
        for directed in (False, True):
            for v in graph.nodes():
                packed = index.csr.grouped_relations(graph, v, directed)
                # Force the live-graph fallback for the same node.
                index.csr.dirty.add(v)
                fallback = index.csr.grouped_relations(graph, v, directed)
                index.csr.dirty.discard(v)
                assert packed == fallback
                assert list(packed[0]) == list(fallback[0])  # same order

    def test_csr_rebuild_threshold(self):
        graph = build_movie_graph()
        index = GraphIndex(graph, mode="on")
        assert not index.csr.should_rebuild(graph.num_node_slots)
        index.csr.mark_all_dirty()
        assert index.csr.should_rebuild(graph.num_node_slots)
        index.csr.build(graph)
        assert not index.csr.all_dirty and not index.csr.dirty

    def test_node_footprint_iterates_arrays_and_closure(self):
        from array import array

        fp = NodeFootprint([array("I", [1, 2]), array("I", [3])],
                           frozenset((7,)))
        assert sorted(fp) == [1, 2, 3, 7]
        # The cache probes footprints via frozenset.isdisjoint.
        assert not frozenset((2,)).isdisjoint(fp)
        assert frozenset((9,)).isdisjoint(fp)


class TestRefresh:
    def test_refresh_tracks_adds_and_removes(self):
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        index = attach_index(scorer, mode="on")
        qnode = QueryNode(0, "Brad Pitt", "actor")
        base = node_candidates(scorer, qnode, limit=None)
        new = graph.add_node("Brad Pittson", "actor", keywords=("drama",))
        scorer.refresh()
        got = node_candidates(scorer, qnode, limit=None)
        assert new in {nid for nid, _s in got}
        graph.remove_node(new)
        scorer.refresh()
        again = node_candidates(scorer, qnode, limit=None)
        assert again == base

    def test_refresh_full_rebuild_on_journal_overflow(self):
        graph = KnowledgeGraph(name="tiny", journal_limit=4)
        ids = [graph.add_node(f"brad {i}", "actor") for i in range(4)]
        scorer = ScoringFunction(graph)
        index = attach_index(scorer, mode="on")
        for i in range(8):  # blow past the journal window
            graph.add_node(f"extra brad {i}", "actor")
        assert graph.delta_since(index._version) is None
        scorer.refresh()
        qnode = QueryNode(0, "brad", "actor")
        got = node_candidates(scorer, qnode, limit=None)
        fresh = ScoringFunction(graph)
        assert got == node_candidates(fresh, qnode, limit=None)
        assert index._version == graph.version

    def test_refresh_noop_when_synced(self):
        graph = build_movie_graph()
        index = GraphIndex(graph, mode="on")
        assert index.synced()
        assert index.refresh() is False
        graph.add_node("someone new", "actor")
        assert not index.synced()
        assert index.refresh() is True
        assert index.synced()
