"""Concurrent readers on one RKGS2 store file.

The isolation contract of the zero-copy store: any number of processes
may map the same file read-only while the owner mutates its private
copy-on-write overlay -- readers keep serving the frozen base version,
bit-for-bit, and nothing ever touches ``/dev/shm`` (extending the
hygiene guarantees of ``test_index_shm.py`` to the mmap path, including
forced worker death).
"""

from __future__ import annotations

import multiprocessing as mp
import os
from pathlib import Path

import pytest

from repro.core.framework import Star
from repro.index.shm import SEGMENT_PREFIX
from repro.query import star_query
from repro.similarity import ScoringFunction
from repro.store import attach_mmap_index, open_graph, write_store

from tests.conftest import build_movie_graph

SHM_DIR = Path("/dev/shm")

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="store concurrency tests need fork"
)


def stale_segments():
    if not SHM_DIR.is_dir():
        return []
    return sorted(p.name for p in SHM_DIR.glob(f"{SEGMENT_PREFIX}*"))


def _query():
    return star_query("Brad", [("acted_in", "?")], pivot_type="actor")


def _reader_main(path, conn, barrier):
    """Open the store fresh, wait for the owner to mutate, search."""
    try:
        graph = open_graph(path)
        barrier.wait(timeout=30)  # owner mutates its overlay meanwhile
        scorer = ScoringFunction(graph)
        scorer.graph_index = attach_mmap_index(graph, graph, mode="on")
        matches = Star(graph, scorer=scorer, use_index="on").search(
            _query(), 5)
        conn.send((graph.version, graph.num_nodes,
                   [(m.key(), round(m.score, 9)) for m in matches]))
    except BaseException as exc:  # pragma: no cover - surfaced by assert
        conn.send(("error", repr(exc), None))
    finally:
        conn.close()


class TestFrozenBaseIsolation:
    def test_readers_see_frozen_base_during_owner_mutations(self, tmp_path):
        ctx = mp.get_context("fork")
        graph = build_movie_graph()
        path = tmp_path / "shared.rkgs2"
        write_store(graph, path)
        base_version = graph.version
        expected = [
            (m.key(), round(m.score, 9))
            for m in Star(graph, use_index="on").search(_query(), 5)
        ]
        owner = open_graph(path)
        barrier = ctx.Barrier(4)
        pipes, workers = [], []
        for _ in range(3):
            recv, send = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_reader_main,
                               args=(str(path), send, barrier))
            proc.start()
            send.close()
            pipes.append(recv)
            workers.append(proc)
        # Mutate the owner's overlay while the readers are attached.
        nid = owner.add_node("Fury", "film", ["war"])
        owner.add_edge(0, nid, "acted_in")
        owner.remove_node(9)
        barrier.wait(timeout=30)
        results = [recv.recv() for recv in pipes]
        for proc in workers:
            proc.join(timeout=30)
            assert proc.exitcode == 0
        for version, num_nodes, matches in results:
            assert version == base_version
            assert num_nodes == graph.num_nodes
            assert matches == expected
        # The owner's overlay kept its private view.
        assert owner.version > base_version
        assert owner.node(nid).name == "Fury"
        owner.close()

    def test_no_shm_segments_created_or_leaked(self, tmp_path):
        before = stale_segments()
        graph = build_movie_graph()
        path = tmp_path / "clean.rkgs2"
        write_store(graph, path)
        mgraph = open_graph(path)
        scorer = ScoringFunction(mgraph)
        scorer.graph_index = attach_mmap_index(mgraph, mgraph, mode="on")
        Star(mgraph, scorer=scorer, use_index="on").search(_query(), 3)
        scorer.graph_index.detach()
        mgraph.close()
        assert stale_segments() == before

    def test_sharded_engine_over_store_skips_shm(self, tmp_path):
        """Shard workers attach the store file; no segment is exported."""
        from repro.shard import ShardedEngine

        before = stale_segments()
        graph = build_movie_graph()
        path = tmp_path / "shard.rkgs2"
        write_store(graph, path)
        mgraph = open_graph(path)
        single = [(m.key(), round(m.score, 9))
                  for m in Star(graph, use_index="on").search(_query(), 5)]
        scorer = ScoringFunction(mgraph)
        scorer.graph_index = attach_mmap_index(mgraph, mgraph, mode="on")
        engine = ShardedEngine(mgraph, scorer=scorer, shards=2,
                               use_index="on")
        try:
            got = [(m.key(), round(m.score, 9))
                   for m in engine.search(_query(), 5)]
        finally:
            engine.close()
        assert got == single
        assert stale_segments() == before
        mgraph.close()


def _dying_reader_main(path, barrier):
    graph = open_graph(path)
    scorer = ScoringFunction(graph)
    scorer.graph_index = attach_mmap_index(graph, graph, mode="on")
    barrier.wait(timeout=30)
    os._exit(13)  # die without detach/close/atexit


class TestForcedWorkerDeath:
    def test_dead_reader_leaves_no_debris(self, tmp_path):
        """A reader killed mid-attach must not corrupt the store, leak
        segments, or disturb other readers."""
        ctx = mp.get_context("fork")
        before = stale_segments()
        graph = build_movie_graph()
        path = tmp_path / "doomed.rkgs2"
        write_store(graph, path)
        original = path.read_bytes()
        barrier = ctx.Barrier(2)
        proc = ctx.Process(target=_dying_reader_main,
                           args=(str(path), barrier))
        proc.start()
        barrier.wait(timeout=30)
        proc.join(timeout=30)
        assert proc.exitcode == 13
        assert stale_segments() == before
        assert path.read_bytes() == original  # file untouched
        # Survivors open and search normally.
        survivor = open_graph(path)
        matches = Star(survivor, use_index="on").search(_query(), 3)
        assert matches
        survivor.close()

    def test_owner_death_does_not_block_new_readers(self, tmp_path):
        ctx = mp.get_context("fork")
        graph = build_movie_graph()
        path = tmp_path / "owner.rkgs2"
        write_store(graph, path)

        def owner_main(p, barrier):
            g = open_graph(p)
            g.add_node("Doomed Mutation", "film")
            barrier.wait(timeout=30)
            os._exit(7)  # overlay dies with the process

        barrier = ctx.Barrier(2)
        proc = ctx.Process(target=owner_main, args=(str(path), barrier))
        proc.start()
        barrier.wait(timeout=30)
        proc.join(timeout=30)
        assert proc.exitcode == 7
        fresh = open_graph(path)
        assert fresh.version == graph.version
        assert fresh.num_nodes == graph.num_nodes  # mutation never landed
        fresh.close()
