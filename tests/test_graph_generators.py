"""Tests for the synthetic dataset generators (Table I substitutes)."""

import pytest

from repro.errors import DatasetError
from repro.graph import GeneratorConfig, dbpedia_like, freebase_like, yago2_like
from repro.graph.generators import generate
from repro.graph.statistics import degree_skew, summarize


class TestGenerate:
    def test_deterministic(self):
        cfg = GeneratorConfig("g", num_nodes=300, avg_degree=4.0,
                              num_types=15, num_relations=20, seed=5)
        g1, g2 = generate(cfg), generate(cfg)
        assert g1.num_nodes == g2.num_nodes
        assert g1.num_edges == g2.num_edges
        assert [g1.node(v).name for v in range(50)] == [
            g2.node(v).name for v in range(50)
        ]

    def test_seed_changes_graph(self):
        cfg_a = GeneratorConfig("g", 300, 4.0, 15, 20, seed=5)
        cfg_b = GeneratorConfig("g", 300, 4.0, 15, 20, seed=6)
        g1, g2 = generate(cfg_a), generate(cfg_b)
        names1 = [g1.node(v).name for v in range(100)]
        names2 = [g2.node(v).name for v in range(100)]
        assert names1 != names2

    def test_node_and_edge_counts(self):
        cfg = GeneratorConfig("g", 500, 6.0, 15, 20)
        g = generate(cfg)
        assert g.num_nodes == 500
        assert g.num_edges == cfg.num_edges

    def test_too_small_rejected(self):
        with pytest.raises(DatasetError):
            generate(GeneratorConfig("g", 10, 4.0, 15, 20))

    def test_bad_degree_rejected(self):
        with pytest.raises(DatasetError):
            generate(GeneratorConfig("g", 300, 0.0, 15, 20))

    def test_too_few_types_rejected(self):
        with pytest.raises(DatasetError):
            generate(GeneratorConfig("g", 300, 4.0, 2, 20))

    def test_type_count_close_to_requested(self):
        g = generate(GeneratorConfig("g", 2000, 4.0, 40, 20))
        # Every planned type should have received at least one node.
        assert len(g.types()) == pytest.approx(40, abs=3)

    def test_heavy_tail_degrees(self):
        g = generate(GeneratorConfig("g", 2000, 8.0, 20, 30))
        assert degree_skew(g) > 3.0

    def test_core_schema_present(self):
        g = generate(GeneratorConfig("g", 1000, 6.0, 15, 20))
        for t in ("actor", "director", "film", "award"):
            assert g.nodes_of_type(t), f"no nodes of type {t}"
        assert "acted_in" in g.relations()


class TestPresets:
    def test_dbpedia_density(self):
        g = dbpedia_like(scale=0.2)
        stats = summarize(g)
        assert 25 <= stats.avg_degree <= 40  # Table I: ~32

    def test_yago_sparse(self):
        g = yago2_like(scale=0.3)
        stats = summarize(g)
        assert 3 <= stats.avg_degree <= 5  # Table I: ~3.8

    def test_freebase_middle(self):
        g = freebase_like(scale=0.3)
        stats = summarize(g)
        assert 3.5 <= stats.avg_degree <= 6  # Table I: ~4.5

    def test_relative_type_richness(self):
        """YAGO2 has far more types than DBpedia (Table I proportion)."""
        y = yago2_like(scale=1.0)
        d = dbpedia_like(scale=1.0)
        assert len(y.types()) > len(d.types())

    def test_scale_parameter(self):
        small = yago2_like(scale=0.2)
        large = yago2_like(scale=0.4)
        assert large.num_nodes > small.num_nodes * 1.5
