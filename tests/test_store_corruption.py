"""RKGS2 store decode hardening: corruption always surfaces typed.

Mirror of ``test_snapshot_corruption.py`` for the mmap store.  The
contract: whatever bytes :class:`repro.store.StoreReader` (and hence
``KnowledgeGraph.open_mmap``) is fed, the only exceptions that escape
are :class:`DatasetError` (not a store / unsupported version) and its
subclass :class:`SnapshotCorruptionError` (was a store, is now broken),
the latter carrying the failing *section name* and byte offset.  A bare
``struct.error``, ``IndexError`` or ``UnicodeDecodeError`` escaping --
or a corrupt store silently serving wrong data past a ``verify()`` --
is a bug, found here by systematic truncation and byte-flip fuzzing.
"""

from __future__ import annotations

import random
import struct
import zlib

import pytest

from repro.errors import DatasetError, SnapshotCorruptionError
from repro.graph import KnowledgeGraph
from repro.store import MAGIC2, StoreReader, open_graph, write_store
from repro.store.format import _ENTRY, _HEADER_BASE, HEADER_SIZE

from tests.conftest import build_movie_graph


@pytest.fixture(scope="module")
def store_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("store") / "graph.rkgs2"
    write_store(build_movie_graph(), path)
    return path.read_bytes()


def _open(tmp_path, blob: bytes, verify: bool = True):
    bad = tmp_path / "bad.rkgs2"
    bad.write_bytes(blob)
    return StoreReader(bad, verify=verify)


def _directory(blob: bytes):
    """(dir_off, dir_nbytes, entries) parsed straight off the blob."""
    (_magic, _fmt, _page, nsections, dir_off, dir_nbytes,
     _crc) = _HEADER_BASE.unpack_from(blob, 0)
    entries = {}
    for pos in range(nsections):
        raw_name, off, nbytes, crc, code = _ENTRY.unpack_from(
            blob, dir_off + pos * _ENTRY.size)
        entries[raw_name.rstrip(b"\x00").decode()] = (off, nbytes, crc, code)
    return dir_off, dir_nbytes, entries


def _reseal_header(blob: bytearray) -> None:
    """Recompute the header CRC after editing header fields."""
    crc = zlib.crc32(bytes(blob[:_HEADER_BASE.size])) & 0xFFFFFFFF
    struct.pack_into("<I", blob, _HEADER_BASE.size, crc)


class TestHeader:
    def test_truncated_header(self, tmp_path, store_bytes):
        for cut in (0, 1, 5, HEADER_SIZE - 1):
            with pytest.raises(SnapshotCorruptionError) as info:
                _open(tmp_path, store_bytes[:cut])
            assert info.value.section == "header"
            assert info.value.offset == cut

    def test_bad_magic_is_dataset_error(self, tmp_path, store_bytes):
        blob = b"XXXXXX" + store_bytes[6:]
        with pytest.raises(DatasetError, match="magic"):
            _open(tmp_path, blob)

    def test_rkgs1_snapshot_refused_with_hint(self, tmp_path):
        from repro.dynamic.snapshot import save_snapshot

        snap = tmp_path / "old.kgs"
        save_snapshot(build_movie_graph(), snap)
        with pytest.raises(DatasetError, match="magic"):
            StoreReader(snap)
        # ...and the reverse direction names the right entry point.
        store = tmp_path / "new.rkgs2"
        write_store(build_movie_graph(), store)
        from repro.dynamic.snapshot import load_snapshot

        with pytest.raises(DatasetError, match="open_mmap"):
            load_snapshot(store)

    def test_header_byte_flip_caught_by_crc(self, tmp_path, store_bytes):
        for pos in range(len(MAGIC2), _HEADER_BASE.size):
            corrupt = bytearray(store_bytes)
            corrupt[pos] ^= 0xFF
            with pytest.raises(SnapshotCorruptionError) as info:
                _open(tmp_path, bytes(corrupt))
            assert info.value.section == "header"

    def test_future_format_version_is_dataset_error(self, tmp_path,
                                                    store_bytes):
        corrupt = bytearray(store_bytes)
        struct.pack_into("<H", corrupt, 6, 99)
        _reseal_header(corrupt)
        with pytest.raises(DatasetError, match="version 99"):
            _open(tmp_path, bytes(corrupt))

    def test_directory_out_of_bounds(self, tmp_path, store_bytes):
        corrupt = bytearray(store_bytes)
        struct.pack_into("<Q", corrupt, 16, len(store_bytes) + 4096)
        _reseal_header(corrupt)
        with pytest.raises(SnapshotCorruptionError) as info:
            _open(tmp_path, bytes(corrupt))
        assert info.value.section == "directory"

    def test_error_message_names_file_and_section(self, tmp_path,
                                                  store_bytes):
        with pytest.raises(SnapshotCorruptionError) as info:
            _open(tmp_path, store_bytes[:10])
        text = str(info.value)
        assert "bad.rkgs2" in text and "header" in text
        assert info.value.path is not None


class TestDirectory:
    def test_directory_byte_flips_caught(self, tmp_path, store_bytes):
        dir_off, dir_nbytes, _ = _directory(store_bytes)
        step = max(1, dir_nbytes // 40)
        for pos in range(0, dir_nbytes, step):
            corrupt = bytearray(store_bytes)
            corrupt[dir_off + pos] ^= 0xFF
            with pytest.raises(SnapshotCorruptionError) as info:
                _open(tmp_path, bytes(corrupt))
            assert info.value.section == "directory"

    def test_section_bounds_beyond_file(self, tmp_path, store_bytes):
        # Rewrite one entry to point past EOF and reseal the directory
        # CRC, so the per-entry bounds check (not the CRC) must fire.
        dir_off, dir_nbytes, entries = _directory(store_bytes)
        corrupt = bytearray(store_bytes)
        name = sorted(entries)[0]
        pos = dir_off + sorted(entries).index(name) * 0  # recompute below
        for i in range(len(entries)):
            raw_name = bytes(
                corrupt[dir_off + i * _ENTRY.size:
                        dir_off + i * _ENTRY.size + 24]).rstrip(b"\x00")
            if raw_name.decode() == name:
                pos = dir_off + i * _ENTRY.size
                break
        struct.pack_into("<Q", corrupt, pos + 24, len(store_bytes) * 2)
        dir_crc = zlib.crc32(
            bytes(corrupt[dir_off:dir_off + dir_nbytes])) & 0xFFFFFFFF
        struct.pack_into("<I", corrupt, 32, dir_crc)
        _reseal_header(corrupt)
        with pytest.raises(SnapshotCorruptionError) as info:
            _open(tmp_path, bytes(corrupt))
        assert info.value.section == name
        assert "outside file" in str(info.value)


class TestSectionPayloads:
    def test_every_section_flip_caught_by_verify(self, tmp_path,
                                                 store_bytes):
        """One byte flip in the middle of every section payload: eager
        ``verify=True`` must catch each one, naming the section."""
        _off, _n, entries = _directory(store_bytes)
        for name, (off, nbytes, _crc, _code) in sorted(entries.items()):
            if nbytes == 0:
                continue
            corrupt = bytearray(store_bytes)
            corrupt[off + nbytes // 2] ^= 0xFF
            with pytest.raises(SnapshotCorruptionError) as info:
                _open(tmp_path, bytes(corrupt), verify=True)
            assert info.value.section == name, name
            assert info.value.offset == off

    def test_meta_flip_caught_without_verify(self, tmp_path, store_bytes):
        # meta is decoded eagerly, so even lazy opens must notice.
        _off, _n, entries = _directory(store_bytes)
        off, nbytes, _crc, _code = entries["meta"]
        corrupt = bytearray(store_bytes)
        corrupt[off + nbytes - 1] ^= 0xFF
        with pytest.raises(SnapshotCorruptionError) as info:
            _open(tmp_path, bytes(corrupt), verify=False)
        assert info.value.section == "meta"

    def test_graph_section_flip_caught_at_open(self, tmp_path, store_bytes):
        """Sections the graph view reaches (``name.blob`` among them)
        are CRC-checked when their view is first grabbed -- at open."""
        _off, _n, entries = _directory(store_bytes)
        off, _nbytes, _crc, _code = entries["name.blob"]
        corrupt = bytearray(store_bytes)
        corrupt[off] ^= 0xFF
        bad = tmp_path / "lazy.rkgs2"
        bad.write_bytes(bytes(corrupt))
        with pytest.raises(SnapshotCorruptionError) as info:
            KnowledgeGraph.open_mmap(bad)
        assert info.value.section == "name.blob"

    def test_index_section_flip_surfaces_lazily_at_attach(self, tmp_path,
                                                          store_bytes):
        """Index-only sections (``idf``, ``feat.*``) are untouched by a
        lazy open; a flip there dies typed on attach, never silently."""
        from repro.store import attach_mmap_index

        _off, _n, entries = _directory(store_bytes)
        off, nbytes, _crc, _code = entries["idf"]
        corrupt = bytearray(store_bytes)
        corrupt[off + nbytes // 2] ^= 0xFF
        bad = tmp_path / "lazyidf.rkgs2"
        bad.write_bytes(bytes(corrupt))
        graph = KnowledgeGraph.open_mmap(bad)  # opens clean
        graph.node(0)  # graph path unaffected
        with pytest.raises(SnapshotCorruptionError) as info:
            attach_mmap_index(graph, graph, mode="on")
        assert info.value.section == "idf"
        graph.close()

    def test_truncation_sweep_is_always_typed(self, tmp_path, store_bytes):
        step = max(1, len(store_bytes) // 80)
        for cut in range(0, len(store_bytes), step):
            try:
                reader = _open(tmp_path, store_bytes[:cut], verify=True)
            except (SnapshotCorruptionError, DatasetError):
                continue
            reader.close()

    def test_byte_flip_fuzz_never_escapes_untyped(self, tmp_path,
                                                  store_bytes):
        """300 random flips anywhere in the file: every verified open
        either succeeds with a usable graph or raises typed."""
        rng = random.Random(20260809)
        for _trial in range(300):
            corrupt = bytearray(store_bytes)
            for _ in range(rng.randint(1, 4)):
                corrupt[rng.randrange(len(corrupt))] ^= 1 << rng.randrange(8)
            bad = tmp_path / "fuzz.rkgs2"
            bad.write_bytes(bytes(corrupt))
            try:
                graph = KnowledgeGraph.open_mmap(bad, verify=True)
            except (SnapshotCorruptionError, DatasetError):
                continue
            # Flips that land in alignment padding change nothing; the
            # graph must be fully intact and usable.
            assert graph.num_nodes == 10
            graph.node(0)
            graph.close()

    def test_clean_store_verifies_and_round_trips(self, tmp_path,
                                                  store_bytes):
        reader = _open(tmp_path, store_bytes, verify=True)
        reader.verify()
        reader.close()
        bad = tmp_path / "bad.rkgs2"
        graph = KnowledgeGraph.open_mmap(bad)
        again = tmp_path / "again.rkgs2"
        write_store(graph, again)
        assert open_graph(again).num_nodes == graph.num_nodes
