"""End-to-end HTTP tests: ServerHandle + ServeClient over a real socket."""

import asyncio
import http.client
import json
import time

import pytest

from repro.runtime import FaultSpec
from repro.serve import (
    CLOSED,
    OPEN,
    QueryRequest,
    ServeApp,
    ServeClient,
    ServerHandle,
)

QUERY = "(Brad:actor) -[acted_in]- (?:film)"


@pytest.fixture(scope="module")
def server(movie_graph):
    app = ServeApp(movie_graph, workers=2, backend="auto")
    with ServerHandle(app) as handle:
        yield handle


@pytest.fixture()
def client(server):
    with ServeClient(*server.address) as c:
        yield c


def raw_request(server, method, path, body=b""):
    conn = http.client.HTTPConnection(*server.address, timeout=30)
    try:
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        conn.close()


class TestEndpoints:
    def test_healthz(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert health["workers_alive"] == 2

    def test_search_ok(self, client):
        response = client.search(QueryRequest(query=QUERY, k=2,
                                              request_id="r-1"))
        assert response.answered
        assert response.status == "ok"
        assert response.request_id == "r-1"
        assert response.attempts == 1
        assert len(response.matches) == 2
        assert response.matches[0]["score"] >= response.matches[1]["score"]

    def test_search_degraded_on_injected_fault(self, client):
        spec = FaultSpec(site="scorer.node_score", mode="raise")
        response = client.search(QueryRequest(query=QUERY, k=2,
                                              fault_specs=[spec]))
        assert response.answered
        assert response.status == "degraded"

    def test_exact_mode_persistent_fault_is_an_error(self, client):
        spec = FaultSpec(site="scorer.node_score", mode="raise", repeat=True)
        response = client.search(QueryRequest(
            query=QUERY, k=2, mode="exact", priority="silver",
            fault_specs=[spec]))
        assert response.status == "error"
        assert response.error_kind == "InjectedFaultError"
        # silver gets one retry: 2 attempts total, both poisoned.
        assert response.attempts == 2

    def test_unknown_priority_is_a_client_error(self, client):
        response = client.search(QueryRequest(query=QUERY,
                                              priority="platinum"))
        assert response.status == "error"
        assert response.error_kind == "QueryError"

    def test_batch_preserves_order(self, client):
        requests = [QueryRequest(query=QUERY, k=1, request_id=f"b-{i}")
                    for i in range(5)]
        responses = client.batch(requests)
        assert [r.request_id for r in responses] == \
            [f"b-{i}" for i in range(5)]
        assert all(r.answered for r in responses)

    def test_statz_shows_traffic(self, client):
        client.search(QueryRequest(query=QUERY, k=1))
        statz = client.statz()
        counters = statz["metrics"]["counters"]
        assert counters["serve_requests_total"] >= 1
        assert counters["serve_answered_total"] >= 1
        assert statz["queue"]["capacity"] == 2
        assert statz["pool"]["alive"] == 2
        assert set(statz["slo_classes"]) == {"gold", "silver", "bronze"}


class TestHttpEdges:
    def test_bad_json_body_is_a_400(self, server):
        status, body, _ = raw_request(server, "POST", "/search",
                                      b"{not json")
        assert status == 400
        payload = json.loads(body)
        assert payload["status"] == "error"
        assert payload["error_kind"] == "QueryError"

    def test_unknown_priority_is_a_400(self, server):
        body = json.dumps({"query": QUERY, "priority": "platinum"})
        status, payload, _ = raw_request(server, "POST", "/search",
                                         body.encode())
        assert status == 400
        assert json.loads(payload)["error_kind"] == "QueryError"

    def test_unknown_path_404(self, server):
        status, _, _ = raw_request(server, "GET", "/nope")
        assert status == 404

    def test_wrong_method_405(self, server):
        assert raw_request(server, "POST", "/healthz")[0] == 405
        assert raw_request(server, "GET", "/search")[0] == 405

    def test_malformed_http_400(self, server):
        import socket

        with socket.create_connection(server.address, timeout=10) as sock:
            sock.sendall(b"NONSENSE\r\n\r\n")
            assert b"400" in sock.recv(1024).split(b"\r\n", 1)[0]


class TestSheddingOverHttp:
    def test_rate_limited_tenant_gets_429_with_retry_after(
        self, movie_graph
    ):
        app = ServeApp(movie_graph, workers=1, backend="thread",
                       tenant_rate=0.001, tenant_burst=1.0)
        with ServerHandle(app) as handle, \
                ServeClient(*handle.address) as client:
            first = client.search(QueryRequest(query=QUERY, k=1))
            assert first.answered
            shed = client.search(QueryRequest(query=QUERY, k=1))
            assert shed.status == "shed"
            assert shed.reason == "rate_limited"
            assert shed.retry_after_s > 0  # from the Retry-After header

    def test_shed_probe_does_not_lock_out_the_tenant(self, movie_graph):
        # Regression: a half-open probe that admission sheds must return
        # its probe slot; otherwise the breaker sticks half-open with
        # all probes consumed and the tenant is rejected forever.
        app = ServeApp(movie_graph, workers=1, backend="thread",
                       breaker_threshold=1, breaker_cooldown_s=0.05,
                       tenant_slots=1)
        app.start()
        try:
            poisoned = QueryRequest(
                query=QUERY, k=1, tenant="t", mode="exact",
                fault_specs=[FaultSpec(site="scorer.node_score",
                                       mode="raise", repeat=True)])
            assert asyncio.run(app.handle_request(poisoned)).status == \
                "error"
            assert app.breaker("t").state == OPEN
            time.sleep(0.06)  # cooldown over: next allow() is the probe
            # Occupy the tenant's only slot so the probe request sheds
            # between breaker.allow() and execution.
            app.admission.begin("t")
            shed = asyncio.run(app.handle_request(
                QueryRequest(query=QUERY, k=1, tenant="t")))
            assert shed.status == "shed"
            assert shed.reason == "tenant_slots"
            app.admission.end("t")
            # The abandoned probe slot is free again: the next request
            # probes, succeeds, and recloses the breaker.
            probe = asyncio.run(app.handle_request(
                QueryRequest(query=QUERY, k=1, tenant="t")))
            assert probe.answered
            assert app.breaker("t").state == CLOSED
        finally:
            app.stop()

    def test_breaker_opens_then_recloses(self, movie_graph):
        app = ServeApp(movie_graph, workers=1, backend="thread",
                       breaker_threshold=2, breaker_cooldown_s=0.3)
        poisoned = QueryRequest(
            query=QUERY, k=1, tenant="chaotic", mode="exact",
            fault_specs=[FaultSpec(site="scorer.node_score", mode="raise",
                                   repeat=True)])
        with ServerHandle(app) as handle, \
                ServeClient(*handle.address) as client:
            for _ in range(2):
                assert client.search(poisoned).status == "error"
            shed = client.search(QueryRequest(query=QUERY, k=1,
                                              tenant="chaotic"))
            assert shed.status == "shed"
            assert shed.reason == "breaker_open"
            # Other tenants are unaffected by the open breaker.
            assert client.search(QueryRequest(query=QUERY, k=1)).answered
            time.sleep(0.35)
            probe = client.search(QueryRequest(query=QUERY, k=1,
                                               tenant="chaotic"))
            assert probe.answered
            statz = client.statz()
            breaker = statz["breakers"]["chaotic"]
            assert breaker["opened_total"] == 1
            assert breaker["reclosed_total"] == 1
