"""Circuit breaker state machine and retry policy unit tests."""

import pytest

from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BackoffPolicy,
    CircuitBreaker,
    is_retryable,
    strip_transient_faults,
)


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def breaker(clock, threshold=3, cooldown=10.0, probes=1):
    return CircuitBreaker(failure_threshold=threshold, cooldown_s=cooldown,
                          half_open_probes=probes, clock=clock)


class TestCircuitBreaker:
    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)

    def test_opens_after_consecutive_failures(self):
        b = breaker(FakeClock())
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED and b.allow()
        b.record_failure()
        assert b.state == OPEN
        assert not b.allow()
        assert b.rejected_total == 1
        assert b.opened_total == 1

    def test_success_resets_the_count(self):
        b = breaker(FakeClock())
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        b.record_failure()
        assert b.state == CLOSED

    def test_retry_after_counts_down(self):
        clock = FakeClock()
        b = breaker(clock, cooldown=10.0)
        for _ in range(3):
            b.record_failure()
        assert b.retry_after_s() == pytest.approx(10.0)
        clock.advance(4.0)
        assert b.retry_after_s() == pytest.approx(6.0)

    def test_half_open_probe_recloses(self):
        clock = FakeClock()
        b = breaker(clock, cooldown=10.0)
        for _ in range(3):
            b.record_failure()
        clock.advance(10.0)
        assert b.state == HALF_OPEN
        assert b.allow()          # the one probe
        assert not b.allow()      # concurrent traffic still rejected
        b.record_success()
        assert b.state == CLOSED
        assert b.reclosed_total == 1
        assert b.allow()

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        b = breaker(clock, cooldown=10.0)
        for _ in range(3):
            b.record_failure()
        clock.advance(10.0)
        assert b.allow()
        b.record_failure()        # one probe failure re-trips immediately
        assert b.state == OPEN
        assert b.opened_total == 2
        assert b.retry_after_s() == pytest.approx(10.0)

    def test_abandoned_probe_frees_the_slot(self):
        # A half-open probe that never executes (shed by admission,
        # budget derivation failed) must return its slot, or the tenant
        # is locked out forever with all probes consumed.
        clock = FakeClock()
        b = breaker(clock, cooldown=10.0)
        for _ in range(3):
            b.record_failure()
        clock.advance(10.0)
        assert b.allow()
        assert not b.allow()      # slot consumed
        b.abandon_probe()
        assert b.allow()          # slot returned, probing can continue
        b.record_success()
        assert b.state == CLOSED

    def test_abandon_probe_is_safe_when_not_probing(self):
        b = breaker(FakeClock())
        b.abandon_probe()         # closed: no-op
        assert b.state == CLOSED and b.allow()
        for _ in range(3):
            b.record_failure()
        b.abandon_probe()         # open: no-op, never goes negative
        assert b.state == OPEN

    def test_as_dict_snapshot(self):
        b = breaker(FakeClock())
        b.record_failure()
        snap = b.as_dict()
        assert snap["state"] == CLOSED
        assert snap["consecutive_failures"] == 1
        assert set(snap) >= {"opened_total", "reclosed_total",
                             "rejected_total"}


class TestBackoffPolicy:
    def test_exponential_without_jitter(self):
        policy = BackoffPolicy(base_ms=10.0, factor=2.0, max_ms=1000.0,
                               jitter=0.0)
        assert [policy.delay_ms(a) for a in range(4)] == [10, 20, 40, 80]

    def test_cap(self):
        policy = BackoffPolicy(base_ms=10.0, factor=2.0, max_ms=50.0,
                               jitter=0.0)
        assert policy.delay_ms(10) == 50.0

    def test_jitter_only_shrinks(self):
        policy = BackoffPolicy(base_ms=100.0, factor=1.0, max_ms=100.0,
                               jitter=0.5)
        delays = [policy.delay_ms(0) for _ in range(50)]
        assert all(50.0 <= d <= 100.0 for d in delays)
        assert len(set(delays)) > 1  # jitter actually varies

    def test_deterministic_with_seeded_rng(self):
        import random

        a = BackoffPolicy(rng=random.Random(7))
        b = BackoffPolicy(rng=random.Random(7))
        assert [a.delay_ms(i) for i in range(5)] == \
            [b.delay_ms(i) for i in range(5)]


class TestRetryClassification:
    def test_fault_kinds_are_retryable(self):
        for kind in ("InjectedFaultError", "WorkerCrashError", "Timeout",
                     "SnapshotCorruptionError"):
            assert is_retryable(kind)

    def test_user_errors_are_not(self):
        for kind in ("QueryError", "BudgetExceededError", "Unhandled"):
            assert not is_retryable(kind)

    def test_strip_drops_one_shot_keeps_persistent(self):
        payload = {
            "query": "q",
            "fault_specs": [
                {"site": "scorer.node_score", "mode": "raise"},
                {"site": "graph.neighbors", "mode": "raise", "repeat": True},
                {"site": "scorer.node_score", "mode": "crash",
                 "repeat": True},
            ],
        }
        stripped = strip_transient_faults(payload)
        assert stripped["fault_specs"] == [
            {"site": "graph.neighbors", "mode": "raise", "repeat": True},
        ]
        # Original payload is untouched (the task may be retried again).
        assert len(payload["fault_specs"]) == 3

    def test_strip_removes_empty_key(self):
        payload = {"query": "q",
                   "fault_specs": [{"site": "s", "mode": "crash"}]}
        assert "fault_specs" not in strip_transient_faults(payload)
        assert "fault_specs" not in strip_transient_faults({"query": "q"})
