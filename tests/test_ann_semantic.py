"""Tests for ``repro.ann``: the two-stage semantic candidate tier."""

from array import array

import pytest

from repro.ann import (
    DEFAULT_BAND_BITS,
    DEFAULT_BANDS,
    DEFAULT_DIM,
    DEFAULT_SEED,
    BandIndex,
    NgramEmbedder,
    SemanticTier,
    attach_semantic,
    build_columns,
    cosine,
    detach_semantic,
    hyperplanes,
    signatures,
)
from repro.core import Star, node_candidates
from repro.errors import SearchError
from repro.query import Query
from repro.runtime.budget import Budget
from repro.similarity import ScoringConfig, ScoringFunction
from repro.store import MmapSemanticTier, attach_mmap_semantic, open_graph, write_store

from tests.conftest import build_movie_graph

#: Out-of-vocabulary paraphrases score under the default 0.25 node
#: threshold (no token overlap -> only char-level evidence), so tier
#: tests run at the threshold the recall benchmark uses.
LOW = ScoringConfig(node_threshold=0.1)


def qnode(label, type=""):
    q = Query()
    q.add_node(label, type=type)
    return q.nodes[0]


# ----------------------------------------------------------------------
# Embedding kernel
# ----------------------------------------------------------------------
class TestNgramEmbedder:
    def test_deterministic_and_float32(self):
        emb = NgramEmbedder()
        a = emb.embed("Brad Pitt", "actor", ("drama",))
        b = emb.embed("Brad Pitt", "actor", ("drama",))
        assert a == b
        assert a.typecode == "f"
        assert len(a) == DEFAULT_DIM

    def test_normalized(self):
        vec = NgramEmbedder().embed("Brad Pitt", "actor", ())
        assert sum(x * x for x in vec) == pytest.approx(1.0, abs=1e-5)

    def test_empty_description_is_zero_vector(self):
        vec = NgramEmbedder().embed("", "", ())
        assert not any(vec)

    def test_paraphrase_nearer_than_stranger(self):
        emb = NgramEmbedder()
        brad = emb.embed("Brad Pitt", "actor", ())
        typo = emb.embed("bradpitt", "", ())
        other = emb.embed("Kathryn Bigelow", "director", ())
        assert cosine(typo, brad) > cosine(typo, other)

    def test_dim_validated(self):
        with pytest.raises(ValueError):
            NgramEmbedder(dim=4)


# ----------------------------------------------------------------------
# LSH band index
# ----------------------------------------------------------------------
class TestBandIndex:
    def test_hyperplanes_seed_determined(self):
        a = hyperplanes(16, 2, 4, seed=7)
        b = hyperplanes(16, 2, 4, seed=7)
        c = hyperplanes(16, 2, 4, seed=8)
        assert a == b
        assert a != c

    def test_signature_range(self):
        planes = hyperplanes(DEFAULT_DIM, DEFAULT_BANDS, DEFAULT_BAND_BITS,
                             DEFAULT_SEED)
        vec = NgramEmbedder().embed("Boyhood", "film", ())
        sigs = signatures(vec, planes, DEFAULT_BANDS, DEFAULT_BAND_BITS)
        assert len(sigs) == DEFAULT_BANDS
        assert all(0 <= s < (1 << DEFAULT_BAND_BITS) for s in sigs)

    def test_probe_deterministic_and_sorted(self):
        g = build_movie_graph()
        vecs, sigs, alive = build_columns(g)
        index = BandIndex(DEFAULT_DIM)
        index.bind(vecs, sigs, alive, g.num_node_slots)
        qvec = NgramEmbedder().embed("bradpitt", "", ())
        a = index.probe(qvec, 10)
        b = index.probe(qvec, 10)
        assert a == b
        coss = [cos for cos, _ in a]
        assert coss == sorted(coss, reverse=True)
        assert all(cos > 0.0 for cos in coss)

    def test_probe_skips_dead_slots(self):
        g = build_movie_graph()
        vecs, sigs, alive = build_columns(g)
        index = BandIndex(DEFAULT_DIM)
        index.bind(vecs, sigs, alive, g.num_node_slots)
        qvec = NgramEmbedder().embed("bradpitt", "", ())
        assert any(nid == 0 for _, nid in index.probe(qvec, 10))
        alive[0] = 0  # tombstone Brad Pitt
        index.invalidate()
        assert all(nid != 0 for _, nid in index.probe(qvec, 10))

    def test_probe_respects_limit(self):
        g = build_movie_graph()
        vecs, sigs, alive = build_columns(g)
        index = BandIndex(DEFAULT_DIM)
        index.bind(vecs, sigs, alive, g.num_node_slots)
        qvec = NgramEmbedder().embed("a", "", ())
        assert len(index.probe(qvec, 2)) <= 2


# ----------------------------------------------------------------------
# SemanticTier: engagement policy
# ----------------------------------------------------------------------
class TestEngagement:
    def make(self, mode="auto", **options):
        g = build_movie_graph()
        scorer = ScoringFunction(g, LOW)
        tier = attach_semantic(scorer, mode=mode, **options)
        return g, scorer, tier

    def test_mode_validated(self):
        g = build_movie_graph()
        with pytest.raises(ValueError):
            SemanticTier(g, mode="always")
        with pytest.raises(ValueError):
            SemanticTier(g, rerank_percentile=1.0)
        with pytest.raises(ValueError):
            SemanticTier(g, probe_limit=0)

    def test_attach_is_lazy(self):
        _, _, tier = self.make()
        assert not tier.built

    def test_off_never_engages(self):
        _, scorer, tier = self.make(mode="off")
        desc = qnode("bradpitt").descriptor
        assert not tier.should_engage(scorer, desc, [], None)

    def test_wildcard_never_engages(self):
        _, scorer, tier = self.make(mode="on")
        assert not tier.should_engage(
            scorer, qnode("?").descriptor, [], None)

    def test_foreign_graph_never_engages(self):
        _, _, tier = self.make(mode="on")
        other = ScoringFunction(build_movie_graph(), LOW)
        assert not tier.should_engage(
            other, qnode("bradpitt").descriptor, [], None)

    def test_exhausted_budget_never_engages(self):
        _, scorer, tier = self.make(mode="on")
        budget = Budget(max_nodes=0, anytime=True)
        budget.charge_nodes()
        assert budget.exhausted
        assert not tier.should_engage(
            scorer, qnode("bradpitt").descriptor, [], budget)

    def test_auto_engages_only_on_empty_shortlist(self):
        _, scorer, tier = self.make(mode="auto")
        desc = qnode("bradpitt").descriptor
        assert tier.should_engage(scorer, desc, [], None)
        assert not tier.should_engage(scorer, desc, [(0, 0.9)], None)

    def test_on_engages_despite_candidates(self):
        _, scorer, tier = self.make(mode="on")
        desc = qnode("bradpitt").descriptor
        assert tier.should_engage(scorer, desc, [(0, 0.9)], None)


# ----------------------------------------------------------------------
# SemanticTier: probe + exact rerank
# ----------------------------------------------------------------------
class TestAugment:
    def test_out_of_vocab_recovers_entity(self):
        g = build_movie_graph()
        scorer = ScoringFunction(g, LOW)
        tier = attach_semantic(scorer, mode="auto")
        # The token shortlist cannot see "bradpitt" (no shared token)...
        detach_semantic(scorer)
        assert node_candidates(scorer, qnode("bradpitt")) == []
        # ...but the tier probes it back and the exact rerank admits it.
        scorer.semantic_tier = tier
        cands = node_candidates(scorer, qnode("bradpitt"))
        assert cands and cands[0][0] == 0  # Brad Pitt

    def test_rerank_scores_are_exact(self):
        g = build_movie_graph()
        scorer = ScoringFunction(g, LOW)
        attach_semantic(scorer, mode="auto")
        q = qnode("bradpitt")
        for nid, score in node_candidates(scorer, q):
            assert score == scorer.node_score(q.descriptor, nid)
            assert score >= LOW.node_threshold

    def test_counters_move(self):
        g = build_movie_graph()
        scorer = ScoringFunction(g, LOW)
        tier = attach_semantic(scorer, mode="auto", rerank_percentile=0.5)
        node_candidates(scorer, qnode("bradpitt"))
        assert tier.probed > 0
        assert tier.reranked > 0
        assert tier.probed == tier.reranked + tier.skipped

    def test_percentile_skip_bounds_rerank(self):
        g = build_movie_graph()
        scorer = ScoringFunction(g, LOW)
        tier = attach_semantic(scorer, mode="auto", rerank_percentile=0.9)
        extra, probed, truncated = tier.augment(scorer, qnode("bradpitt"), [])
        assert not truncated
        keep_n = max(1, len(probed) - int(len(probed) * 0.9))
        assert tier.reranked == keep_n

    def test_exclude_and_scored_are_deduped(self):
        g = build_movie_graph()
        scorer = ScoringFunction(g, LOW)
        tier = attach_semantic(scorer, mode="on")
        extra, _, _ = tier.augment(
            scorer, qnode("bradpitt"), [(0, 0.9)], exclude=frozenset({1}))
        ids = {nid for nid, _ in extra}
        assert 0 not in ids and 1 not in ids

    def test_internal_time_bound_marks_truncated(self):
        g = build_movie_graph()
        scorer = ScoringFunction(g, LOW)
        tier = attach_semantic(scorer, mode="on", time_bound_ms=0.0)
        extra, probed, truncated = tier.augment(scorer, qnode("bradpitt"), [])
        assert truncated
        assert extra == []
        assert probed  # the probe itself still ran

    def test_caller_budget_trip_is_not_internal_truncation(self):
        g = build_movie_graph()
        scorer = ScoringFunction(g, LOW)
        tier = attach_semantic(scorer, mode="on")
        budget = Budget(max_nodes=0, anytime=True)
        extra, _, truncated = tier.augment(
            scorer, qnode("bradpitt"), [], budget=budget)
        assert extra == []
        assert not truncated  # the caller's anytime semantics own this
        assert budget.exhausted

    def test_cache_token_tracks_configuration(self):
        g = build_movie_graph()
        a = SemanticTier(g)
        b = SemanticTier(g)
        c = SemanticTier(g, probe_limit=8)
        assert a.cache_token == b.cache_token
        assert a.cache_token != c.cache_token


# ----------------------------------------------------------------------
# Delta-journal refresh
# ----------------------------------------------------------------------
class TestRefresh:
    def probe_ids(self, tier, name, type=""):
        # Probing with a node's exact description guarantees a bucket
        # hit (identical signatures), isolating refresh mechanics from
        # LSH recall probabilities.
        qvec = tier.embedder.embed(name, type, ())
        return {nid for _, nid in tier.index.probe(qvec, 16)}

    def test_added_node_becomes_probeable(self):
        g = build_movie_graph()
        tier = SemanticTier(g)
        tier.ensure_built()
        nid = g.add_node("Quentin Tarantino", "director")
        assert tier.refresh()
        assert nid in self.probe_ids(tier, "Quentin Tarantino", "director")
        assert tier.synced()

    def test_removed_node_is_tombstoned(self):
        g = build_movie_graph()
        tier = SemanticTier(g)
        tier.ensure_built()
        assert 0 in self.probe_ids(tier, "Brad Pitt", "actor")
        g.remove_node(0)
        assert tier.refresh()
        assert 0 not in self.probe_ids(tier, "Brad Pitt", "actor")

    def test_noop_when_synced(self):
        g = build_movie_graph()
        tier = SemanticTier(g)
        tier.ensure_built()
        assert not tier.refresh()


# ----------------------------------------------------------------------
# Engine integration
# ----------------------------------------------------------------------
class TestEngineIntegration:
    QUERY = "(?m:director) -[collaborated_with]- (Brad:actor)"

    def results(self, engine, k=3):
        from repro.query import parse_query
        return [
            (m.score, tuple(sorted(m.assignment.items())))
            for m in engine.search(parse_query(self.QUERY), k)
        ]

    def test_use_semantic_validated(self):
        with pytest.raises(SearchError):
            Star(build_movie_graph(), use_semantic="sometimes")

    def test_off_matches_detached_scorer(self):
        base = Star(build_movie_graph(), use_semantic="off")
        assert base.scorer.semantic_tier is None
        on = Star(build_movie_graph(), use_semantic="auto")
        assert on.scorer.semantic_tier is not None
        assert self.results(base) == self.results(on)

    def test_auto_is_invisible_in_vocabulary(self, movie_graph):
        # Every label in the query resolves through the token shortlist,
        # so auto never engages and results match the seed path exactly.
        off = Star(build_movie_graph(), use_semantic="off")
        auto = Star(build_movie_graph(), use_semantic="auto")
        assert self.results(off) == self.results(auto)
        assert auto.scorer.semantic_tier.probed == 0


# ----------------------------------------------------------------------
# Mmap attach
# ----------------------------------------------------------------------
class TestMmapTier:
    @pytest.fixture()
    def store_path(self, tmp_path):
        path = tmp_path / "movies.rkgs2"
        write_store(build_movie_graph(), path)
        return path

    def test_direct_construction_rejected(self):
        with pytest.raises(TypeError):
            MmapSemanticTier()

    def test_parity_with_in_memory(self, store_path):
        graph = open_graph(store_path)
        mem_scorer = ScoringFunction(build_movie_graph(), LOW)
        mem_tier = attach_semantic(mem_scorer, mode="on")
        mmap_scorer = ScoringFunction(graph, LOW)
        mmap_tier = attach_mmap_semantic(store_path, graph, mode="on")
        mmap_scorer.semantic_tier = mmap_tier
        q = qnode("bradpitt")
        mem = mem_tier.augment(mem_scorer, q, [])
        via_mmap = mmap_tier.augment(mmap_scorer, q, [])
        assert mem == via_mmap
        mmap_tier.detach()

    def test_refresh_pinned_at_store_version(self, store_path):
        graph = open_graph(store_path)
        tier = attach_mmap_semantic(store_path, graph)
        assert tier.refresh() is False  # same version: clean no-op
        graph.add_node("New Node", "person")
        with pytest.raises(RuntimeError, match="re-attach"):
            tier.refresh()
        tier.detach()

    def test_bad_mode_rejected(self, store_path):
        graph = open_graph(store_path)
        with pytest.raises(ValueError):
            attach_mmap_semantic(store_path, graph, mode="never")

    def test_store_columns_match_build_columns(self, store_path):
        # The store column must be build_columns() laid out verbatim --
        # this is what makes mmap probes bit-identical to in-memory.
        from repro.store import StoreReader
        g = build_movie_graph()
        vecs, sigs, _alive = build_columns(g)
        reader = StoreReader(store_path)
        try:
            assert array("f", bytes(reader.section("ann.vecs"))) == vecs
            assert array("Q", bytes(reader.section("ann.sigs"))) == sigs
        finally:
            reader.close()
