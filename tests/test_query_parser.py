"""Tests for the edge-pattern query language."""

import pytest

from repro.errors import QueryError
from repro.query import format_query, parse_query


class TestParsing:
    def test_single_edge(self):
        q = parse_query("(Brad:actor) -[acted_in]- (?:film)")
        assert q.num_nodes == 2 and q.num_edges == 1
        assert q.nodes[0].label == "Brad"
        assert q.nodes[0].type == "actor"
        assert q.nodes[1].is_wildcard and q.nodes[1].type == "film"
        assert q.edges[0].label == "acted_in"

    def test_named_variables_unify(self):
        q = parse_query(
            "(?m:director) -[collaborated_with]- (Brad:actor)\n"
            "(?m) -[won]- (?:award)"
        )
        assert q.num_nodes == 3
        assert q.num_edges == 2
        assert q.is_star()
        assert q.degree(0) == 2  # ?m touches both edges

    def test_concrete_labels_unify(self):
        q = parse_query(
            "(Brad) -[acted_in]- (Troy:film)\n"
            "(brad) -[won]- (Oscar:award)"  # case-insensitive unification
        )
        assert q.num_nodes == 3

    def test_anonymous_variables_stay_distinct(self):
        q = parse_query(
            "(Brad) -[acted_in]- (?:film)\n(Brad) -[produced]- (?:film)"
        )
        assert q.num_nodes == 3

    def test_wildcard_relation(self):
        q = parse_query("(A) -[?]- (B)")
        assert q.edges[0].label == "?"

    def test_empty_relation_is_wildcard(self):
        q = parse_query("(A) -[]- (B)")
        assert q.edges[0].label == "?"

    def test_arrowheads_set_orientation(self):
        q = parse_query("(A) -[r]-> (B)\n(C) <-[s]- (B)")
        assert q.num_edges == 2
        # (A) -[r]-> (B): stored A -> B.
        assert (q.edges[0].src, q.edges[0].dst) == (0, 1)
        # (C) <-[s]- (B): stored B -> C.
        assert (q.edges[1].src, q.edges[1].dst) == (1, 2)

    def test_double_arrow_rejected(self):
        with pytest.raises(QueryError):
            parse_query("(A) <-[r]-> (B)")

    def test_orientation_survives_roundtrip(self):
        q = parse_query("(A) <-[r]- (B)")
        rebuilt = parse_query(format_query(q))
        # Node ids are renumbered in declaration order; compare by label.
        def arrow(query):
            e = query.edges[0]
            return (query.nodes[e.src].label, query.nodes[e.dst].label)

        assert arrow(rebuilt) == arrow(q) == ("B", "A")

    def test_comments_and_blank_lines(self):
        q = parse_query(
            "# the query\n\n(A) -[r]- (B)  # trailing comment\n"
        )
        assert q.num_edges == 1

    def test_type_added_on_later_occurrence(self):
        q = parse_query("(?m) -[r]- (A)\n(?m:director) -[s]- (B)")
        assert q.nodes[0].type == "director"


class TestParseErrors:
    def test_bad_syntax(self):
        with pytest.raises(QueryError):
            parse_query("A -- B")

    def test_empty_node(self):
        with pytest.raises(QueryError):
            parse_query("() -[r]- (B)")

    def test_empty_type(self):
        with pytest.raises(QueryError):
            parse_query("(A:) -[r]- (B)")

    def test_conflicting_types(self):
        with pytest.raises(QueryError):
            parse_query("(?m:actor) -[r]- (A)\n(?m:film) -[s]- (B)")

    def test_self_edge(self):
        with pytest.raises(QueryError):
            parse_query("(?m) -[r]- (?m)")

    def test_duplicate_edge(self):
        with pytest.raises(QueryError):
            parse_query("(A) -[r]- (B)\n(B) -[s]- (A)")

    def test_disconnected(self):
        with pytest.raises(QueryError):
            parse_query("(A) -[r]- (B)\n(C) -[s]- (D)")

    def test_empty_text(self):
        with pytest.raises(QueryError):
            parse_query("")


class TestRoundTrip:
    def test_format_then_parse(self):
        original = parse_query(
            "(?m:director) -[collaborated_with]- (Brad:actor)\n"
            "(?m) -[won]- (?:award)"
        )
        rebuilt = parse_query(format_query(original))
        assert rebuilt.num_nodes == original.num_nodes
        assert rebuilt.num_edges == original.num_edges
        assert [e.label for e in rebuilt.edges] == [
            e.label for e in original.edges
        ]
        assert [n.type for n in rebuilt.nodes] == [
            n.type for n in original.nodes
        ]

    def test_search_through_parsed_query(self, movie_graph, movie_scorer):
        from repro.core import Star

        q = parse_query(
            "(?m:director) -[collaborated_with]- (Brad:actor)\n"
            "(?m) -[won]- (?:award)"
        )
        engine = Star(movie_graph, scorer=movie_scorer)
        matches = engine.search(q, 2)
        assert matches
        top = matches[0]
        assert movie_graph.node(top.assignment[0]).name == "Richard Linklater"
