"""Unit tests for the shared rank-merge machinery.

:mod:`repro.core.rankmerge` backs both the starjoin rank join and the
sharded execution layer's global merge; these tests pin the pieces the
shard-count-invariance argument rests on: the ``>=`` boundary-tie rule
of :meth:`RankMerger.wants`, canonical ``(-score, key)`` ordering, and
duplicate suppression.
"""

from __future__ import annotations

import pytest

from repro.core.rankmerge import MonotoneStream, RankMerger, ScoredPool
from repro.errors import SearchError


class FakeMatch:
    """Minimal stand-in: the merger only reads ``score`` and ``key()``."""

    __slots__ = ("score", "_key")

    def __init__(self, score: float, key) -> None:
        self.score = score
        self._key = key

    def key(self):
        return self._key


class TestMonotoneStream:
    def test_tracks_top_and_last_scores(self):
        stream = MonotoneStream(iter([FakeMatch(0.9, "a"),
                                      FakeMatch(0.5, "b")]))
        assert stream.live
        first = stream.pull()
        assert first.key() == "a"
        assert stream.top_score == 0.9 and stream.last_score == 0.9
        stream.pull()
        assert stream.top_score == 0.9 and stream.last_score == 0.5
        assert stream.pull() is None
        assert stream.exhausted and not stream.live

    def test_dropped_stream_stops_delivering(self):
        stream = MonotoneStream(iter([FakeMatch(1.0, "a")]))
        stream.dropped = True
        assert stream.pull() is None
        assert not stream.live


class TestScoredPool:
    def test_k_validated(self):
        with pytest.raises(SearchError):
            ScoredPool(0)

    def test_theta_underfull_is_minus_inf(self):
        pool = ScoredPool(2)
        pool.offer(0.5, "a")
        assert pool.theta() == float("-inf")
        pool.offer(0.3, "b")
        assert pool.theta() == 0.3

    def test_ties_keep_earlier_arrival(self):
        pool = ScoredPool(2)
        pool.offer(0.5, "first")
        pool.offer(0.5, "second")
        pool.offer(0.5, "third")  # tie with the floor: not admitted
        assert pool.ranked() == ["first", "second"]

    def test_ranked_is_decreasing(self):
        pool = ScoredPool(3)
        for score, item in ((0.1, "d"), (0.9, "a"), (0.4, "c"), (0.7, "b")):
            pool.offer(score, item)
        assert pool.ranked() == ["a", "b", "c"]


class TestRankMerger:
    def test_k_validated(self):
        with pytest.raises(SearchError):
            RankMerger(0)

    def test_dedup_by_key(self):
        merger = RankMerger(3)
        assert merger.offer(FakeMatch(0.8, "x"))
        assert not merger.offer(FakeMatch(0.8, "x"))
        assert merger.dedup_hits == 1 and merger.offered == 2
        assert len(merger) == 1

    def test_wants_none_and_underfull(self):
        merger = RankMerger(2)
        assert merger.wants(None)
        merger.offer(FakeMatch(0.9, "a"))
        assert merger.wants(0.0)  # underfull: everything wanted
        merger.offer(FakeMatch(0.7, "b"))
        assert not merger.wants(0.6)
        assert merger.wants(0.8)

    def test_wants_boundary_tie_keeps_pulling(self):
        """``bound == theta`` must keep the stream live: a tied match
        could displace the current k-th under the canonical key order."""
        merger = RankMerger(2)
        merger.offer(FakeMatch(0.9, "a"))
        merger.offer(FakeMatch(0.7, "z"))
        assert merger.theta() == 0.7
        assert merger.wants(0.7)

    def test_results_canonical_order_and_truncation(self):
        merger = RankMerger(2)
        for match in (FakeMatch(0.5, "z"), FakeMatch(0.5, "a"),
                      FakeMatch(0.9, "m"), FakeMatch(0.5, "b")):
            merger.offer(match)
        results = merger.results()
        assert [(m.score, m.key()) for m in results] == \
            [(0.9, "m"), (0.5, "a")]

    def test_order_invariance(self):
        """The final ranking is a pure function of the offered set."""
        matches = [FakeMatch(s, k) for s, k in
                   ((0.3, "c"), (0.9, "a"), (0.3, "b"), (0.9, "d"),
                    (0.1, "e"))]
        forward = RankMerger(3)
        backward = RankMerger(3)
        for m in matches:
            forward.offer(m)
        for m in reversed(matches):
            backward.offer(m)
        assert ([(m.score, m.key()) for m in forward.results()]
                == [(m.score, m.key()) for m in backward.results()])

    def test_theta_counts_distinct_matches_only(self):
        merger = RankMerger(2)
        merger.offer(FakeMatch(0.9, "a"))
        merger.offer(FakeMatch(0.9, "a"))  # duplicate must not fill the pool
        assert merger.theta() == float("-inf")
