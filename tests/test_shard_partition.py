"""Tests for the graph partitioner behind sharded execution.

The exactness of sharded search rests on two structural invariants
checked here: owner sets are disjoint and exhaustive (shard outputs are
then disjoint), and every halo contains the full ``replication_depth``-
hop ball of its owned set (every star pivoted in the shard is locally
answerable).
"""

from __future__ import annotations

from collections import deque

import pytest

from repro.errors import SearchError
from repro.shard import STRATEGIES, partition_graph

from tests.conftest import build_movie_graph, build_random_graph


def ball(graph, sources, depth):
    """All nodes within *depth* hops of *sources* (reference BFS)."""
    seen = set(sources)
    frontier = deque((node, 0) for node in sources)
    while frontier:
        node, dist = frontier.popleft()
        if dist == depth:
            continue
        for nbr, _eid in graph.neighbors(node):
            if nbr not in seen:
                seen.add(nbr)
                frontier.append((nbr, dist + 1))
    return seen


class TestInvariants:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("num_shards", (1, 2, 3, 5))
    def test_owned_disjoint_and_exhaustive(self, strategy, num_shards):
        graph = build_random_graph(4)
        part = partition_graph(graph, num_shards, strategy)
        nodes = set(graph.nodes())
        union = set()
        total = 0
        for members in part.owned:
            union |= members
            total += len(members)
        assert union == nodes
        assert total == len(nodes)  # disjoint: sizes add up exactly

    @pytest.mark.parametrize("strategy", STRATEGIES)
    @pytest.mark.parametrize("depth", (0, 1, 2))
    def test_halo_covers_depth_ball(self, strategy, depth):
        graph = build_random_graph(2)
        part = partition_graph(graph, 3, strategy,
                               replication_depth=depth)
        for owned, halo in zip(part.owned, part.halos):
            assert owned <= halo
            assert halo == ball(graph, owned, depth)

    def test_deterministic(self):
        graph = build_random_graph(6)
        a = partition_graph(graph, 4, "hash", replication_depth=2)
        b = partition_graph(graph, 4, "hash", replication_depth=2)
        assert a.owned == b.owned and a.halos == b.halos
        assert a.cut_edges == b.cut_edges

    def test_single_shard_fast_path(self):
        graph = build_movie_graph()
        part = partition_graph(graph, 1, "hash", replication_depth=2)
        everything = frozenset(graph.nodes())
        assert part.owned == (everything,)
        assert part.halos == (everything,)
        assert part.cut_edges == 0
        assert part.replication_factor == 1.0

    def test_cut_and_replication_statistics(self):
        graph = build_random_graph(3)
        part = partition_graph(graph, 4, "hash")
        # A connected-ish random graph split 4 ways must cut something,
        # and halos then replicate nodes across shards.
        assert part.cut_edges > 0
        assert part.replication_factor > 1.0
        described = part.describe()
        assert described["num_shards"] == 4
        assert described["owned_sizes"] == [len(s) for s in part.owned]
        assert described["halo_sizes"] == [len(h) for h in part.halos]

    def test_shard_of(self):
        graph = build_movie_graph()
        part = partition_graph(graph, 3, "hash")
        for node_id in graph.nodes():
            assert node_id in part.owned[part.shard_of(node_id)]
        with pytest.raises(KeyError):
            part.shard_of(10_000)


class TestPivotTypeStrategy:
    def test_types_are_colocated(self):
        graph = build_random_graph(8)
        part = partition_graph(graph, 3, "pivot-type")
        for node_id in graph.nodes():
            node_type = graph.node(node_id).type
            if not node_type:
                continue
            home = part.shard_of(node_id)
            peers = [other for other in graph.nodes()
                     if graph.node(other).type == node_type]
            assert all(part.shard_of(p) == home for p in peers)

    def test_untyped_nodes_fall_back_to_hash(self):
        graph = build_movie_graph()
        untyped = graph.add_node("mystery thing", "")
        hash_part = partition_graph(graph, 3, "hash")
        type_part = partition_graph(graph, 3, "pivot-type")
        assert type_part.shard_of(untyped) == hash_part.shard_of(untyped)


class TestValidation:
    def test_bad_shard_count(self):
        with pytest.raises(SearchError):
            partition_graph(build_movie_graph(), 0, "hash")

    def test_unknown_strategy(self):
        with pytest.raises(SearchError, match="strategy"):
            partition_graph(build_movie_graph(), 2, "metis")

    def test_negative_depth(self):
        with pytest.raises(SearchError, match="replication_depth"):
            partition_graph(build_movie_graph(), 2, "hash",
                            replication_depth=-1)

    def test_version_recorded(self):
        graph = build_movie_graph()
        part = partition_graph(graph, 2, "hash")
        assert part.graph_uid == graph.uid
        assert part.graph_version == graph.version
