"""Tests for the schema-driven generator."""

import pytest

from repro.errors import DatasetError
from repro.graph.schema import NAME_STYLES, Schema
from repro.graph.statistics import degree_skew


def papers_schema() -> Schema:
    schema = Schema(name="papers")
    schema.add_node_type("author", share=0.4, name_style="person")
    schema.add_node_type("paper", share=0.5, name_style="title")
    schema.add_node_type("venue", share=0.1, name_style="org")
    schema.add_relation("wrote", "author", "paper", weight=3.0)
    schema.add_relation("published_at", "paper", "venue", weight=1.0)
    schema.add_relation("cites", "paper", "paper", weight=2.0)
    return schema


class TestSchemaDeclaration:
    def test_chaining(self):
        schema = Schema().add_node_type("a", 1.0).add_node_type("b", 1.0)
        schema.add_relation("r", "a", "b")
        assert len(schema.node_types) == 2
        assert len(schema.relations) == 1

    def test_duplicate_type_rejected(self):
        schema = Schema().add_node_type("a", 1.0)
        with pytest.raises(DatasetError):
            schema.add_node_type("a", 0.5)

    def test_unknown_endpoint_rejected(self):
        schema = Schema().add_node_type("a", 1.0)
        with pytest.raises(DatasetError):
            schema.add_relation("r", "a", "ghost")

    def test_bad_share_weight_style(self):
        schema = Schema()
        with pytest.raises(DatasetError):
            schema.add_node_type("a", 0.0)
        with pytest.raises(DatasetError):
            schema.add_node_type("b", 1.0, name_style="banana")
        schema.add_node_type("a", 1.0).add_node_type("c", 1.0)
        with pytest.raises(DatasetError):
            schema.add_relation("r", "a", "c", weight=0.0)


class TestGeneration:
    def test_sizes_and_shares(self):
        graph = papers_schema().generate(num_nodes=1000, avg_degree=5.0, seed=3)
        assert graph.num_nodes == 1000
        assert graph.num_edges == 2500
        authors = len(graph.nodes_of_type("author"))
        papers = len(graph.nodes_of_type("paper"))
        venues = len(graph.nodes_of_type("venue"))
        assert authors + papers + venues == 1000
        assert abs(authors - 400) <= 5 and abs(venues - 100) <= 5

    def test_relations_follow_schema(self):
        graph = papers_schema().generate(num_nodes=500, avg_degree=4.0, seed=3)
        for eid, src, dst in graph.edges():
            relation = graph.edge(eid)[2].relation
            src_t = graph.node(src).type
            dst_t = graph.node(dst).type
            if relation == "wrote":
                assert (src_t, dst_t) == ("author", "paper")
            elif relation == "published_at":
                assert (src_t, dst_t) == ("paper", "venue")
            elif relation == "cites":
                assert (src_t, dst_t) == ("paper", "paper")
            else:  # pragma: no cover
                pytest.fail(f"unexpected relation {relation}")

    def test_deterministic(self):
        a = papers_schema().generate(300, 4.0, seed=9)
        b = papers_schema().generate(300, 4.0, seed=9)
        assert [a.node(v).name for v in range(100)] == [
            b.node(v).name for v in range(100)
        ]

    def test_heavy_tail(self):
        graph = papers_schema().generate(2000, 8.0, seed=5)
        assert degree_skew(graph) > 2.0

    def test_searchable(self):
        """A schema graph works end-to-end with the engine."""
        from repro.core import Star
        from repro.query import star_query

        graph = papers_schema().generate(800, 5.0, seed=11)
        query = star_query("?", [("wrote", "?")], pivot_type="author",
                           leaf_types=["paper"])
        matches = Star(graph).search(query, 3)
        assert matches
        top = matches[0]
        assert graph.node(top.assignment[0]).type == "author"

    def test_empty_schema_rejected(self):
        with pytest.raises(DatasetError):
            Schema().generate(100, 4.0)
        schema = Schema().add_node_type("a", 1.0)
        with pytest.raises(DatasetError):
            schema.generate(100, 4.0)

    def test_infeasible_sizes_rejected(self):
        schema = papers_schema()
        with pytest.raises(DatasetError):
            schema.generate(2, 4.0)
        with pytest.raises(DatasetError):
            schema.generate(100, 0.0)

    def test_stalled_generation_rejected(self):
        schema = Schema()
        schema.add_node_type("only", share=1.0)
        schema.add_relation("self", "only", "only")
        # One node of each... a singleton type with a self-relation can
        # never place an edge.
        with pytest.raises(DatasetError):
            schema.generate(len(schema.node_types), 4.0)
