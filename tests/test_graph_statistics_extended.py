"""Tests for the extended statistics and graph-version staleness checks."""

import pytest

from repro.errors import GraphError, ScoringError
from repro.graph import KnowledgeGraph, NeighborhoodSketch
from repro.graph.statistics import (
    average_shortest_path,
    clustering_coefficient,
    label_selectivity,
)
from repro.similarity import Descriptor, ScoringFunction


def triangle_graph():
    g = KnowledgeGraph()
    for i in range(3):
        g.add_node(f"v{i}")
    g.add_edge(0, 1)
    g.add_edge(1, 2)
    g.add_edge(0, 2)
    return g


class TestClusteringCoefficient:
    def test_triangle_is_one(self):
        assert clustering_coefficient(triangle_graph()) == pytest.approx(1.0)

    def test_star_is_zero(self):
        g = KnowledgeGraph()
        hub = g.add_node("hub")
        for i in range(4):
            leaf = g.add_node(f"l{i}")
            g.add_edge(hub, leaf)
        assert clustering_coefficient(g) == 0.0

    def test_empty_graph(self):
        assert clustering_coefficient(KnowledgeGraph()) == 0.0

    def test_generated_graph_clusters(self, dense_graph):
        """Preferential attachment around shared endpoints clusters."""
        assert clustering_coefficient(dense_graph, sample=300) > 0.01


class TestLabelSelectivity:
    def test_profile_shape(self, movie_graph):
        profile = label_selectivity(movie_graph)
        assert 0.0 < profile["median"] <= profile["p90"] <= profile["max"] <= 1.0

    def test_empty_graph(self):
        profile = label_selectivity(KnowledgeGraph())
        assert profile == {"median": 0.0, "p90": 0.0, "max": 0.0}

    def test_ambiguity_exists_in_generated_graphs(self, yago_graph):
        """Some tokens are shared by many nodes (the 'Brad' effect)."""
        profile = label_selectivity(yago_graph)
        assert profile["max"] > 0.02


class TestAverageShortestPath:
    def test_path_graph(self):
        g = KnowledgeGraph()
        for i in range(5):
            g.add_node(f"v{i}")
        for i in range(4):
            g.add_edge(i, i + 1)
        avg = average_shortest_path(g, sample_pairs=400, seed=1)
        assert 1.0 < avg < 4.0

    def test_small_world_generated(self, dense_graph):
        avg = average_shortest_path(dense_graph, sample_pairs=100, seed=2)
        assert 0.0 < avg < 6.0  # dense KGs are small-world

    def test_trivial_graph(self):
        g = KnowledgeGraph()
        g.add_node("only")
        assert average_shortest_path(g) == 0.0


class TestStalenessDetection:
    def test_version_counter(self):
        g = KnowledgeGraph()
        assert g.version == 0
        a = g.add_node("a")
        b = g.add_node("b")
        assert g.version == 2
        g.add_edge(a, b)
        assert g.version == 3

    def test_stale_scorer_rejected(self):
        g = triangle_graph()
        scorer = ScoringFunction(g)
        scorer.assert_graph_unchanged()  # fine before mutation
        g.add_node("late arrival")
        with pytest.raises(ScoringError):
            scorer.assert_graph_unchanged()

    def test_stale_scorer_rejected_through_candidates(self):
        from repro.core import node_candidates
        from repro.query import Query

        g = triangle_graph()
        scorer = ScoringFunction(g)
        g.add_node("late")
        q = Query()
        q.add_node("v0")
        with pytest.raises(ScoringError):
            node_candidates(scorer, q.nodes[0])

    def test_stale_sketch_rejected(self):
        g = triangle_graph()
        sketch = NeighborhoodSketch(g)
        g.add_edge(g.add_node("x"), 0)
        with pytest.raises(GraphError):
            sketch.pivot_may_match(0, [])

    def test_fresh_scorer_after_mutation_works(self):
        from repro.core import StarKSearch
        from repro.query import star_query

        g = triangle_graph()
        g.add_edge(g.add_node("Brad Pitt", "actor"), 0, "knows")
        scorer = ScoringFunction(g)
        star = star_query("Brad", [("knows", "?")])
        assert StarKSearch(scorer).search(star, 1)
