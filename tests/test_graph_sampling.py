"""Tests for the Exp-5 BFS sampling / expansion protocol."""

import pytest

from repro.errors import DatasetError
from repro.graph import KnowledgeGraph, bfs_expand, bfs_sample, yago2_like
from repro.graph.sampling import scalability_series


class TestBfsSample:
    def test_target_edge_count(self, yago_graph):
        sample = bfs_sample(yago_graph, 500, seed=3)
        assert len(sample.used_edges) == 500
        assert sample.graph.num_edges == 500

    def test_connected(self, yago_graph):
        from repro.graph.traversal import connected_components

        sample = bfs_sample(yago_graph, 300, seed=3)
        comps = connected_components(sample.graph)
        # All non-isolated structure came from one BFS: one component.
        assert len(comps) == 1

    def test_preserves_node_data(self, yago_graph):
        sample = bfs_sample(yago_graph, 100, seed=3)
        for universe_id, local_id in list(sample.node_map.items())[:20]:
            assert (
                sample.graph.node(local_id).name
                == yago_graph.node(universe_id).name
            )

    def test_empty_universe_rejected(self):
        with pytest.raises(DatasetError):
            bfs_sample(KnowledgeGraph(), 10)


class TestBfsExpand:
    def test_grows_by_requested_edges(self, yago_graph):
        g1 = bfs_sample(yago_graph, 300, seed=3)
        g2 = bfs_expand(g1, 200, seed=4)
        assert len(g2.used_edges) == 500
        # Input untouched.
        assert len(g1.used_edges) == 300

    def test_supergraph(self, yago_graph):
        g1 = bfs_sample(yago_graph, 300, seed=3)
        g2 = bfs_expand(g1, 200, seed=4)
        assert g1.used_edges <= g2.used_edges
        assert set(g1.node_map) <= set(g2.node_map)

    def test_saturates_gracefully(self):
        g = KnowledgeGraph()
        a, b, c = g.add_node("a"), g.add_node("b"), g.add_node("c")
        g.add_edge(a, b)
        g.add_edge(b, c)
        sample = bfs_sample(g, 1, seed=1)
        grown = bfs_expand(sample, 100, seed=2)
        assert len(grown.used_edges) == 2  # universe exhausted, no hang


class TestScalabilitySeries:
    def test_paper_ratios(self, yago_graph):
        sizes = [300, 500, 700, 1000]
        series = scalability_series(yago_graph, sizes, seed=9)
        assert [g.num_edges for g in series] == sizes
        names = [g.name for g in series]
        assert names[0].endswith("G1") and names[-1].endswith("G4")

    def test_nested(self, yago_graph):
        series = scalability_series(yago_graph, [200, 400], seed=9)
        small_edges = {
            (series[0].node(s).name, series[0].node(d).name)
            for _e, s, d in series[0].edges()
        }
        big_edges = {
            (series[1].node(s).name, series[1].node(d).name)
            for _e, s, d in series[1].edges()
        }
        # Name-level containment (ids are renumbered per graph).
        assert len(small_edges - big_edges) == 0

    def test_non_increasing_sizes_rejected(self, yago_graph):
        with pytest.raises(DatasetError):
            scalability_series(yago_graph, [500, 300])
        with pytest.raises(DatasetError):
            scalability_series(yago_graph, [300, 300])
