"""Integration hooks of the zero-copy store into serve, batch and CLI.

Covers the thin glue the differential/concurrent suites reach only
through subprocesses: ``EngineContext`` attaching ``mmap_store`` for
serve workers, ``search_many(..., mmap_store=...)`` for batch pools,
``load_any`` format sniffing, and the ``repro compact`` /
``--mmap`` CLI paths -- all against in-memory ground truth.
"""

from __future__ import annotations

import pytest

from repro.core.framework import Star
from repro.dynamic import load_any
from repro.errors import DatasetError
from repro.graph import KnowledgeGraph
from repro.perf import search_many
from repro.query import parse_query
from repro.serve.supervisor import EngineContext, execute_payload
from repro.store import MmapGraphIndex, open_graph, write_store

from tests.conftest import build_movie_graph

QUERY = "(?m:director) -[collaborated_with]- (Brad:actor)"


@pytest.fixture(scope="module")
def store_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("integration") / "movies.rkgs2"
    write_store(build_movie_graph(), path)
    return path


class TestServeContext:
    def test_engine_context_attaches_store(self, store_path):
        graph = open_graph(store_path)
        ctx = EngineContext(graph, engine_opts={
            "mmap_store": str(store_path), "use_index": "on"})
        assert isinstance(ctx.scorer.graph_index, MmapGraphIndex)
        assert "mmap_store" not in ctx.engine_opts  # consumed, not a Star kwarg
        result = execute_payload(ctx, {"query": QUERY, "k": 2})
        assert result["ok"] is True
        baseline = execute_payload(
            EngineContext(build_movie_graph()), {"query": QUERY, "k": 2})
        assert result["matches"] == baseline["matches"]

    def test_use_index_off_skips_attach(self, store_path):
        graph = open_graph(store_path)
        ctx = EngineContext(graph, engine_opts={
            "mmap_store": str(store_path), "use_index": "off"})
        assert ctx.scorer.graph_index is None


class TestBatchPool:
    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_search_many_attaches_store(self, store_path, backend):
        graph = open_graph(store_path)
        queries = [parse_query(QUERY, name="q0")]
        got = search_many(graph, queries, 3, workers=2, backend=backend,
                          use_index="on", mmap_store=str(store_path))
        want = search_many(build_movie_graph(), queries, 3, workers=2,
                           backend=backend, use_index="on")
        assert [[(m.key(), round(m.score, 9)) for m in o.matches]
                for o in got.outcomes] == \
               [[(m.key(), round(m.score, 9)) for m in o.matches]
                for o in want.outcomes]


class TestFormatSniffing:
    def test_load_any_opens_stores(self, store_path):
        graph = load_any(store_path)
        assert graph.store_path == str(store_path)
        assert graph.num_nodes == build_movie_graph().num_nodes

    def test_snapshot_loader_rejects_store_with_hint(self, store_path):
        from repro.dynamic.snapshot import load_snapshot

        with pytest.raises(DatasetError, match="open_mmap"):
            load_snapshot(store_path)

    def test_open_mmap_rejects_snapshot_and_jsonl(self, tmp_path):
        from repro.dynamic.snapshot import save_snapshot

        graph = build_movie_graph()
        snap = tmp_path / "graph.kgs"
        save_snapshot(graph, snap)
        with pytest.raises(DatasetError):
            KnowledgeGraph.open_mmap(snap)


class TestCli:
    def test_compact_and_mmap_search_match_snapshot_search(self, tmp_path,
                                                           capsys):
        from repro.cli import main

        graph = build_movie_graph()
        snap = tmp_path / "graph.kgs"
        graph.save(snap)
        store = tmp_path / "graph.rkgs2"
        assert main(["compact", str(snap), str(store), "--verify"]) == 0
        capsys.readouterr()
        assert main(["search", str(snap), QUERY, "-k", "3"]) == 0
        plain = capsys.readouterr().out.splitlines()[1:]
        assert main(["search", str(store), QUERY, "-k", "3", "--mmap"]) == 0
        mapped = capsys.readouterr().out.splitlines()[1:]
        assert mapped == plain
        assert any(line.startswith("#1") for line in plain)

    def test_mmap_flag_on_wrong_format_names_compact(self, tmp_path,
                                                     capsys):
        from repro.cli import main

        snap = tmp_path / "graph.kgs"
        build_movie_graph().save(snap)
        assert main(["search", str(snap), QUERY, "-k", "1", "--mmap"]) == 2
        assert "repro compact" in capsys.readouterr().err


class TestAttachContracts:
    def test_refresh_pins_version(self, store_path):
        graph = open_graph(store_path)
        from repro.store import attach_mmap_index

        index = attach_mmap_index(graph, graph, mode="on")
        assert index.refresh() is False  # same version: no-op
        graph.add_node("Drift", "film")
        with pytest.raises(RuntimeError, match="compact"):
            index.refresh()
        index.detach()
        assert index.store_path is None

    def test_constructor_blocked(self):
        with pytest.raises(TypeError, match="attach_mmap_index"):
            MmapGraphIndex()

    def test_attach_rejects_other_graph(self, store_path):
        from repro.store import attach_mmap_index

        other = build_movie_graph()
        other.add_node("Extra", "film")  # version drift vs the store
        with pytest.raises(ValueError):
            attach_mmap_index(str(store_path), other)

    def test_graph_constructor_blocked(self):
        from repro.store.lazygraph import MmapKnowledgeGraph

        with pytest.raises(TypeError, match="open_mmap"):
            MmapKnowledgeGraph()

    def test_index_attach_mmap_classmethod(self, store_path):
        from repro.index import GraphIndex

        graph = open_graph(store_path)
        index = GraphIndex.attach_mmap(store_path, graph, mode="on")
        assert isinstance(index, MmapGraphIndex)
        scorer_engine = Star(graph, use_index="on")
        scorer_engine.scorer.graph_index = index
        matches = scorer_engine.search(
            parse_query(QUERY, name="q"), 3)
        baseline = Star(build_movie_graph(), use_index="on").search(
            parse_query(QUERY, name="q"), 3)
        assert ([(m.key(), round(m.score, 9)) for m in matches]
                == [(m.key(), round(m.score, 9)) for m in baseline])
