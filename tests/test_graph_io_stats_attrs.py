"""Tests for graph serialization, statistics, and the attribute store."""

import pytest

from repro.errors import DatasetError
from repro.graph import AttributeStore, load_graph, save_graph, summarize
from repro.graph.statistics import degree_histogram, degree_skew, relation_counts


class TestIo:
    def test_roundtrip(self, movie_graph, tmp_path):
        path = tmp_path / "movies.kg"
        save_graph(movie_graph, path)
        loaded = load_graph(path)
        assert loaded.num_nodes == movie_graph.num_nodes
        assert loaded.num_edges == movie_graph.num_edges
        assert loaded.name == movie_graph.name
        for v in movie_graph.nodes():
            assert loaded.node(v).name == movie_graph.node(v).name
            assert loaded.node(v).type == movie_graph.node(v).type
        for eid, src, dst in movie_graph.edges():
            lsrc, ldst, ldata = loaded.edge(eid)
            assert (lsrc, ldst) == (src, dst)
            assert ldata.relation == movie_graph.edge(eid)[2].relation

    def test_attrs_roundtrip(self, tmp_path):
        from repro.graph import KnowledgeGraph

        g = KnowledgeGraph(name="attrs")
        a = g.add_node("A", "thing", year=1999)
        b = g.add_node("B")
        g.add_edge(a, b, "rel", weight=0.5)
        path = tmp_path / "g.kg"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.node(0).attrs == {"year": 1999}
        assert loaded.edge(0)[2].attrs == {"weight": 0.5}

    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_graph(tmp_path / "nope.kg")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.kg"
        path.write_text("")
        with pytest.raises(DatasetError):
            load_graph(path)

    def test_bad_version(self, tmp_path):
        path = tmp_path / "bad.kg"
        path.write_text('{"version": 99}\n')
        with pytest.raises(DatasetError):
            load_graph(path)

    def test_malformed_record(self, tmp_path):
        path = tmp_path / "bad.kg"
        path.write_text(
            '{"version": 1, "name": "x", "directed": true}\n["z", 1]\n'
        )
        with pytest.raises(DatasetError):
            load_graph(path)

    def test_node_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.kg"
        path.write_text(
            '{"version": 1, "name": "x", "directed": true, "num_nodes": 3}\n'
            '["n", "A", "", [], {}]\n'
        )
        with pytest.raises(DatasetError):
            load_graph(path)


class TestStatistics:
    def test_summarize(self, movie_graph):
        stats = summarize(movie_graph)
        assert stats.num_nodes == movie_graph.num_nodes
        assert stats.num_edges == movie_graph.num_edges
        assert stats.num_types == len(movie_graph.types())
        assert stats.avg_degree == pytest.approx(
            2 * movie_graph.num_edges / movie_graph.num_nodes
        )
        row = stats.as_row()
        assert row[0] == "movies"
        assert row[-1].endswith("MB")

    def test_degree_histogram_covers_all_nodes(self, yago_graph):
        hist = degree_histogram(yago_graph)
        total = sum(count for _ub, count in hist)
        isolated = sum(1 for v in yago_graph.nodes() if yago_graph.degree(v) == 0)
        assert total == yago_graph.num_nodes - isolated

    def test_degree_skew_regular_graph(self):
        from repro.graph import KnowledgeGraph

        g = KnowledgeGraph()
        for i in range(10):
            g.add_node(f"v{i}")
        for i in range(10):
            g.add_edge(i, (i + 1) % 10)
        assert degree_skew(g) == pytest.approx(1.0)

    def test_relation_counts(self, movie_graph):
        counts = relation_counts(movie_graph)
        assert counts["acted_in"] == 3
        assert counts["film_won"] == 2


class TestAttributeStore:
    def test_counts_fetches(self, movie_graph):
        store = AttributeStore(movie_graph)
        store.node_attrs(0)
        store.node_attrs(1)
        store.edge_attrs(0)
        assert store.node_fetches == 2
        assert store.edge_fetches == 1
        assert store.total_fetches == 3

    def test_reset(self, movie_graph):
        store = AttributeStore(movie_graph)
        store.node_attrs(0)
        store.reset()
        assert store.total_fetches == 0

    def test_returns_actual_attrs(self):
        from repro.graph import KnowledgeGraph

        g = KnowledgeGraph()
        g.add_node("A", year=2001)
        store = AttributeStore(g)
        assert store.node_attrs(0) == {"year": 2001}
