"""Property-based suite for the string catalog.

Pins the algebraic contracts every similarity measure is supposed to
satisfy -- the ones individual unit tests only spot-check:

* **reflexivity** -- ``sim(x, x) == 1.0`` for every similarity measure,
  under each measure's documented precondition (e.g. keyword measures
  need keywords present: both-absent is *no evidence*, scored 0);
* **symmetry** -- where the docstring promises it (the set/string
  primitives; directional coverage measures are exempt by design);
* **range** -- every catalog function stays inside ``[0, 1]`` for any
  descriptor pair, with no precondition at all;
* **n-gram length homogeneity** -- ``ngrams(text, n)`` never mixes gram
  lengths inside one set.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.similarity.descriptors import CorpusContext, Descriptor
from repro.similarity.functions import EDGE_FUNCTIONS, NODE_FUNCTIONS
from repro.similarity.strings import (
    dice,
    edit_similarity,
    jaccard,
    jaro,
    jaro_winkler,
    ngrams,
    overlap_coefficient,
)

# Mixed-case words plus digits/punctuation so tokenization, numeric
# extraction and initials all get exercised.
name_text = st.text(
    alphabet="abcdefgh ABCDEFGH.-'?019", min_size=0, max_size=24)
type_text = st.sampled_from(
    ["", "actor", "person", "film", "city", "organization", "Type Label"])
keyword_lists = st.lists(
    st.text(alphabet="abcdefgh 01", min_size=1, max_size=10), max_size=3)
char_sets = st.frozensets(st.characters(), max_size=8)


def make_descriptor(name, type="", keywords=()):
    return Descriptor(name=name, type=type, keywords=tuple(keywords))


@st.composite
def descriptors(draw):
    return make_descriptor(
        draw(name_text), draw(type_text), draw(keyword_lists))


CTX = CorpusContext(idf={"abc": 0.5, "fa": 0.25}, max_degree=8)


# ----------------------------------------------------------------------
# String / set primitives
# ----------------------------------------------------------------------
class TestPrimitiveReflexivity:
    @given(name_text)
    def test_string_measures(self, a):
        assert edit_similarity(a, a) == 1.0
        assert jaro(a, a) == 1.0
        assert jaro_winkler(a, a) == 1.0

    @given(char_sets)
    def test_set_measures(self, s):
        assert jaccard(s, s) == 1.0
        assert dice(s, s) == 1.0
        assert overlap_coefficient(s, s) == 1.0


class TestPrimitiveSymmetry:
    @given(name_text, name_text)
    def test_string_measures(self, a, b):
        assert edit_similarity(a, b) == edit_similarity(b, a)
        assert jaro(a, b) == pytest.approx(jaro(b, a))

    @given(char_sets, char_sets)
    def test_set_measures(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)
        assert dice(a, b) == dice(b, a)
        assert overlap_coefficient(a, b) == overlap_coefficient(b, a)


class TestPrimitiveRange:
    @given(name_text, name_text)
    def test_string_measures(self, a, b):
        for fn in (edit_similarity, jaro, jaro_winkler):
            assert 0.0 <= fn(a, b) <= 1.0

    @given(char_sets, char_sets)
    def test_set_measures(self, a, b):
        for fn in (jaccard, dice, overlap_coefficient):
            assert 0.0 <= fn(a, b) <= 1.0


class TestNgramHomogeneity:
    @given(st.text(max_size=16), st.integers(min_value=1, max_value=10))
    def test_every_gram_has_length_n(self, text, n):
        for gram in ngrams(text, n):
            assert len(gram) == n

    @given(st.text(min_size=1, max_size=16),
           st.integers(min_value=1, max_value=10))
    def test_nonempty_text_yields_grams(self, text, n):
        assert ngrams(text, n)


# ----------------------------------------------------------------------
# Catalog-wide properties
# ----------------------------------------------------------------------
#: measure name -> precondition on the (identical) descriptor under
#: which the measure must score the pair as a perfect 1.0 match.
#: Measures absent here are not reflexive by design: priors
#: (degree_prior, wildcard), cross-form measures comparing *different*
#: shapes of the same entity (acronym_*, abbreviation_tokens,
#: keyword_in_name, name_in_keyword, synonym_token, unit_convert_match),
#: and rare_token_bonus (returns an IDF, not a normalized similarity).
REFLEXIVE_NODE_MEASURES = {
    "exact_name": lambda x: not x.is_wildcard,
    "name_edit": lambda x: not x.is_wildcard,
    "name_jaro_winkler": lambda x: not x.is_wildcard,
    "token_jaccard": lambda x: True,
    "token_dice": lambda x: True,
    "token_overlap": lambda x: True,
    "prefix_ratio": lambda x: not x.is_wildcard,
    "suffix_ratio": lambda x: not x.is_wildcard,
    "containment": lambda x: not x.is_wildcard,
    "first_token_equal": lambda x: x.name_tokens,
    "last_token_equal": lambda x: x.name_tokens,
    "query_token_coverage": lambda x: x.name_tokens,
    "data_token_coverage": lambda x: x.name_tokens,
    "bigram_jaccard": lambda x: not x.is_wildcard,
    "trigram_jaccard": lambda x: not x.is_wildcard,
    "soundex_first_token": lambda x: x.soundex_first,
    "phonetic_name": lambda x: not x.is_wildcard and x.phonetic,
    "initials_similarity": lambda x: not x.is_wildcard and x.initials,
    "best_token_edit": lambda x: x.name_tokens,
    "synset_jaccard": lambda x: True,
    "type_exact": lambda x: x.type,
    "type_synonym": lambda x: x.type,
    "type_ontology": lambda x: x.type,
    "type_subsumption": lambda x: x.type,
    "type_token_overlap": lambda x: x.type_tokens,
    "keyword_jaccard": lambda x: x.keyword_tokens,
    "keyword_overlap": lambda x: x.keyword_tokens,
    "tfidf_cosine": lambda x: x.token_set,
    "numeric_exact": lambda x: x.numbers,
    "numeric_close": lambda x: x.numbers,
    "length_ratio": lambda x: not x.is_wildcard,
}

REFLEXIVE_EDGE_MEASURES = {
    "relation_exact": lambda x: not x.is_wildcard,
    "relation_synonym": lambda x: not x.is_wildcard,
    "relation_token_jaccard": lambda x: True,
}

_NODE_BY_NAME = dict(NODE_FUNCTIONS)
_EDGE_BY_NAME = dict(EDGE_FUNCTIONS)


class TestCatalogReflexivity:
    def test_map_names_exist(self):
        assert set(REFLEXIVE_NODE_MEASURES) <= set(_NODE_BY_NAME)
        assert set(REFLEXIVE_EDGE_MEASURES) <= set(_EDGE_BY_NAME)

    @settings(max_examples=200)
    @given(descriptors())
    def test_node_measures(self, x):
        for name, precondition in REFLEXIVE_NODE_MEASURES.items():
            if not precondition(x):
                continue
            score = _NODE_BY_NAME[name](x, x, CTX)
            assert score == pytest.approx(1.0), (
                f"{name}(x, x) == {score} for {x.name!r} "
                f"(type={x.type!r}, keywords={x.keywords!r})")

    @given(st.sampled_from(
        ["collaborated_with", "won", "born_in", "acted-in", "?"]))
    def test_edge_measures(self, label):
        x = Descriptor(name=label)
        for name, precondition in REFLEXIVE_EDGE_MEASURES.items():
            if not precondition(x):
                continue
            assert _EDGE_BY_NAME[name](x, x, CTX) == pytest.approx(1.0)


class TestCatalogRange:
    """Every catalog function stays in [0, 1] with no precondition."""

    @settings(max_examples=200)
    @given(descriptors(), descriptors())
    def test_node_measures(self, q, d):
        for name, fn in NODE_FUNCTIONS:
            score = fn(q, d, CTX)
            assert 0.0 <= score <= 1.0, f"{name}({q.name!r}, {d.name!r})"

    @given(descriptors(), descriptors())
    def test_edge_measures(self, q, d):
        for name, fn in EDGE_FUNCTIONS:
            score = fn(q, d, CTX)
            assert 0.0 <= score <= 1.0, f"{name}({q.name!r}, {d.name!r})"


class TestCatalogSymmetry:
    """Measures whose docstrings promise symmetric scores."""

    SYMMETRIC_NODE_MEASURES = (
        "exact_name", "name_edit", "token_jaccard", "token_dice",
        "token_overlap", "prefix_ratio", "suffix_ratio", "containment",
        "first_token_equal", "last_token_equal", "bigram_jaccard",
        "trigram_jaccard", "soundex_first_token", "phonetic_name",
        "initials_similarity", "synset_jaccard", "type_exact",
        "type_synonym", "type_ontology", "type_subsumption",
        "type_token_overlap", "keyword_jaccard", "keyword_overlap",
        "tfidf_cosine", "rare_token_bonus", "length_ratio",
        "numeric_exact", "numeric_close",
    )

    @settings(max_examples=200)
    @given(descriptors(), descriptors())
    def test_node_measures(self, q, d):
        for name in self.SYMMETRIC_NODE_MEASURES:
            fn = _NODE_BY_NAME[name]
            if q.is_wildcard or d.is_wildcard:
                continue  # wildcard gating is explicitly query-side
            assert fn(q, d, CTX) == pytest.approx(fn(d, q, CTX)), name
