"""Tests for bounded traversal primitives."""

from repro.graph import KnowledgeGraph, bounded_bfs_layers, nodes_within
from repro.graph.traversal import bounded_distance, connected_components


def path_graph(n: int) -> KnowledgeGraph:
    g = KnowledgeGraph()
    for i in range(n):
        g.add_node(f"v{i}")
    for i in range(n - 1):
        g.add_edge(i, i + 1, "next")
    return g


class TestBoundedBfsLayers:
    def test_path_layers(self):
        g = path_graph(6)
        layers = bounded_bfs_layers(g, 0, 3)
        assert layers == [[0], [1], [2], [3]]

    def test_layer_shape_contract(self):
        g = path_graph(3)
        layers = bounded_bfs_layers(g, 0, 5)
        assert len(layers) == 6
        assert layers[3:] == [[], [], []]

    def test_star_center(self, movie_graph):
        layers = bounded_bfs_layers(movie_graph, 0, 1)  # Brad Pitt
        assert len(layers[1]) == movie_graph.degree(0)

    def test_no_duplicates_across_layers(self, movie_graph):
        layers = bounded_bfs_layers(movie_graph, 0, 3)
        flat = [v for layer in layers for v in layer]
        assert len(flat) == len(set(flat))


class TestNodesWithin:
    def test_distances(self):
        g = path_graph(6)
        dist = nodes_within(g, 0, 3)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_zero_hops(self):
        g = path_graph(3)
        assert nodes_within(g, 1, 0) == {1: 0}

    def test_symmetric_on_undirected_view(self):
        g = path_graph(4)
        assert nodes_within(g, 3, 2) == {3: 0, 2: 1, 1: 2}


class TestBoundedDistance:
    def test_finds_targets(self):
        g = path_graph(8)
        found = bounded_distance(g, 0, [2, 5, 7], 5)
        assert found == {2: 2, 5: 5}

    def test_source_is_target(self):
        g = path_graph(3)
        assert bounded_distance(g, 1, [1], 2) == {1: 0}

    def test_early_exit_when_all_found(self):
        g = path_graph(10)
        found = bounded_distance(g, 0, [1], 9)
        assert found == {1: 1}


class TestConnectedComponents:
    def test_single_component(self, movie_graph):
        comps = connected_components(movie_graph)
        assert len(comps) == 1
        assert len(comps[0]) == movie_graph.num_nodes

    def test_two_components(self):
        g = KnowledgeGraph()
        a, b = g.add_node("a"), g.add_node("b")
        c, d = g.add_node("c"), g.add_node("d")
        g.add_edge(a, b)
        g.add_edge(c, d)
        comps = connected_components(g)
        assert sorted(len(c) for c in comps) == [2, 2]

    def test_isolated_nodes(self):
        g = KnowledgeGraph()
        g.add_node("a")
        g.add_node("b")
        assert len(connected_components(g)) == 2
