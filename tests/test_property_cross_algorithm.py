"""Property tests: every matcher agrees on every random input.

The strongest correctness statement in the suite: on arbitrary random
graphs and queries, stark, stard, hybrid, graphTA (all exact) return
score-identical top-k lists to the brute-force oracle, and BP does so on
acyclic queries.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import (
    BeliefPropagation,
    GraphTA,
    brute_force_star,
    brute_force_topk,
)
from repro.core import HybridStarSearch, StarDSearch, StarKSearch, Star
from repro.query import Query, StarQuery, star_query
from repro.similarity import ScoringFunction

from tests.conftest import build_random_graph

# Deterministic scorer cache (hypothesis re-runs with the same seeds).
_SCORERS = {}


def scorer_for(seed: int) -> ScoringFunction:
    if seed not in _SCORERS:
        _SCORERS[seed] = ScoringFunction(build_random_graph(seed))
    return _SCORERS[seed]


def star_of(size_choice: int) -> StarQuery:
    leaves = [
        [("acted_in", "?")],
        [("acted_in", "Troy"), ("won", "?")],
        [("?", "Brad"), ("directed", "?"), ("born_in", "Venice")],
    ][size_choice]
    return star_query("Brad", leaves, pivot_type="actor")


def rounded(matches):
    return [round(m.score, 9) for m in matches]


class TestStarMatchersAgree:
    @given(
        seed=st.integers(min_value=0, max_value=60),
        size_choice=st.integers(min_value=0, max_value=2),
        k=st.integers(min_value=1, max_value=6),
        d=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_star_matchers_equal_oracle(self, seed, size_choice, k, d):
        scorer = scorer_for(seed)
        star = star_of(size_choice)
        want = rounded(brute_force_star(scorer, star, k, d=d))
        assert rounded(StarKSearch(scorer, d=d).search(star, k)) == want
        assert rounded(StarDSearch(scorer, d=d).search(star, k)) == want
        assert rounded(HybridStarSearch(scorer, d=d).search(star, k)) == want


class TestGeneralMatchersAgree:
    @given(
        seed=st.integers(min_value=0, max_value=40),
        k=st.integers(min_value=1, max_value=4),
        alpha=st.sampled_from([0.1, 0.5, 0.9]),
    )
    @settings(max_examples=25, deadline=None)
    def test_join_and_ta_equal_oracle_on_cycles(self, seed, k, alpha):
        scorer = scorer_for(seed)
        query = Query(name="tri")
        a = query.add_node("Brad", type="actor")
        b = query.add_node("?", type="film")
        c = query.add_node("?")
        query.add_edge(a, b, "acted_in")
        query.add_edge(b, c, "?")
        query.add_edge(a, c, "?")
        want = rounded(brute_force_topk(scorer, query, k))
        engine = Star(
            scorer.graph, scorer=scorer, alpha=alpha,
            decomposition_method="maxdeg",
        )
        assert rounded(engine.search(query, k)) == want
        assert rounded(GraphTA(scorer).search(query, k)) == want

    @given(seed=st.integers(min_value=0, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_bp_exact_on_acyclic(self, seed):
        scorer = scorer_for(seed)
        query = Query(name="path3")
        a = query.add_node("Brad", type="actor")
        b = query.add_node("?", type="film")
        c = query.add_node("?", type="award")
        query.add_edge(a, b, "acted_in")
        query.add_edge(b, c, "won")
        want = rounded(brute_force_topk(scorer, query, 3))
        got = rounded(BeliefPropagation(scorer).search(query, 3))
        assert got == want
