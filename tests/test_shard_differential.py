"""Hypothesis differential: sharded top-k == single-process top-k.

The headline invariant of ``repro.shard``: for every star query,
:class:`~repro.shard.ShardedEngine` returns the same top-k as the
single-process :class:`~repro.core.framework.Star` -- across random
graphs, both partition strategies, shard counts 1..8, d in {1, 2}, and
after graph mutations (which trigger an automatic re-partition).  The
comparison is tie-tolerant in the oracle's style (rank-by-rank score
equality plus assignment validity at that score); across *shard counts*
the stronger claim holds -- byte-identical rankings -- because the
merger's canonical ``(-score, key)`` order is shard-oblivious.
"""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.core.framework import Star
from repro.query import star_workload
from repro.shard import STRATEGIES, ShardedEngine
from repro.similarity import ScoringFunction

from tests.conftest import build_random_graph

ROUND = 9
K = 5


def ranking(matches):
    return [(m.key(), round(m.score, ROUND)) for m in matches]


def assert_tie_tolerant_equal(got, expected_topk, expected_full):
    """Scores agree rank-by-rank; every assignment is valid at its score."""
    assert ([round(m.score, ROUND) for m in got]
            == [round(m.score, ROUND) for m in expected_topk])
    by_score = defaultdict(set)
    for m in expected_full:
        by_score[round(m.score, ROUND)].add(m.key())
    for m in got:
        assert m.key() in by_score[round(m.score, ROUND)]
    keys = [m.key() for m in got]
    assert len(keys) == len(set(keys))


# Deterministic per-seed fixtures (hypothesis re-runs the same seeds).
_BASELINES = {}


def baseline_for(seed: int, d: int):
    key = (seed, d)
    if key not in _BASELINES:
        graph = build_random_graph(seed)
        scorer = ScoringFunction(graph)
        engine = Star(graph, scorer=scorer, d=d)
        queries = star_workload(graph, 3, seed=seed)
        expected = [(q, engine.search(q, K), engine.search(q, 200))
                    for q in queries]
        _BASELINES[key] = (graph, scorer, expected)
    return _BASELINES[key]


class TestShardedDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=10),
        shards=st.integers(min_value=1, max_value=8),
        strategy=st.sampled_from(STRATEGIES),
        d=st.sampled_from((1, 2)),
    )
    @settings(max_examples=40, deadline=None)
    def test_sharded_equals_single_process(self, seed, shards, strategy, d):
        graph, scorer, expected = baseline_for(seed, d)
        engine = ShardedEngine(
            graph, scorer=scorer, shards=shards, partition=strategy,
            backend="serial", d=d,
        )
        try:
            for query, topk, full in expected:
                got = engine.search(query, K)
                assert_tie_tolerant_equal(got, topk, full)
        finally:
            engine.close()

    @given(
        seed=st.integers(min_value=0, max_value=8),
        strategy=st.sampled_from(STRATEGIES),
    )
    @settings(max_examples=15, deadline=None)
    def test_ranking_invariant_across_shard_counts(self, seed, strategy):
        """Sharded rankings are byte-identical for every shard count."""
        graph = build_random_graph(seed)
        scorer = ScoringFunction(graph)
        queries = star_workload(graph, 2, seed=seed + 100)
        rankings = {}
        for shards in (1, 2, 4, 7):
            engine = ShardedEngine(
                graph, scorer=scorer, shards=shards, partition=strategy,
                backend="serial", d=1,
            )
            try:
                rankings[shards] = [ranking(engine.search(q, K))
                                    for q in queries]
            finally:
                engine.close()
        reference = rankings.pop(1)
        for shards, got in rankings.items():
            assert got == reference, f"shards={shards} diverged"

    @given(
        seed=st.integers(min_value=0, max_value=6),
        shards=st.integers(min_value=2, max_value=5),
        strategy=st.sampled_from(STRATEGIES),
    )
    @settings(max_examples=15, deadline=None)
    def test_mutation_triggers_exact_repartition(self, seed, shards,
                                                 strategy):
        graph = build_random_graph(seed)
        scorer = ScoringFunction(graph)
        queries = star_workload(graph, 2, seed=seed + 50)
        engine = ShardedEngine(
            graph, scorer=scorer, shards=shards, partition=strategy,
            backend="serial", d=1,
        )
        try:
            for query in queries:
                engine.search(query, K)  # warm pre-mutation state
            version_before = engine.partition.graph_version
            fresh_id = graph.add_node("brad fresh", "actor",
                                      keywords=("drama",))
            anchor = next(iter(graph.nodes()))
            if anchor != fresh_id:
                graph.add_edge(fresh_id, anchor, "acted_in")
            oracle = Star(graph, d=1)
            for query in queries:
                got = engine.search(query, K)
                topk = oracle.search(query, K)
                full = oracle.search(query, 200)
                assert_tie_tolerant_equal(got, topk, full)
            assert engine.partition.graph_version == graph.version
            assert engine.partition.graph_version != version_before
        finally:
            engine.close()
