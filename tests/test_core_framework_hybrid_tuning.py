"""Tests for the STAR framework facade, hybrid search and tuning."""

import pytest

from repro.baselines import brute_force_star, brute_force_topk
from repro.core import HybridStarSearch, Star, tune_parameters
from repro.core.tuning import aggregate_depth
from repro.errors import SearchError
from repro.query import StarQuery, complex_workload, star_query, star_workload
from repro.similarity import ScoringFunction


class TestFramework:
    def test_star_query_direct_path(self, yago_scorer, yago_graph):
        """Star-shaped queries bypass decomposition."""
        query = star_workload(yago_graph, 1, seed=51)[0]
        engine = Star(yago_graph, scorer=yago_scorer)
        matches = engine.search(query, 5)
        assert engine.last_decomposition is None
        want = brute_force_star(
            yago_scorer, StarQuery.from_query(query), 5
        )
        assert [m.score for m in matches] == pytest.approx(
            [m.score for m in want]
        )

    def test_star_query_object_accepted(self, yago_scorer, yago_graph):
        star = star_query("?", [("directed", "?")], pivot_type="director")
        engine = Star(yago_graph, scorer=yago_scorer)
        assert engine.search(star, 3)

    def test_general_query_decomposes(self, yago_scorer, yago_graph):
        query = complex_workload(yago_graph, 1, shape=(4, 4), seed=52)[0]
        engine = Star(yago_graph, scorer=yago_scorer)
        engine.search(query, 3)
        assert engine.last_decomposition is not None
        assert engine.last_decomposition.num_stars >= 2

    def test_prebuilt_decomposition_honored(self, yago_scorer, yago_graph):
        from repro.query import decompose

        query = complex_workload(yago_graph, 1, shape=(4, 4), seed=53)[0]
        decomposition = decompose(query, "maxdeg")
        engine = Star(yago_graph, scorer=yago_scorer)
        got = engine.search(query, 3, decomposition=decomposition)
        want = brute_force_topk(yago_scorer, query, 3)
        assert [m.score for m in got] == pytest.approx([m.score for m in want])
        assert engine.last_decomposition is decomposition

    def test_builds_default_scorer(self, movie_graph):
        engine = Star(movie_graph)
        star = star_query("Brad", [("acted_in", "?")], pivot_type="actor")
        assert engine.search(star, 1)

    def test_invalid_k_and_d(self, yago_graph, yago_scorer):
        engine = Star(yago_graph, scorer=yago_scorer)
        star = star_query("Brad", [("acted_in", "?")])
        with pytest.raises(SearchError):
            engine.search(star, 0)
        with pytest.raises(SearchError):
            Star(yago_graph, scorer=yago_scorer, d=0)


class TestHybrid:
    @pytest.mark.parametrize("d", [1, 2])
    def test_matches_oracle(self, yago_scorer, yago_graph, d):
        for query in star_workload(yago_graph, 6, seed=54):
            star = StarQuery.from_query(query)
            got = HybridStarSearch(yago_scorer, d=d).search(star, 5)
            want = brute_force_star(yago_scorer, star, 5, d=d)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            ), query.name

    def test_never_evaluates_more_than_stark(self, yago_scorer, yago_graph):
        from repro.core import StarKSearch

        for query in star_workload(yago_graph, 6, seed=55):
            star = StarQuery.from_query(query)
            hybrid = HybridStarSearch(yago_scorer)
            hybrid.search(star, 3)
            baseline = StarKSearch(yago_scorer)
            baseline.search(star, 3)
            assert hybrid.pivots_evaluated <= baseline.stats.pivots_considered

    def test_cutoff_skips_low_score_pivots(self):
        """When pivot scores are spread out, stage 1 stops early."""
        from repro.graph import KnowledgeGraph

        g = KnowledgeGraph(name="spread")
        film = g.add_node("Troy", "film")
        exact = g.add_node("Brad Pitt", "actor")
        g.add_edge(exact, film, "acted_in")
        # Many weak fuzzy pivots ("Brad" token only, long names).
        for i in range(30):
            weak = g.add_node(f"Brad Somebody Else Number {i}", "actor")
            g.add_edge(weak, film, "acted_in")
        scorer = ScoringFunction(g)
        star = star_query("Brad Pitt", [("acted_in", "Troy")],
                          pivot_type="actor")
        hybrid = HybridStarSearch(scorer)
        matches = hybrid.search(star, 1)
        assert matches and matches[0].assignment[0] == exact
        assert hybrid.pivots_evaluated < 31

    def test_k_validation(self, yago_scorer):
        star = star_query("Brad", [("acted_in", "?")])
        with pytest.raises(SearchError):
            HybridStarSearch(yago_scorer).search(star, 0)

    def test_invalid_d(self, yago_scorer):
        with pytest.raises(SearchError):
            HybridStarSearch(yago_scorer, d=0)


class TestTuning:
    def test_aggregate_depth_positive(self, yago_scorer, yago_graph):
        workload = complex_workload(yago_graph, 2, shape=(4, 4), seed=56)
        depth = aggregate_depth(yago_scorer, workload, alpha=0.5, lam=1.0, k=3)
        assert depth >= 2 * len(workload)

    def test_grid_search_finds_minimum(self, yago_scorer, yago_graph):
        workload = complex_workload(yago_graph, 2, shape=(4, 4), seed=57)
        result = tune_parameters(
            yago_scorer, workload, k=3,
            alphas=[0.2, 0.5, 0.8], lams=[0.5, 1.0],
        )
        assert (result.alpha, result.lam) in result.grid
        assert result.total_depth == min(result.grid.values())
        assert len(result.grid) == 6

    def test_empty_workload_rejected(self, yago_scorer):
        with pytest.raises(SearchError):
            tune_parameters(yago_scorer, [])

    def test_empty_grid_rejected(self, yago_scorer, yago_graph):
        workload = complex_workload(yago_graph, 1, shape=(4, 4), seed=58)
        with pytest.raises(SearchError):
            tune_parameters(yago_scorer, workload, alphas=[])
