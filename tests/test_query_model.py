"""Tests for the query model (Query, StarQuery)."""

import pytest

from repro.errors import QueryError
from repro.query import Query, StarQuery, star_query


def chain_query(n: int) -> Query:
    q = Query()
    for i in range(n):
        q.add_node(f"n{i}")
    for i in range(n - 1):
        q.add_edge(i, i + 1)
    return q


class TestQueryConstruction:
    def test_add_node_and_edge(self):
        q = Query()
        a = q.add_node("Brad", type="actor")
        b = q.add_node("?")
        e = q.add_edge(a, b, "acted_in")
        assert q.num_nodes == 2 and q.num_edges == 1
        assert q.edges[e].label == "acted_in"
        assert q.nodes[a].type == "actor"
        assert q.nodes[b].is_wildcard

    def test_self_loop_rejected(self):
        q = Query()
        a = q.add_node("A")
        with pytest.raises(QueryError):
            q.add_edge(a, a)

    def test_duplicate_edge_rejected(self):
        q = chain_query(2)
        with pytest.raises(QueryError):
            q.add_edge(0, 1, "again")
        with pytest.raises(QueryError):
            q.add_edge(1, 0, "reversed")

    def test_bad_endpoint_rejected(self):
        q = Query()
        q.add_node("A")
        with pytest.raises(QueryError):
            q.add_edge(0, 7)

    def test_edge_other(self):
        q = chain_query(2)
        edge = q.edges[0]
        assert edge.other(0) == 1
        assert edge.other(1) == 0
        with pytest.raises(QueryError):
            edge.other(5)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            Query().validate()

    def test_disconnected_rejected(self):
        q = Query()
        q.add_node("A")
        q.add_node("B")
        q.add_node("C")
        q.add_edge(0, 1)
        with pytest.raises(QueryError):
            q.validate()

    def test_multi_node_no_edges_rejected(self):
        q = Query()
        q.add_node("A")
        q.add_node("B")
        with pytest.raises(QueryError):
            q.validate()

    def test_single_node_valid(self):
        q = Query()
        q.add_node("A")
        q.validate()


class TestStarShape:
    def test_star_detected(self):
        q = Query()
        c = q.add_node("center")
        for i in range(3):
            leaf = q.add_node(f"l{i}")
            q.add_edge(c, leaf)
        assert q.is_star()
        assert q.star_center() == c

    def test_chain_of_three_is_star(self):
        # n0 - n1 - n2: n1 touches both edges.
        q = chain_query(3)
        assert q.is_star()
        assert q.star_center() == 1

    def test_chain_of_four_not_star(self):
        assert not chain_query(4).is_star()

    def test_triangle_not_star(self):
        q = chain_query(3)
        q.add_edge(0, 2)
        assert not q.is_star()

    def test_single_edge_star_center_deterministic(self):
        assert chain_query(2).star_center() == 0


class TestStarQuery:
    def test_from_query(self):
        q = Query()
        c = q.add_node("center")
        l1 = q.add_node("leaf1")
        l2 = q.add_node("leaf2")
        q.add_edge(c, l1, "r1")
        q.add_edge(c, l2, "r2")
        star = StarQuery.from_query(q)
        assert star.pivot.id == c
        assert star.size == 3
        assert star.num_edges == 2
        assert star.node_ids() == [c, l1, l2]

    def test_from_query_explicit_pivot(self):
        q = chain_query(2)
        star = StarQuery.from_query(q, pivot_id=1)
        assert star.pivot.id == 1

    def test_invalid_pivot_rejected(self):
        q = Query()
        c = q.add_node("center")
        l1 = q.add_node("leaf1")
        l2 = q.add_node("leaf2")
        q.add_edge(c, l1)
        q.add_edge(c, l2)
        with pytest.raises(QueryError):
            StarQuery.from_query(q, pivot_id=l1)

    def test_non_star_rejected(self):
        with pytest.raises(QueryError):
            StarQuery.from_query(chain_query(4))

    def test_mismatched_leaf_edge_rejected(self):
        q = Query()
        a = q.add_node("a")
        b = q.add_node("b")
        c = q.add_node("c")
        q.add_edge(a, b)
        q.add_edge(b, c)
        with pytest.raises(QueryError):
            StarQuery(q.nodes[a], [(q.nodes[c], q.edges[1])])


class TestStarQueryHelper:
    def test_star_query_builder(self):
        star = star_query(
            "?",
            [("directed", "?"), ("won", "Academy Award")],
            pivot_type="director",
            leaf_types=["film", "award"],
        )
        assert star.size == 3
        assert star.pivot.type == "director"
        assert star.leaves[0][1].label == "directed"
        assert star.leaves[1][0].label == "Academy Award"
        assert star.leaves[1][0].type == "award"

    def test_descriptor_cached(self):
        star = star_query("Brad", [("acted_in", "?")])
        assert star.pivot.descriptor is star.pivot.descriptor
