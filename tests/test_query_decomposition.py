"""Tests for query decomposition (Section VI-B)."""

import pytest

from repro.errors import DecompositionError
from repro.query import METHODS, Query, decompose
from repro.query.decomposition import NodeStatisticsSampler, _assign_edges


def cycle_query(n: int) -> Query:
    q = Query(name=f"cycle{n}")
    for i in range(n):
        q.add_node(f"n{i}")
    for i in range(n):
        q.add_edge(i, (i + 1) % n)
    return q


def double_star_query() -> Query:
    """Two hubs sharing a bridge node (the Fig. 10 shape)."""
    q = Query(name="double-star")
    a = q.add_node("A")
    u = q.add_node("U")
    b = q.add_node("B")
    a1 = q.add_node("A1")
    b1 = q.add_node("B1")
    q.add_edge(a, u)
    q.add_edge(u, b)
    q.add_edge(a, a1)
    q.add_edge(b, b1)
    return q


class TestInvariants:
    """Every method must produce an edge partition covered by pivots."""

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("builder", [lambda: cycle_query(4),
                                         lambda: cycle_query(5),
                                         double_star_query])
    def test_edge_partition(self, method, builder, yago_scorer):
        query = builder()
        result = decompose(query, method, scorer=yago_scorer)
        covered = []
        for star in result.stars:
            covered.extend(e.id for _leaf, e in star.leaves)
        assert sorted(covered) == [e.id for e in query.edges]

    @pytest.mark.parametrize("method", METHODS)
    def test_stars_are_anchored_at_pivots(self, method, yago_scorer):
        query = double_star_query()
        result = decompose(query, method, scorer=yago_scorer)
        assert len(result.stars) == len(result.pivots)
        for star, pivot in zip(result.stars, result.pivots):
            assert star.pivot.id == pivot

    def test_star_input_passthrough(self, yago_scorer):
        q = Query()
        c = q.add_node("center")
        l1 = q.add_node("leaf")
        q.add_edge(c, l1)
        result = decompose(q, "simsize")
        assert result.num_stars == 1

    def test_single_node_query(self):
        q = Query()
        q.add_node("only")
        result = decompose(q, "rand")
        assert result.num_stars == 1
        assert result.stars[0].num_edges == 0


class TestMethods:
    def test_unknown_method_rejected(self):
        with pytest.raises(DecompositionError):
            decompose(cycle_query(4), "magic")

    def test_scorer_required_for_feature_methods(self):
        for method in ("simtop", "simdec"):
            with pytest.raises(DecompositionError):
                decompose(cycle_query(4), method, scorer=None)

    def test_maxdeg_picks_high_degree_pivot(self, yago_scorer):
        q = Query()
        hub = q.add_node("hub")
        for i in range(4):
            leaf = q.add_node(f"l{i}")
            q.add_edge(hub, leaf)
        tail = q.add_node("tail")
        q.add_edge(1, tail)
        result = decompose(q, "maxdeg")
        assert hub in result.pivots

    def test_minimal_star_count(self, yago_scorer):
        """Optimized methods return the first feasible (minimal) m."""
        query = cycle_query(4)  # needs exactly 2 stars
        for method in ("simsize", "simtop", "simdec"):
            result = decompose(query, method, scorer=yago_scorer)
            assert result.num_stars == 2

    def test_rand_deterministic_per_seed(self, yago_scorer):
        a = decompose(cycle_query(5), "rand", seed=3)
        b = decompose(cycle_query(5), "rand", seed=3)
        assert a.pivots == b.pivots

    def test_simsize_balances(self, yago_scorer):
        """SimSize prefers stars of similar edge counts."""
        query = cycle_query(6)  # 6 edges; balanced = 2 stars of 3 or 3+3
        result = decompose(query, "simsize", scorer=yago_scorer)
        sizes = [star.num_edges for star in result.stars]
        assert max(sizes) - min(sizes) <= 1

    def test_joint_nodes(self, yago_scorer):
        result = decompose(cycle_query(4), "simsize")
        assert len(result.joint_nodes()) >= 1


class TestSampler:
    def test_stats_shape(self, yago_scorer):
        q = Query()
        q.add_node("Brad", type="actor")
        sampler = NodeStatisticsSampler(yago_scorer, sample_size=100, seed=1)
        top1, mean, est = sampler.stats(q.nodes[0])
        assert 0.0 <= mean <= top1 <= 1.0
        assert est >= 1.0

    def test_stats_cached(self, yago_scorer):
        q = Query()
        q.add_node("Brad")
        sampler = NodeStatisticsSampler(yago_scorer, sample_size=50, seed=1)
        assert sampler.stats(q.nodes[0]) is sampler.stats(q.nodes[0])


class TestAssignEdges:
    def test_forced_and_flexible(self):
        query = double_star_query()
        assignment = _assign_edges(query, [0, 2])  # pivots A and B
        assert assignment is not None
        assert len(assignment[0]) == 2 and len(assignment[2]) == 2

    def test_non_cover_returns_none(self):
        query = double_star_query()
        assert _assign_edges(query, [3]) is None  # leaf node covers nothing
