"""Tests for the evaluation harness (datasets, timing, reporting)."""

import os

import pytest

from repro.errors import DatasetError, SearchError
from repro.eval import (
    benchmark_graph,
    benchmark_scorer,
    format_ms,
    make_matcher,
    run_general_workload,
    run_star_workload,
    time_algorithm,
)
from repro.eval.report import render_table
from repro.query import complex_workload, star_workload


class TestDatasets:
    def test_cached_instances(self):
        a = benchmark_graph("yago2", scale=0.2)
        b = benchmark_graph("yago2", scale=0.2)
        assert a is b

    def test_unknown_dataset(self):
        with pytest.raises(DatasetError):
            benchmark_graph("wikidata")

    def test_scorer_cached_per_graph(self):
        g = benchmark_graph("yago2", scale=0.2)
        assert benchmark_scorer(g) is benchmark_scorer(g)
        assert benchmark_scorer(g).config.fast


class TestHarness:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = benchmark_graph("yago2", scale=0.2)
        scorer = benchmark_scorer(graph)
        workload = star_workload(graph, 3, seed=91)
        return graph, scorer, workload

    def test_make_matcher_all_algorithms(self, setup):
        _graph, scorer, workload = setup
        for name in ("stark", "stard", "graphta", "bp", "hybrid"):
            run = make_matcher(name, scorer, d=1)
            matches = run(workload[0], 3)
            assert isinstance(matches, list)

    def test_unknown_algorithm(self, setup):
        _graph, scorer, _w = setup
        with pytest.raises(SearchError):
            make_matcher("quantum", scorer)

    def test_all_matchers_agree_through_harness(self, setup):
        _graph, scorer, workload = setup
        results = {}
        for name in ("stark", "stard", "graphta", "hybrid"):
            run = make_matcher(name, scorer, d=2)
            results[name] = [
                [round(m.score, 8) for m in run(q, 4)] for q in workload
            ]
        assert results["stark"] == results["stard"]
        assert results["stark"] == results["graphta"]
        assert results["stark"] == results["hybrid"]

    def test_time_algorithm_metrics(self, setup):
        _graph, scorer, workload = setup
        result = time_algorithm("stark", scorer, workload, k=3)
        assert len(result.runtimes) == len(workload)
        assert result.avg_ms > 0
        assert result.p50_ms > 0
        assert result.matches_found >= 0

    def test_run_star_workload(self, setup):
        _graph, scorer, workload = setup
        results = run_star_workload(scorer, workload, ("stark",), k=3)
        assert set(results) == {"stark"}

    def test_run_general_workload(self):
        graph = benchmark_graph("yago2", scale=0.3)
        scorer = benchmark_scorer(graph)
        workload = complex_workload(graph, 2, shape=(4, 4), seed=92)
        result = run_general_workload(scorer, workload, k=3)
        assert len(result.runtimes) == 2
        assert len(result.depths) == 2
        assert result.avg_depth >= 0
        assert result.depth_std >= 0


class TestReport:
    def test_format_ms(self):
        assert format_ms(5.0) == "5.0ms"
        assert format_ms(50.0) == "50ms"
        assert format_ms(5000.0) == "5.00s"
        assert format_ms(0.005, is_seconds=True) == "5.0ms"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "long_header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0] == "== T =="
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equally wide

    def test_save_report(self, tmp_path, monkeypatch):
        import repro.eval.report as report

        monkeypatch.setattr(report, "RESULTS_DIR", str(tmp_path))
        path = report.save_report("unit", "hello")
        assert os.path.exists(path)
        report.save_report("unit", "world")
        content = open(path).read()
        assert "hello" in content and "world" in content
