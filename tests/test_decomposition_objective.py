"""Deeper tests for the Eq. 5 machinery inside query decomposition."""

import pytest

from repro.query import Query, decompose
from repro.query.decomposition import (
    DEFAULT_CONNECT_PROBABILITY,
    _assign_edges,
    _eq5_objective,
    _score_decrement,
    NodeStatisticsSampler,
)


def path_query(n):
    q = Query(name=f"path{n}")
    for i in range(n):
        q.add_node(f"n{i}")
    for i in range(n - 1):
        q.add_edge(i, i + 1)
    return q


class TestEq5Objective:
    def test_simsize_prefers_balance(self, yago_scorer):
        """For SimSize the objective is -lambda * spread of star sizes."""
        query = path_query(5)  # 4 edges
        balanced = decompose(query, "simsize", scorer=yago_scorer)
        sizes = sorted(s.num_edges for s in balanced.stars)
        # A 4-edge path decomposes into two stars; balanced = 2 + 2.
        assert sizes == [2, 2]

    def test_lambda_zero_ignores_feature_spread(self, yago_scorer):
        """With lambda=0 SimSize is indifferent; any minimal cover wins."""
        query = path_query(5)
        result = decompose(query, "simsize", scorer=yago_scorer, lam=0.0)
        assert result.num_stars == 2  # minimal m still enforced
        assert result.objective == pytest.approx(0.0)

    def test_objective_value_matches_formula(self, yago_scorer):
        query = path_query(4)
        result = decompose(query, "simsize", scorer=yago_scorer, lam=1.0)
        sizes = [s.num_edges for s in result.stars]
        mean = sum(sizes) / len(sizes)
        expected = -sum(abs(size - mean) for size in sizes)
        assert result.objective == pytest.approx(expected)

    def test_simdec_objective_positive_when_spread_exists(self, yago_scorer):
        query = path_query(4)
        result = decompose(query, "simdec", scorer=yago_scorer, lam=0.0)
        # delta terms are non-negative by construction.
        assert result.objective >= 0.0


class TestScoreDecrement:
    def test_smaller_match_lists_mean_larger_decrement(self, yago_scorer):
        """delta ~ spread / n_i: fewer expected matches -> faster decay."""
        from repro.query import star_query

        sampler = NodeStatisticsSampler(yago_scorer, sample_size=150, seed=5)
        star = star_query("?", [("?", "?")], pivot_type="person")
        small_p = _score_decrement(star, sampler, connect_probability=1e-6)
        large_p = _score_decrement(star, sampler, connect_probability=1.0)
        assert small_p >= large_p

    def test_default_probability_is_papers(self):
        assert DEFAULT_CONNECT_PROBABILITY == pytest.approx(4.5e-4)


class TestAssignEdges:
    def test_all_pivots_cover(self):
        query = path_query(4)
        assignment = _assign_edges(query, [1, 2])
        assert assignment is not None
        assert sorted(e.id for edges in assignment.values() for e in edges) \
            == [0, 1, 2]

    def test_pivot_without_edges_dropped(self):
        query = path_query(3)  # edges (0,1), (1,2); node 1 covers both
        assignment = _assign_edges(query, [1, 0])
        assert assignment is not None
        # Forced: none; flexible edge (0,1) balances; but node 0 may end
        # up empty if balancing assigns everything to 1 -- then it is
        # dropped from the mapping.
        for pivot, edges in assignment.items():
            assert edges, f"pivot {pivot} kept with no edges"

    def test_flexible_edges_balance(self):
        # A triangle with all three nodes as pivots: 3 flexible edges
        # spread one per pivot.
        q = Query()
        for i in range(3):
            q.add_node(f"n{i}")
        q.add_edge(0, 1)
        q.add_edge(1, 2)
        q.add_edge(0, 2)
        assignment = _assign_edges(q, [0, 1, 2])
        sizes = sorted(len(edges) for edges in assignment.values())
        assert sizes == [1, 1, 1]


class TestDecompositionDeterminism:
    @pytest.mark.parametrize("method", ["simsize", "simtop", "simdec"])
    def test_same_inputs_same_decomposition(self, yago_scorer, method):
        query = path_query(5)
        a = decompose(query, method, scorer=yago_scorer, seed=3)
        b = decompose(query, method, scorer=yago_scorer, seed=3)
        assert a.pivots == b.pivots
        assert a.objective == pytest.approx(b.objective)
