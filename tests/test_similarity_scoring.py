"""Tests for Eq. 1/Eq. 2 aggregation, thresholds, path scores, learning."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ScoringError
from repro.similarity import (
    Descriptor,
    PathScore,
    ScoringConfig,
    ScoringFunction,
    evaluate_weights,
    learn_weights,
)
from repro.similarity.learning import (
    build_training_set,
    coefficients_to_weights,
    featurize,
    fit_logistic,
)


class TestScoringConfig:
    def test_defaults_validate(self):
        ScoringConfig().validate()

    def test_unknown_measure_rejected(self):
        with pytest.raises(ScoringError):
            ScoringConfig(node_weights={"not_a_measure": 1.0}).validate()

    def test_negative_weight_rejected(self):
        with pytest.raises(ScoringError):
            ScoringConfig(node_weights={"exact_name": -1.0}).validate()

    def test_bad_threshold_rejected(self):
        with pytest.raises(ScoringError):
            ScoringConfig(node_threshold=1.5).validate()

    def test_bad_lambda_rejected(self):
        with pytest.raises(ScoringError):
            ScoringConfig(path_lambda=1.0).validate()

    def test_with_fast(self):
        assert ScoringConfig().with_fast().fast is True


class TestNodeScore:
    def test_exact_match_scores_high(self, movie_scorer):
        q = Descriptor("Brad Pitt", "actor")
        brad = movie_scorer.node_score(q, 0)
        others = [movie_scorer.node_score(q, v) for v in range(1, 10)]
        assert brad > max(others)
        assert brad > 0.6

    def test_partial_name_still_matches(self, movie_scorer):
        q = Descriptor("Brad")
        assert movie_scorer.node_score(q, 0) > movie_scorer.config.node_threshold

    def test_range(self, movie_scorer, movie_graph):
        q = Descriptor("Academy Award")
        for v in movie_graph.nodes():
            assert 0.0 <= movie_scorer.node_score(q, v) <= 1.0

    def test_memoized(self, movie_graph):
        scorer = ScoringFunction(movie_graph)
        q = Descriptor("Brad")
        scorer.node_score(q, 0)
        calls = scorer.node_score_calls
        scorer.node_score(q, 0)
        assert scorer.node_score_calls == calls

    def test_wildcard_flat_with_popularity(self, movie_scorer, movie_graph):
        q = Descriptor("?")
        scores = [movie_scorer.node_score(q, v) for v in movie_graph.nodes()]
        assert all(0.4 - 1e-9 <= s <= 0.6 + 1e-9 for s in scores)
        brad = movie_scorer.node_score(q, 0)  # highest degree
        venice = movie_scorer.node_score(q, 9)  # degree 1
        assert brad > venice

    def test_typed_wildcard_prefers_type(self, movie_scorer):
        q = Descriptor("?", "director")
        richard = movie_scorer.node_score(q, 2)
        troy = movie_scorer.node_score(q, 4)  # a film
        assert richard > troy

    def test_synonym_transformation(self, movie_graph):
        g = movie_graph
        scorer = ScoringFunction(g)
        # "filmmaker" should reach directors via the synonym table
        # ("producer"/"filmmaker", "director"/"filmmaker" groups).
        q = Descriptor("filmmaker")
        assert scorer.node_score(q, 2) > 0.0


class TestRelationScore:
    def test_exact_relation(self, movie_scorer):
        q = Descriptor("acted_in")
        assert movie_scorer.relation_score(q, "acted_in") > 0.7

    def test_synonym_relation(self, movie_scorer):
        q = Descriptor("starred_in")
        syn = movie_scorer.relation_score(q, "acted_in")
        other = movie_scorer.relation_score(q, "born_in")
        assert syn > other

    def test_wildcard_relation_uniform(self, movie_scorer):
        q = Descriptor("?")
        a = movie_scorer.relation_score(q, "acted_in")
        b = movie_scorer.relation_score(q, "born_in")
        assert a == b > 0.0


class TestPathScore:
    def test_decay_values(self):
        ps = PathScore(0.5)
        assert ps.decay(1) == 1.0
        assert ps.decay(2) == 0.5
        assert ps.decay(3) == 0.25

    def test_monotone(self):
        assert PathScore(0.7).is_monotone()

    def test_extends_on_demand(self):
        ps = PathScore(0.5, max_hops=2)
        assert ps.decay(6) == pytest.approx(0.5 ** 5)

    def test_invalid_lambda(self):
        with pytest.raises(ScoringError):
            PathScore(1.0)
        with pytest.raises(ScoringError):
            PathScore(0.0)

    def test_invalid_hops(self):
        with pytest.raises(ScoringError):
            PathScore(0.5).decay(0)

    def test_edge_score_modes(self, movie_scorer):
        q = Descriptor("acted_in")
        rel = movie_scorer.relation_score(q, "acted_in")
        assert movie_scorer.edge_score(q, rel, 1) == rel
        assert movie_scorer.edge_score(q, rel, 2) == 0.5
        assert movie_scorer.edge_upper_bound(1) == 1.0
        assert movie_scorer.edge_upper_bound(3) == 0.25


class TestFastMode:
    def test_fast_mode_cheaper_but_sane(self, movie_graph):
        fast = ScoringFunction(movie_graph, ScoringConfig(fast=True))
        q = Descriptor("Brad Pitt", "actor")
        top = max(movie_graph.nodes(), key=lambda v: fast.node_score(q, v))
        assert movie_graph.node(top).name == "Brad Pitt"


class TestLearning:
    def test_learned_weights_usable_and_accurate(self, yago_graph):
        weights = learn_weights(yago_graph, num_pairs=200, seed=11)
        ScoringConfig(node_weights=weights).validate()
        accuracy = evaluate_weights(yago_graph, weights, num_pairs=100)
        assert accuracy >= 0.8

    def test_training_set_balanced(self, yago_graph):
        examples = build_training_set(yago_graph, num_pairs=100, seed=2)
        labels = [e.label for e in examples]
        assert labels.count(1) == labels.count(0) == 50

    def test_featurize_shape(self, yago_graph):
        from repro.similarity import CorpusContext

        examples = build_training_set(yago_graph, num_pairs=20, seed=2)
        X, y = featurize(examples, CorpusContext.from_graph(yago_graph))
        assert X.shape == (20, 42)
        assert set(y) <= {0.0, 1.0}
        assert float(X.min()) >= 0.0 and float(X.max()) <= 1.0 + 1e-9

    def test_degenerate_fit_falls_back_to_uniform(self):
        import numpy as np

        weights = coefficients_to_weights(np.full(42, -1.0))
        assert all(w == 1.0 for w in weights.values())

    def test_fit_logistic_separable(self):
        import numpy as np

        rng = np.random.default_rng(0)
        X = rng.random((200, 42))
        y = (X[:, 0] > 0.5).astype(float)
        w = fit_logistic(X, y)
        assert w[0] > 0.5  # the informative feature dominates
