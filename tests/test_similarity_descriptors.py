"""Tests for Descriptor feature extraction and corpus statistics."""

import pytest

from repro.similarity import CorpusContext, Descriptor, DescriptorCache


class TestDescriptorFeatures:
    def test_tokenization(self):
        d = Descriptor("Brad Pitt", "actor", ("drama", "war film"))
        assert d.name_tokens == ("brad", "pitt")
        assert d.keyword_tokens == {"drama", "war", "film"}
        assert d.type_tokens == {"actor"}
        assert d.token_set == {"brad", "pitt", "drama", "war", "film"}

    def test_wildcard_detection(self):
        assert Descriptor("?").is_wildcard
        assert Descriptor("  ").is_wildcard
        assert Descriptor("").is_wildcard
        assert not Descriptor("Brad").is_wildcard

    def test_ngram_features(self):
        d = Descriptor("ab")
        assert "^a" in d.bigrams
        assert "^ab" in d.trigrams

    def test_phonetic_and_initials(self):
        d = Descriptor("Jeffrey Jacob Abrams")
        assert d.initials == "jja"
        assert d.soundex_first == "J160"
        assert d.phonetic  # non-empty key

    def test_numbers_extracted(self):
        d = Descriptor("Blade Runner 2049")
        assert d.numbers == (2049.0,)
        assert Descriptor("no digits").numbers == ()

    def test_degree_carried(self):
        assert Descriptor("x", degree=7).degree == 7

    def test_from_node_data(self, movie_graph):
        data = movie_graph.node(0)
        d = Descriptor.from_node_data(data, degree=movie_graph.degree(0))
        assert d.name == "Brad Pitt"
        assert d.type == "actor"
        assert d.degree == movie_graph.degree(0)

    def test_repr(self):
        assert "Brad" in repr(Descriptor("Brad", "actor"))


class TestCorpusContext:
    def test_idf_orders_by_rarity(self, movie_graph):
        ctx = CorpusContext.from_graph(movie_graph)
        # "pitt" appears on one node, "award" on several.
        assert ctx.idf_of("pitt") > ctx.idf_of("award")

    def test_unknown_token_is_maximally_rare(self, movie_graph):
        ctx = CorpusContext.from_graph(movie_graph)
        assert ctx.idf_of("zzz-not-a-token") == 1.0

    def test_idf_range(self, movie_graph):
        ctx = CorpusContext.from_graph(movie_graph)
        for token in movie_graph.vocabulary():
            assert 0.0 < ctx.idf_of(token) <= 1.0

    def test_empty_context(self):
        ctx = CorpusContext.empty()
        assert ctx.idf_of("anything") == 1.0
        assert ctx.log_max_degree > 0


class TestDescriptorCache:
    def test_cache_returns_same_object(self, movie_graph):
        cache = DescriptorCache(movie_graph)
        assert cache.get(0) is cache.get(0)

    def test_cache_reflects_node_data(self, movie_graph):
        cache = DescriptorCache(movie_graph)
        d = cache.get(0)
        assert d.name == movie_graph.node(0).name
        assert d.degree == movie_graph.degree(0)

    def test_owns_corpus(self, movie_graph):
        cache = DescriptorCache(movie_graph)
        assert cache.corpus.idf_of("pitt") > 0.0
