"""EngineStats schema unification + obs integration with cache/batch/harness.

The bugfix satellite: before this PR ``framework.last_stats`` exposed a
different dict shape per algorithm.  Now every engine reports the exact
:data:`repro.obs.STAT_KEYS` schema, obs cache counters mirror
``CandidateCache.stats`` exactly, and batch/harness runs surface merged
metric snapshots.
"""

import pytest

from repro import STAT_KEYS, EngineStats, Star, obs, search_many, star_query
from repro.eval.harness import time_algorithm
from repro.perf.cache import attach_cache
from repro.perf.parallel import fork_available
from repro.query import Query
from repro.similarity import ScoringFunction

from tests.conftest import build_random_graph


@pytest.fixture()
def scorer():
    return ScoringFunction(build_random_graph(11))


def _star():
    return star_query(
        "Brad", [("acted_in", "?"), ("won", "?")], pivot_type="actor"
    )


def _star_as_query():
    """The same star shape as :func:`_star`, as a general Query (the
    harness converts general queries itself)."""
    query = Query(name="star")
    a = query.add_node("Brad", type="actor")
    b = query.add_node("?")
    c = query.add_node("?")
    query.add_edge(a, b, "acted_in")
    query.add_edge(a, c, "won")
    return query


def _triangle():
    query = Query(name="tri")
    a = query.add_node("Brad", type="actor")
    b = query.add_node("?", type="film")
    c = query.add_node("?")
    query.add_edge(a, b, "acted_in")
    query.add_edge(b, c, "?")
    query.add_edge(a, c, "?")
    return query


class TestUnifiedSchema:
    """Regression: every algorithm exposes the same last_stats keys."""

    def test_all_algorithms_expose_same_keys(self, scorer):
        shapes = {}
        for label, engine, query in [
            ("stark", Star(scorer.graph, scorer=scorer, d=1), _star()),
            ("stard", Star(scorer.graph, scorer=scorer, d=2), _star()),
            ("starjoin", Star(scorer.graph, scorer=scorer), _triangle()),
        ]:
            engine.search(query, 3)
            shapes[label] = tuple(engine.last_stats)
            assert engine.last_engine_stats.algorithm == label
        assert shapes["stark"] == shapes["stard"] == shapes["starjoin"]
        assert shapes["stark"] == STAT_KEYS

    def test_last_stats_none_before_first_search(self, scorer):
        engine = Star(scorer.graph, scorer=scorer)
        assert engine.last_stats is None
        assert engine.last_engine_stats is None

    def test_stats_values_numeric_and_meaningful(self, scorer):
        engine = Star(scorer.graph, scorer=scorer, d=1)
        matches = engine.search(_star(), 3)
        stats = engine.last_stats
        assert all(isinstance(v, int) for v in stats.values())
        assert stats["matches_emitted"] >= len(matches)
        assert stats["pivots_considered"] >= stats["pivots_with_match"]

    def test_stard_populates_propagation_counters(self, scorer):
        engine = Star(scorer.graph, scorer=scorer, d=2)
        engine.search(_star(), 3)
        assert engine.last_stats["messages_propagated"] > 0

    def test_starjoin_populates_join_counters(self, scorer):
        engine = Star(scorer.graph, scorer=scorer)
        matches = engine.search(_triangle(), 3)
        if matches:
            assert engine.last_stats["joins_attempted"] > 0


class TestEngineStatsType:
    def test_as_dict_fixed_order_numeric_only(self):
        stats = EngineStats(algorithm="stark", cache_hits=2)
        out = stats.as_dict()
        assert tuple(out) == STAT_KEYS
        assert "algorithm" not in out
        assert out["cache_hits"] == 2

    def test_roundtrip_and_merge(self):
        a = EngineStats.from_dict(
            {"pivots_evaluated": 2, "cache_hits": 1}, algorithm="stark"
        )
        b = EngineStats(pivots_evaluated=3, matches_emitted=4)
        merged = a.merge(b)
        assert merged is a
        assert a.pivots_evaluated == 5
        assert a.matches_emitted == 4
        assert a.algorithm == "stark"

    def test_from_dict_ignores_unknown_keys(self):
        stats = EngineStats.from_dict({"cache_hits": 1, "bogus": 9})
        assert stats.cache_hits == 1

    def test_summary_names_algorithm(self):
        assert EngineStats(algorithm="stard").summary().startswith("stard:")
        assert "pivots_evaluated=2" in EngineStats(
            pivots_evaluated=2
        ).summary()


class TestCacheCounterParity:
    """Satellite: obs cache counters == CandidateCache.stats exactly."""

    def test_obs_counters_equal_cache_stats(self, scorer):
        cache = attach_cache(scorer)
        engine = Star(scorer.graph, scorer=scorer, d=1)
        queries = [_star(), _star(), _star()]
        with obs.capture() as tracer:
            for query in queries:
                engine.search(query, 3)
        counters = tracer.registry.as_dict()["counters"]
        assert counters.get("cache.hits", 0) == cache.stats.hits
        assert counters.get("cache.misses", 0) == cache.stats.misses
        assert counters.get("cache.inserts", 0) == cache.stats.inserts
        assert counters.get("cache.evictions", 0) == cache.stats.evictions
        assert cache.stats.hits > 0  # repeated queries must actually hit

    def test_framework_stats_carry_per_search_cache_delta(self, scorer):
        attach_cache(scorer)
        engine = Star(scorer.graph, scorer=scorer, d=1)
        engine.search(_star(), 3)
        first = dict(engine.last_stats)
        engine.search(_star(), 3)
        second = engine.last_stats
        assert first["cache_misses"] > 0 and first["cache_hits"] == 0
        assert second["cache_hits"] > 0 and second["cache_misses"] == 0


class TestBatchMetrics:
    def _queries(self):
        return [_star() for _ in range(4)]

    def test_serial_batch_metrics_snapshot(self, scorer):
        with obs.capture():
            result = search_many(
                scorer.graph, self._queries(), 3, workers=1, cache=True
            )
        assert result.metrics is not None
        counters = result.metrics["counters"]
        assert counters["cache.hits"] == result.cache_stats.hits
        assert counters["cache.misses"] == result.cache_stats.misses

    def test_batch_metrics_none_when_disabled(self, scorer):
        result = search_many(scorer.graph, self._queries(), 3, workers=1)
        assert result.metrics is None

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_fork_batch_merges_worker_metrics(self, scorer):
        with obs.capture() as tracer:
            result = search_many(
                scorer.graph, self._queries(), 3, workers=2,
                backend="fork", cache=True,
            )
        counters = result.metrics["counters"]
        # Merged worker counters mirror the merged cache stats exactly.
        assert counters["cache.hits"] == result.cache_stats.hits
        assert counters["cache.misses"] == result.cache_stats.misses
        # ... and were folded back into the caller's live registry.
        live = tracer.registry.as_dict()["counters"]
        assert live["cache.misses"] == counters["cache.misses"]

    def test_thread_batch_metrics_snapshot(self, scorer):
        with obs.capture():
            result = search_many(
                scorer.graph, self._queries(), 3, workers=2,
                backend="thread", cache=True,
            )
        assert result.metrics is not None
        assert result.metrics["counters"]["cache.misses"] > 0

    def test_backend_parity_of_merged_counters(self, scorer):
        """Fork/serial merged cache counters agree (deterministic work)."""
        snapshots = {}
        backends = ["serial"] + (["fork"] if fork_available() else [])
        for backend in backends:
            with obs.capture():
                result = search_many(
                    scorer.graph, self._queries(), 3,
                    workers=1 if backend == "serial" else 2,
                    backend=backend, cache=True,
                )
            snapshots[backend] = result.metrics["counters"].get(
                "cache.inserts", 0
            )
        if "fork" in snapshots:
            # Two workers each miss-and-fill their own cache; per-worker
            # inserts can only exceed the single shared-cache run.
            assert snapshots["fork"] >= snapshots["serial"]


class TestHarnessMetrics:
    def test_serial_harness_attaches_metrics(self, scorer):
        with obs.capture():
            result = time_algorithm(
                "stark", scorer, [_star_as_query()] * 3, k=3
            )
        assert result.metrics is not None
        hists = result.metrics["histograms"]
        assert hists["span.stark.search.ms"]["count"] == 3

    def test_harness_metrics_none_when_disabled(self, scorer):
        result = time_algorithm("stark", scorer, [_star_as_query()] * 2, k=3)
        assert result.metrics is None

    @pytest.mark.skipif(not fork_available(), reason="needs fork")
    def test_fork_harness_merges_worker_metrics(self, scorer):
        with obs.capture():
            result = time_algorithm(
                "stark", scorer, [_star_as_query()] * 4, k=3, workers=2
            )
        assert result.metrics is not None
        assert result.metrics["histograms"]["span.stark.search.ms"][
            "count"
        ] == 4
