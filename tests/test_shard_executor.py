"""Tests for the sharded execution engine (workers, merge, recovery).

Covers the fork backend end to end: scoped workers over shared-memory
index columns, chunked pulls with bound-based stream termination,
duplicate suppression for overlapping scopes, crash recovery via the
inline fallback + respawn, and shared-memory hygiene after both clean
shutdown and forced worker death.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import obs
from repro.core.framework import Star
from repro.errors import SearchError
from repro.perf import fork_available
from repro.query import star_workload
from repro.query.model import Query
from repro.runtime.budget import Budget
from repro.shard import ShardedEngine
from repro.shard.executor import _SerialTransport, _WorkerCrash
from repro.shard.partition import GraphPartition
from repro.similarity import ScoringFunction

from tests.conftest import build_movie_graph, build_random_graph
from tests.oracle import assert_same_results

SHM_DIR = Path("/dev/shm")

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable"
)


def stale_segments():
    if not SHM_DIR.is_dir():
        return []
    return sorted(p.name for p in SHM_DIR.glob("reproshm*"))


def star_queries(graph, n=4, seed=31):
    return star_workload(graph, n, seed=seed)


def wildcard_star():
    """actor -[acted_in]- film, all wildcards: several movie-graph
    matches, so chunking/dedup paths are guaranteed to see traffic."""
    query = Query()
    pivot = query.add_node("?", "actor")
    leaf = query.add_node("?", "film")
    query.add_edge(pivot, leaf, "acted_in")
    return query


def assert_tie_equivalent(got, baseline, query, k):
    """Rank-by-rank score equality with *baseline*, assignments valid.

    The merger's canonical ``(-score, key)`` tie order can differ from
    the single-process engine's arrival order, so equal-score ranks may
    hold different (equally correct) assignments.
    """
    topk = baseline.search(query, k)
    full = baseline.search(query, 500)
    assert ([round(m.score, 9) for m in got]
            == [round(m.score, 9) for m in topk])
    valid = {(m.key(), round(m.score, 9)) for m in full}
    for m in got:
        assert (m.key(), round(m.score, 9)) in valid
    keys = [m.key() for m in got]
    assert len(keys) == len(set(keys))


class TestSerialBackend:
    def test_parity_with_star(self):
        graph = build_random_graph(1)
        scorer = ScoringFunction(graph)
        baseline = Star(graph, scorer=scorer)
        with ShardedEngine(graph, scorer=scorer, shards=3,
                           backend="serial") as engine:
            assert engine.backend == "serial"
            for query in star_queries(graph):
                assert_same_results(engine.search(query, 5),
                                    baseline.search(query, 5))

    def test_small_chunks_terminate_on_bound(self):
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        baseline = Star(graph, scorer=scorer)
        query = wildcard_star()  # several matches: chunking is exercised
        with ShardedEngine(graph, scorer=scorer, shards=2,
                           backend="serial", chunk_size=1) as engine:
            got = engine.search(query, 2)
            assert len(got) == 2
            assert_tie_equivalent(got, baseline, query, 2)
            stats = engine.last_shard_stats
            # chunk_size=1 forces repeated "more" round trips.
            assert stats["chunks"] > stats["shards"]
            assert sum(stats["matches_pulled"]) >= 2

    def test_overlapping_scopes_are_deduplicated(self):
        """With fully overlapping shard scopes every match arrives once
        per shard; the merger must suppress the duplicates exactly."""
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        baseline = Star(graph, scorer=scorer)
        query = wildcard_star()
        with ShardedEngine(graph, scorer=scorer, shards=2,
                           backend="serial") as engine:
            everything = frozenset(graph.nodes())
            engine._partition = GraphPartition(
                2, "hash", 1, graph.uid, graph.version,
                (everything, everything), (everything, everything),
                0, graph.num_nodes,
            )
            engine._local_matchers = {}
            got = engine.search(query, 5)
            assert len(got) > 0
            assert_tie_equivalent(got, baseline, query, 5)
            assert engine.last_shard_stats["dedup_hits"] > 0

    def test_fallback_for_general_and_budgeted_queries(self):
        graph = build_movie_graph()
        scorer = ScoringFunction(graph)
        baseline = Star(graph, scorer=scorer)
        # A cycle is genuinely non-star (a 2-edge path would still be a
        # star centered on its middle node and run sharded).
        cycle = Query()
        a = cycle.add_node("Brad Pitt", "actor")
        b = cycle.add_node("?", "film")
        c = cycle.add_node("Angelina", "actor")
        cycle.add_edge(a, b, "acted_in")
        cycle.add_edge(c, b, "acted_in")
        cycle.add_edge(a, c, "married_to")
        star = star_queries(graph, n=1)[0]
        with ShardedEngine(graph, scorer=scorer, shards=2,
                           backend="serial") as engine:
            with obs.capture() as tracer:
                assert_same_results(engine.search(cycle, 3),
                                    baseline.search(cycle, 3))
                budgeted = engine.search(star, 3,
                                         budget=Budget(max_nodes=10**6))
                assert_same_results(budgeted, baseline.search(star, 3))
            counters = tracer.registry.as_dict()["counters"]
            assert counters["shard.fallback_queries"] == 2
            assert engine.last_report is not None

    def test_validation_and_closed_engine(self):
        graph = build_movie_graph()
        with pytest.raises(SearchError):
            ShardedEngine(graph, shards=0)
        with pytest.raises(SearchError):
            ShardedEngine(graph, backend="threads")
        with pytest.raises(SearchError):
            ShardedEngine(graph, chunk_size=0)
        engine = ShardedEngine(graph, shards=2, backend="serial")
        star = star_queries(graph, n=1)[0]
        with pytest.raises(SearchError):
            engine.search(star, 0)
        engine.close()
        with pytest.raises(SearchError, match="closed"):
            engine.search(star, 3)

    def test_mid_stream_crash_restarts_inline(self):
        """A worker dying on a "more" request must restart that shard's
        stream inline and still return the exact top-k."""
        graph = build_random_graph(5)
        scorer = ScoringFunction(graph)
        baseline = Star(graph, scorer=scorer)

        class FlakyTransport(_SerialTransport):
            tripped = False

            def request(self, state, msg):
                if msg[0] == "more" and not FlakyTransport.tripped:
                    FlakyTransport.tripped = True
                    raise _WorkerCrash(state.shard_id)
                super().request(state, msg)

        import repro.shard.executor as executor

        with ShardedEngine(graph, scorer=scorer, shards=2,
                           backend="serial", chunk_size=1) as engine:
            original = executor._SerialTransport
            executor._SerialTransport = FlakyTransport
            try:
                query = star_queries(graph, n=1)[0]
                got = engine.search(query, 4)
            finally:
                executor._SerialTransport = original
            assert FlakyTransport.tripped
            assert_same_results(got, baseline.search(query, 4))
            stats = engine.last_shard_stats
            assert stats["worker_crashes"] == 1
            assert stats["inline_fallbacks"] == 1


@needs_fork
class TestForkBackend:
    def test_parity_with_star(self):
        graph = build_random_graph(4)
        scorer = ScoringFunction(graph)
        baseline = Star(graph, scorer=scorer)
        with ShardedEngine(graph, scorer=scorer, shards=3,
                           backend="fork") as engine:
            assert engine.backend == "fork"
            for query in star_queries(graph):
                assert_same_results(engine.search(query, 5),
                                    baseline.search(query, 5))

    def test_parity_with_index_and_candidate_limit(self):
        graph = build_random_graph(6, num_nodes=40, num_edges=90)
        baseline = Star(graph, candidate_limit=8, use_index="on")
        with ShardedEngine(graph, shards=3, backend="fork",
                           candidate_limit=8, use_index="on") as engine:
            assert engine._columns is not None  # index went to shm
            for query in star_queries(graph, n=3):
                assert_same_results(engine.search(query, 5),
                                    baseline.search(query, 5))

    def test_stard_parity(self):
        graph = build_random_graph(7)
        scorer = ScoringFunction(graph)
        baseline = Star(graph, scorer=scorer, d=2)
        with ShardedEngine(graph, scorer=scorer, shards=2,
                           backend="fork", d=2) as engine:
            for query in star_queries(graph, n=2):
                assert_tie_equivalent(engine.search(query, 4),
                                      baseline, query, 4)

    def test_crash_recovery_and_respawn(self):
        graph = build_random_graph(8)
        scorer = ScoringFunction(graph)
        baseline = Star(graph, scorer=scorer)
        queries = star_queries(graph, n=2)
        with ShardedEngine(graph, scorer=scorer, shards=2,
                           backend="fork") as engine:
            engine.search(queries[0], 5)  # workers warm
            victim = engine._pool._workers[0]
            victim.conn.send(("crash", 11))
            victim.process.join(timeout=10.0)
            assert not victim.process.is_alive()
            with obs.capture() as tracer:
                got = engine.search(queries[1], 5)
            assert_same_results(got, baseline.search(queries[1], 5))
            stats = engine.last_shard_stats
            assert stats["worker_crashes"] >= 1
            assert stats["inline_fallbacks"] >= 1
            counters = tracer.registry.as_dict()["counters"]
            assert counters["shard.worker_crashes"] >= 1
            assert engine._pool.crashes >= 1
            # The respawned worker serves the next query normally.
            assert_same_results(engine.search(queries[0], 5),
                                baseline.search(queries[0], 5))
            assert engine.last_shard_stats["worker_crashes"] == 0

    def test_counters_and_gauges_emitted(self):
        graph = build_random_graph(9)
        with ShardedEngine(graph, shards=2, backend="fork") as engine:
            query = star_queries(graph, n=1)[0]
            with obs.capture() as tracer:
                engine.search(query, 5)
            snap = tracer.registry.as_dict()
            assert snap["counters"]["shard.searches"] == 1
            assert snap["counters"]["shard.streams_opened"] == 2
            assert snap["counters"]["shard.matches_pulled"] >= 0
            assert snap["gauges"]["shard.count"] == 2
            assert snap["gauges"]["shard.replication_factor"] >= 1.0


@needs_fork
@pytest.mark.skipif(not SHM_DIR.is_dir(),
                    reason="no /dev/shm on this platform")
class TestShmHygiene:
    def test_no_segment_leak_on_close(self):
        before = stale_segments()
        graph = build_random_graph(10)
        engine = ShardedEngine(graph, shards=2, backend="fork",
                               use_index="on")
        assert len(stale_segments()) == len(before) + 1
        engine.search(star_queries(graph, n=1)[0], 3)
        engine.close()
        assert stale_segments() == before
        engine.close()  # idempotent

    def test_no_segment_leak_after_worker_crash(self):
        """Forced worker death must not leave a stale segment behind:
        the parent owns the unlink and the crash path preserves it."""
        before = stale_segments()
        graph = build_random_graph(11)
        engine = ShardedEngine(graph, shards=2, backend="fork",
                               use_index="on")
        query = star_queries(graph, n=1)[0]
        engine.search(query, 3)
        victim = engine._pool._workers[1]
        victim.conn.send(("crash", 9))
        victim.process.join(timeout=10.0)
        assert not victim.process.is_alive()
        engine.search(query, 3)  # recovers inline, respawns
        assert engine._pool.crashes >= 1
        engine.close()
        assert stale_segments() == before

    def test_no_segment_leak_when_engine_dropped(self):
        import gc

        before = stale_segments()
        graph = build_random_graph(12)
        engine = ShardedEngine(graph, shards=2, backend="fork",
                               use_index="on")
        del engine
        gc.collect()
        assert stale_segments() == before
