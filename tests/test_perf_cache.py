"""Cross-query candidate cache + supporting graph/similarity fast paths.

Covers the ``repro.perf.cache`` LRU (stats, keying, eviction, byte
accounting), its integration with ``node_candidates``/``shortlist``
(exact parity, version/fingerprint invalidation, budget bypass), the
precomputed subtype-closure index, the immutable ``nodes_of_type`` view,
incremental ``relations()``, and tokenization memoization.
"""

from __future__ import annotations

import pytest

from repro.core.candidates import node_candidates, shortlist
from repro.graph import KnowledgeGraph
from repro.perf import CandidateCache, attach_cache, detach_cache
from repro.perf.cache import CacheStats
from repro.query.model import QueryNode
from repro.runtime.budget import Budget
from repro.similarity import ScoringConfig, ScoringFunction, ontology
from repro.textutil import tokenize, tokenize_tuple

from .conftest import build_movie_graph


def fresh_scorer(config: ScoringConfig = None) -> ScoringFunction:
    return ScoringFunction(build_movie_graph(), config or ScoringConfig())


def qnode(label: str, type: str = "", keywords=()) -> QueryNode:
    return QueryNode(0, label, type, tuple(keywords))


# ----------------------------------------------------------------------
# CacheStats


def test_cache_stats_hit_rate_and_roundtrip():
    stats = CacheStats(hits=3, misses=1, evictions=2, inserts=4,
                       entries=2, bytes=128)
    assert stats.hit_rate == 0.75
    assert CacheStats().hit_rate == 0.0
    assert CacheStats.from_dict(stats.as_dict()) == stats
    assert "75%" in stats.summary()


def test_cache_stats_merge_accumulates():
    a = CacheStats(hits=1, misses=2, inserts=1, entries=1, bytes=10)
    b = CacheStats(hits=4, misses=1, evictions=3, inserts=5, entries=2,
                   bytes=30)
    merged = a.merge(b)
    assert merged is a
    assert (a.hits, a.misses, a.evictions) == (5, 3, 3)
    assert (a.inserts, a.entries, a.bytes) == (6, 3, 40)


# ----------------------------------------------------------------------
# LRU mechanics


def test_lru_get_put_and_counters():
    cache = CandidateCache()
    assert cache.get(("k", 1)) is None
    assert cache.stats.misses == 1
    cache.put(("k", 1), ((0, 1.0),))
    assert ("k", 1) in cache
    assert len(cache) == 1
    assert cache.get(("k", 1)) == ((0, 1.0),)
    assert cache.stats.hits == 1
    assert cache.stats.inserts == 1
    assert cache.stats.bytes > 0


def test_lru_eviction_order_and_recency():
    cache = CandidateCache(max_entries=2)
    cache.put(("a",), ())
    cache.put(("b",), ())
    cache.get(("a",))           # refresh 'a' -> 'b' is now LRU
    cache.put(("c",), ())
    assert ("a",) in cache and ("c",) in cache
    assert ("b",) not in cache
    assert cache.stats.evictions == 1
    assert cache.stats.entries == 2


def test_lru_byte_bound_evicts():
    one_entry = CandidateCache._payload_bytes(((0, 0.0),) * 10)
    cache = CandidateCache(max_bytes=int(one_entry * 2.5))
    for i in range(4):
        cache.put((i,), ((0, 0.0),) * 10)
    assert cache.stats.evictions >= 1
    assert cache.stats.bytes <= cache.max_bytes


def test_lru_replace_updates_accounting():
    cache = CandidateCache()
    cache.put(("k",), ((0, 0.0),) * 8)
    before = cache.stats.bytes
    cache.put(("k",), ((0, 0.0),))
    assert len(cache) == 1
    assert cache.stats.entries == 1
    assert cache.stats.bytes < before


def test_clear_keeps_cumulative_counters():
    cache = CandidateCache()
    cache.put(("k",), ())
    cache.get(("k",))
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.entries == 0 and cache.stats.bytes == 0
    assert cache.stats.hits == 1 and cache.stats.inserts == 1


# ----------------------------------------------------------------------
# Attachment and integration with node_candidates / shortlist


def test_scorer_has_no_cache_by_default():
    assert fresh_scorer().candidate_cache is None


def test_attach_detach_roundtrip():
    scorer = fresh_scorer()
    cache = attach_cache(scorer, max_entries=7)
    assert scorer.candidate_cache is cache
    assert cache.max_entries == 7
    assert detach_cache(scorer) is cache
    assert scorer.candidate_cache is None
    # Attaching an existing instance reuses it.
    assert attach_cache(scorer, cache) is cache


def test_node_candidates_warm_equals_cold():
    scorer = fresh_scorer()
    node = qnode("Brad", "actor")
    cold = node_candidates(scorer, node)
    cache = attach_cache(scorer)
    miss = node_candidates(scorer, node)  # shortlist miss + candidate miss
    hit = node_candidates(scorer, node)   # candidate hit, shortlist skipped
    assert miss == cold
    assert hit == cold
    assert cache.stats.hits == 1 and cache.stats.misses == 2


def test_node_candidates_hit_is_defensive_copy():
    scorer = fresh_scorer()
    attach_cache(scorer)
    node = qnode("Brad", "actor")
    node_candidates(scorer, node)
    first = node_candidates(scorer, node)
    first.append(("poison", -1.0))
    assert node_candidates(scorer, node) != first


def test_equal_constraints_from_distinct_nodes_share_entry():
    scorer = fresh_scorer()
    cache = attach_cache(scorer)
    node_candidates(scorer, qnode("Brad", "actor"))
    node_candidates(scorer, QueryNode(5, "Brad", "actor"))
    assert cache.stats.hits == 1
    assert cache.stats.inserts == 2  # one shortlist + one candidate entry


def test_limit_is_part_of_the_key():
    scorer = fresh_scorer()
    cache = attach_cache(scorer)
    full = node_candidates(scorer, qnode("Brad", "actor"))
    top1 = node_candidates(scorer, qnode("Brad", "actor"), limit=1)
    assert top1 == full[:1]
    # limit=1 missed its candidate entry but reused the cached shortlist.
    assert cache.stats.misses == 3 and cache.stats.hits == 1


def test_graph_version_invalidates():
    graph = build_movie_graph()
    cache = CandidateCache()
    node = qnode("Brad", "actor")
    scorer = ScoringFunction(graph)
    attach_cache(scorer, cache)
    node_candidates(scorer, node)
    graph.add_edge(0, 3, "collaborated_with")
    # Seed contract: a mutated graph needs a fresh scorer; the shared
    # cache's version-carrying keys make the old entries unreachable.
    rebuilt = ScoringFunction(graph)
    attach_cache(rebuilt, cache)
    fresh = node_candidates(rebuilt, node)
    assert cache.stats.hits == 0
    assert fresh == node_candidates(rebuilt, node)
    assert cache.stats.hits == 1


def test_config_fingerprint_keys_are_distinct():
    graph = build_movie_graph()
    loose = ScoringFunction(graph, ScoringConfig())
    strict = ScoringFunction(graph, ScoringConfig(node_threshold=0.9))
    assert loose.fingerprint != strict.fingerprint
    cache = CandidateCache()
    attach_cache(loose, cache)
    attach_cache(strict, cache)
    node = qnode("Brad", "actor")
    a = node_candidates(loose, node)
    b = node_candidates(strict, node)
    assert cache.stats.misses == 4 and cache.stats.hits == 0
    assert set(b) <= set(a)


def test_fingerprint_stable_across_instances():
    assert (ScoringConfig().fingerprint()
            == ScoringConfig().fingerprint())
    assert (ScoringConfig(fast=True).fingerprint()
            != ScoringConfig().fingerprint())


def test_shortlist_hit_returns_stored_object():
    scorer = fresh_scorer()
    attach_cache(scorer)
    node = qnode("Brad", "actor")
    first = shortlist(scorer, node)
    second = shortlist(scorer, node)
    assert second is first  # identity: preserves anytime iteration order


def test_wildcard_shortlist_not_cached():
    scorer = fresh_scorer()
    cache = attach_cache(scorer)
    result = shortlist(scorer, qnode("?"))
    assert result == set(scorer.graph.nodes())
    assert len(cache) == 0


# ----------------------------------------------------------------------
# Budget bypass: budgeted calls never touch the scored-candidate entries


def cand_entries(cache: CandidateCache):
    return [key for key in cache._data if key[0] == "cand"]


def test_budgeted_call_bypasses_scored_entries():
    scorer = fresh_scorer()
    cache = attach_cache(scorer)
    node = qnode("Brad", "actor")
    node_candidates(scorer, node)  # warm entry
    cand_before = list(cand_entries(cache))
    budget = Budget(max_nodes=1000)
    budgeted = node_candidates(scorer, node, budget=budget)
    # Nodes were re-scored and charged -- the warm scored list was NOT
    # served -- and no scored entry was added or replaced.
    assert budget.nodes_visited > 0
    assert cand_entries(cache) == cand_before
    assert budgeted == node_candidates(scorer, node)


def test_degraded_partial_never_poisons_cache():
    scorer = ScoringFunction(build_movie_graph())
    cache = attach_cache(scorer)
    node = qnode("?", "film")
    budget = Budget(max_nodes=1, anytime=True)
    partial = node_candidates(scorer, node, budget=budget)
    assert budget.exceeded_reason is not None
    assert cand_entries(cache) == []  # the partial list was not cached
    full = node_candidates(scorer, node)  # computes fresh, then caches
    assert len(cand_entries(cache)) == 1
    assert len(full) >= len(partial)
    # A subsequent hit serves the full list, not the degraded one.
    assert node_candidates(scorer, node) == full


# ----------------------------------------------------------------------
# Satellites: subtype closure, immutable views, relations, tokens


def seed_subtype_scan(graph: KnowledgeGraph, want: str) -> set:
    """The seed's per-call loop, kept as the reference implementation."""
    out = set(graph.nodes_of_type(want))
    for type_name in graph.types():
        if type_name != want and ontology.is_subtype(type_name, want):
            out |= set(graph.nodes_of_type(type_name))
    return out


def test_subtype_closure_matches_seed_loop(yago_graph):
    for want in sorted(yago_graph.types()) + ["person", "artist"]:
        assert yago_graph.nodes_of_subtype(want) == seed_subtype_scan(
            yago_graph, want
        ), want


def test_subtype_closure_empty_type():
    assert build_movie_graph().nodes_of_subtype("") == frozenset()


def test_subtype_closure_invalidated_by_mutation():
    graph = build_movie_graph()
    before = graph.nodes_of_subtype("person")
    added = graph.add_node("New Actor", "actor")
    after = graph.nodes_of_subtype("person")
    assert added in after
    assert after == before | {added}


def test_nodes_of_type_view_is_immutable():
    graph = build_movie_graph()
    view = graph.nodes_of_type("actor")
    assert isinstance(view, tuple)
    with pytest.raises((TypeError, AttributeError)):
        view.append(99)
    assert graph.nodes_of_type("missing-type") == ()


def test_relations_incremental_and_copied():
    graph = KnowledgeGraph(name="tiny")
    a = graph.add_node("A", "thing")
    b = graph.add_node("B", "thing")
    assert graph.relations() == set()
    graph.add_edge(a, b, "knows")
    rels = graph.relations()
    assert rels == {"knows"}
    rels.add("intruder")
    assert graph.relations() == {"knows"}
    graph.add_edge(b, a, "likes")
    assert graph.relations() == {"knows", "likes"}


def test_node_tokens_memoized():
    graph = build_movie_graph()
    data = graph.node(0)
    assert data.tokens() is data.tokens()  # computed once, shared
    assert set(tokenize(data.name)) <= data.tokens()


def test_tokenize_tuple_memoized_and_list_fresh():
    assert tokenize_tuple("Brad Pitt") is tokenize_tuple("Brad Pitt")
    first = tokenize("Brad Pitt")
    first.append("junk")
    assert tokenize("Brad Pitt") == ["brad", "pitt"]


# ----------------------------------------------------------------------
# End-to-end: warm cache leaves engine results untouched


def test_engine_results_identical_with_cache(movie_graph):
    from repro.core.framework import Star
    from repro.query.model import Query

    query = Query(name="brad")
    pivot = query.add_node("Brad", type="actor")
    query.add_edge(pivot, query.add_node("?"), "collaborated_with")
    query.add_edge(pivot, query.add_node("Academy Award"), "won")
    plain = Star(movie_graph).search(query, 5)
    scorer = ScoringFunction(movie_graph)
    cache = attach_cache(scorer)
    engine = Star(movie_graph, scorer=scorer)
    cold = engine.search(query, 5)
    warm = engine.search(query, 5)
    expected = [(m.key(), m.score) for m in plain]
    assert [(m.key(), m.score) for m in cold] == expected
    assert [(m.key(), m.score) for m in warm] == expected
    assert cache.stats.hits > 0
