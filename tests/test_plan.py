"""Unit tests for ``repro.plan``: features, experience, model, planner."""

from __future__ import annotations

import json
import math

import pytest

from repro.core.framework import Star
from repro.core.tuning import aggregate_depth, tune_parameters
from repro.errors import DecompositionError
from repro.plan import (
    COST_WEIGHTS,
    CostModel,
    ExperienceRecord,
    ExperienceStore,
    FEATURE_NAMES,
    QueryPlanner,
    cost_units,
    default_static_arm,
    extract_features,
)
from repro.plan.experience import ExperienceError
from repro.plan.features import CLASS_GENERAL, CLASS_STAR_D1, CLASS_STAR_DN
from repro.plan.model import PlanModelError
from repro.query import star_workload
from repro.query.model import (
    Query,
    QueryEdge,
    QueryNode,
    StarQuery,
    WILDCARD,
)
from repro.runtime import Budget
from repro.similarity import ScoringFunction


@pytest.fixture()
def movie_scorer_fresh(movie_graph):
    return ScoringFunction(movie_graph)


def _star_query() -> StarQuery:
    pivot = QueryNode(0, "Brad")
    leaf = QueryNode(1, "Troy")
    return StarQuery(pivot, [(leaf, QueryEdge(0, 0, 1, "acted_in"))])


def _star_shaped() -> Query:
    query = Query(name="star-shaped")
    pivot = query.add_node("Brad", type="actor")
    leaf = query.add_node("Troy", type="film")
    query.add_edge(pivot, leaf, "acted_in")
    return query


def _general_query() -> Query:
    query = Query(name="cycle")
    a = query.add_node(WILDCARD, type="actor")
    b = query.add_node(WILDCARD, type="film")
    c = query.add_node(WILDCARD, type="award")
    query.add_edge(a, b, WILDCARD)
    query.add_edge(b, c, WILDCARD)
    query.add_edge(c, a, WILDCARD)
    return query


class TestFeatures:
    def test_star_query_classes(self, movie_scorer_fresh):
        query = _star_query()
        f1 = extract_features(movie_scorer_fresh, query, 5, d=1)
        assert f1.class_key == CLASS_STAR_D1
        f2 = extract_features(movie_scorer_fresh, query, 5, d=2)
        assert f2.class_key == CLASS_STAR_DN

    def test_star_shaped_general_query_is_star_class(self, movie_scorer_fresh):
        query = Query(name="star-shaped")
        m = query.add_node(WILDCARD, type="director")
        a = query.add_node("Brad", type="actor")
        w = query.add_node(WILDCARD, type="award")
        query.add_edge(m, a, "collaborated_with")
        query.add_edge(m, w, "won")
        assert query.is_star()
        features = extract_features(movie_scorer_fresh, query, 5, d=1)
        assert features.class_key == CLASS_STAR_D1

    def test_cyclic_query_is_general_class(self, movie_scorer_fresh):
        features = extract_features(movie_scorer_fresh, _general_query(), 5)
        assert features.class_key == CLASS_GENERAL

    def test_vector_layout_and_determinism(self, movie_scorer_fresh):
        query = _star_query()
        a = extract_features(movie_scorer_fresh, query, 5, d=1)
        b = extract_features(movie_scorer_fresh, query, 5, d=1)
        assert len(a.vector) == len(FEATURE_NAMES)
        assert a.vector == b.vector
        assert a.as_dict() == b.as_dict()
        assert set(a.as_dict()) == set(FEATURE_NAMES)

    def test_budget_flag(self, movie_scorer_fresh):
        query = _star_query()
        free = extract_features(movie_scorer_fresh, query, 5, d=1)
        tight = extract_features(
            movie_scorer_fresh, query, 5, d=1, budget=Budget(max_nodes=10)
        )
        idx = FEATURE_NAMES.index("budget_flag")
        assert free.vector[idx] == 0.0
        assert tight.vector[idx] == 1.0


class TestExperience:
    def _record(self) -> ExperienceRecord:
        return ExperienceRecord(
            class_key=CLASS_STAR_D1,
            features={name: 1.0 for name in FEATURE_NAMES},
            arm="alg=stark|idx=auto",
            cost=42.5,
            counters={"node_score_calls": 40},
        )

    def test_to_json_deterministic_and_sorted(self):
        line = self._record().to_json()
        assert line == self._record().to_json()
        doc = json.loads(line)
        assert list(doc) == sorted(doc)
        assert doc["v"] == 1

    def test_roundtrip(self):
        record = self._record()
        back = ExperienceRecord.from_json(record.to_json())
        assert back == record

    def test_version_mismatch_rejected(self):
        doc = json.loads(self._record().to_json())
        doc["v"] = 99
        with pytest.raises(ExperienceError):
            ExperienceRecord.from_json(json.dumps(doc))

    def test_store_append_and_load(self, tmp_path):
        path = str(tmp_path / "exp.jsonl")
        store = ExperienceStore(path)
        store.append(self._record())
        store.append(self._record())
        store.close()
        loaded = ExperienceStore.load(path)
        assert len(loaded) == 2
        assert list(loaded)[0] == self._record()


class TestCostModel:
    def test_cost_units_weighted_sum(self):
        counters = {"node_score_calls": 10, "edge_score_calls": 4}
        expected = 1.0 + 10 * COST_WEIGHTS["node_score_calls"] \
            + 4 * COST_WEIGHTS["edge_score_calls"]
        assert cost_units(counters) == pytest.approx(expected)
        assert cost_units({}) == 1.0

    def _vector(self, x: float):
        vec = [0.0] * len(FEATURE_NAMES)
        vec[0] = 1.0  # bias
        vec[1] = x
        return vec

    def test_cold_then_warm_prediction(self):
        model = CostModel(min_samples=4)
        assert model.predict("c", "a", self._vector(1.0)) is None
        for x in (1.0, 2.0, 3.0, 4.0):
            model.observe("c", "a", self._vector(x), math.expm1(2.0 * x))
        assert model.samples("c", "a") == 4
        pred = model.predict("c", "a", self._vector(2.5))
        assert pred == pytest.approx(5.0, abs=0.3)

    def test_save_load_roundtrip(self, tmp_path):
        model = CostModel(min_samples=2)
        for x in (1.0, 2.0, 3.0):
            model.observe("c", "a", self._vector(x), 10.0 * x)
        path = str(tmp_path / "model.json")
        model.save(path)
        loaded = CostModel.load(path)
        assert loaded.samples("c", "a") == 3
        probe = self._vector(1.5)
        assert loaded.predict("c", "a", probe) == pytest.approx(
            model.predict("c", "a", probe)
        )
        # The persisted form is itself deterministic.
        model.save(str(tmp_path / "model2.json"))
        assert (tmp_path / "model.json").read_bytes() \
            == (tmp_path / "model2.json").read_bytes()

    def test_load_rejects_bad_version_and_layout(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(PlanModelError):
            CostModel.load(str(path))
        model = CostModel()
        good = str(tmp_path / "good.json")
        model.save(good)
        doc = json.loads(open(good, encoding="utf-8").read())
        doc["feature_names"] = ["bias", "something_else"]
        path.write_text(json.dumps(doc), encoding="utf-8")
        with pytest.raises(PlanModelError):
            CostModel.load(str(path))

    def test_fit_store_layout_mismatch(self, tmp_path):
        path = str(tmp_path / "exp.jsonl")
        store = ExperienceStore(path)
        store.append(ExperienceRecord(
            class_key="c", features={"bias": 1.0}, arm="a", cost=1.0,
            counters={},
        ))
        store.close()
        with pytest.raises(PlanModelError):
            CostModel().fit_store(ExperienceStore.load(path))


class TestPlanner:
    def test_default_static_arms(self):
        assert default_static_arm(CLASS_STAR_D1) == "alg=stark|idx=auto"
        assert default_static_arm(CLASS_STAR_DN) == "alg=stard|idx=auto"
        assert "method=simdec" in default_static_arm(CLASS_GENERAL)

    def test_invalid_mode_and_margin(self):
        with pytest.raises(ValueError):
            QueryPlanner(mode="bogus")
        with pytest.raises(ValueError):
            QueryPlanner(margin=1.5)

    def test_budgeted_search_stays_static(self, movie_graph, movie_scorer_fresh):
        planner = QueryPlanner(mode="auto")
        engine = Star(movie_graph, scorer=movie_scorer_fresh,
                      plan="auto", planner=planner)
        query = _star_query()
        decision = planner.plan(engine, query, 5, budget=Budget(max_nodes=100))
        assert decision.source == "static"
        assert decision.reason == "budget"
        assert decision.features is None
        planner.observe(decision, None)  # skipped: forced static, no features
        assert planner.model.samples(decision.class_key, decision.arm) == 0

    def test_pinned_knobs_collapse_menu(self, movie_graph):
        engine = Star(movie_graph, algorithm="hybrid", use_index="off")
        planner = QueryPlanner(mode="auto")
        query = _star_query()
        decision = planner.plan(engine, query, 5)
        assert decision.source == "static"
        assert decision.reason == "all-knobs-pinned"
        assert decision.arm == "alg=hybrid|idx=auto"
        assert decision.overrides == {}

    def test_cold_learned_mode_falls_back_static(self, movie_graph):
        planner = QueryPlanner(mode="learned")
        engine = Star(movie_graph, plan="learned", planner=planner)
        query = _star_query()
        decision = planner.plan(engine, query, 5)
        assert decision.source == "static"
        assert decision.reason == "model-cold"
        assert decision.arm == decision.static_arm

    def test_cold_auto_mode_explores_deterministically(self, movie_graph):
        query = _star_query()
        arms = []
        for _ in range(2):
            planner = QueryPlanner(mode="auto")
            engine = Star(movie_graph, plan="auto", planner=planner)
            arms.append(planner.plan(engine, query, 5).arm)
        assert arms[0] == arms[1]
        assert planner.decisions["explore"] == 1

    def test_online_loop_reaches_learned_decisions(self, movie_graph):
        planner = QueryPlanner(mode="auto", model=CostModel(min_samples=1))
        engine = Star(movie_graph, plan="auto", planner=planner)
        static = Star(movie_graph)
        queries = star_workload(movie_graph, 3, seed=5)
        for _ in range(4):
            for query in queries:
                got = engine.search(query, 5)
                expected = static.search(query, 5)
                assert [(m.key(), round(m.score, 9)) for m in got] \
                    == [(m.key(), round(m.score, 9)) for m in expected]
        assert planner.decisions["explore"] > 0
        assert planner.decisions["learned"] > 0
        assert engine.last_plan is not None

    def test_experience_jsonl_byte_deterministic(self, movie_graph, tmp_path):
        lines = []
        for name in ("a.jsonl", "b.jsonl"):
            path = str(tmp_path / name)
            planner = QueryPlanner(
                mode="auto", model=CostModel(min_samples=1),
                store=ExperienceStore(path),
            )
            engine = Star(movie_graph, plan="auto", planner=planner)
            for query in star_workload(movie_graph, 3, seed=5):
                engine.search(query, 5)
            planner.store.close()
            lines.append(open(path, "rb").read())
        assert lines[0] == lines[1]
        record = ExperienceRecord.from_json(
            lines[0].decode("utf-8").splitlines()[0]
        )
        assert record.cost == cost_units(record.counters)


class TestTuningValidation:
    def test_tune_parameters_rejects_unknown_method(self, movie_scorer):
        queries = [_star_query()]
        with pytest.raises(DecompositionError, match="unknown decomposition"):
            tune_parameters(movie_scorer, queries, method="simdek")

    def test_aggregate_depth_rejects_unknown_method(self, movie_scorer):
        queries = [_star_query()]
        with pytest.raises(DecompositionError, match="unknown decomposition"):
            aggregate_depth(movie_scorer, queries, alpha=0.5, lam=1.0,
                            method="nope")

    def test_star_rejects_unknown_method_upfront(self, movie_graph):
        with pytest.raises(DecompositionError, match="unknown decomposition"):
            Star(movie_graph, decomposition_method="simdek")
