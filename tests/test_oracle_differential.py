"""Differential fuzzing: engines vs the brute-force oracle, traced or not.

Satellite of the observability PR: Hypothesis generates random graphs and
queries; every engine's top-k must match ``brute_force`` in score *and*
assignment (tie-tolerantly, via :mod:`tests.oracle`) with metrics
**disabled and enabled** -- and the two modes must return identical
results, proving instrumentation never perturbs search behavior.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import obs
from repro.query import Query, star_query
from repro.similarity import ScoringFunction

from tests.conftest import build_random_graph
from tests.oracle import (
    assert_against_oracle,
    assert_same_results,
    run_algorithm,
)

# Deterministic scorer cache (hypothesis re-runs with the same seeds).
_SCORERS = {}


def scorer_for(seed: int) -> ScoringFunction:
    if seed not in _SCORERS:
        _SCORERS[seed] = ScoringFunction(build_random_graph(seed))
    return _SCORERS[seed]


def star_of(size_choice: int):
    leaves = [
        [("acted_in", "?")],
        [("acted_in", "Troy"), ("won", "?")],
        [("?", "Brad"), ("directed", "?"), ("born_in", "Venice")],
    ][size_choice]
    return star_query("Brad", leaves, pivot_type="actor")


def triangle_query() -> Query:
    query = Query(name="tri")
    a = query.add_node("Brad", type="actor")
    b = query.add_node("?", type="film")
    c = query.add_node("?")
    query.add_edge(a, b, "acted_in")
    query.add_edge(b, c, "?")
    query.add_edge(a, c, "?")
    return query


def check_both_modes(name, scorer, query, k, d=1, **opts):
    """Oracle-check with metrics off, then on; results must be identical."""
    got_off, _full = assert_against_oracle(
        name, scorer, query, k, d=d, **opts
    )
    with obs.capture() as tracer:
        got_on, _full = assert_against_oracle(
            name, scorer, query, k, d=d, **opts
        )
    assert_same_results(got_on, got_off)
    return tracer, got_on


class TestStarkDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=50),
        size_choice=st.integers(min_value=0, max_value=2),
        k=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_stark_matches_oracle_traced_and_untraced(
        self, seed, size_choice, k
    ):
        scorer = scorer_for(seed)
        tracer, got = check_both_modes(
            "stark", scorer, star_of(size_choice), k, d=1
        )
        if got:  # a non-empty traced search must have produced spans
            assert any(
                span.name == "stark.search" for span in tracer.roots
            )


class TestStardDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=40),
        size_choice=st.integers(min_value=0, max_value=2),
        k=st.integers(min_value=1, max_value=5),
        d=st.integers(min_value=2, max_value=3),
    )
    @settings(max_examples=20, deadline=None)
    def test_stard_matches_oracle_traced_and_untraced(
        self, seed, size_choice, k, d
    ):
        scorer = scorer_for(seed)
        tracer, got = check_both_modes(
            "stard", scorer, star_of(size_choice), k, d=d
        )
        if got:
            assert any(
                span.name == "stard.search" for span in tracer.roots
            )


class TestStarjoinDifferential:
    @given(
        seed=st.integers(min_value=0, max_value=40),
        k=st.integers(min_value=1, max_value=4),
        alpha=st.sampled_from([0.1, 0.5, 0.9]),
    )
    @settings(max_examples=20, deadline=None)
    def test_starjoin_matches_oracle_traced_and_untraced(
        self, seed, k, alpha
    ):
        scorer = scorer_for(seed)
        tracer, got = check_both_modes(
            "starjoin", scorer, triangle_query(), k, d=1, alpha=alpha
        )
        if got:
            assert any(
                span.name == "starjoin.join" for span in tracer.roots
            )


class TestTracingNeverChangesResults:
    """Focused non-Hypothesis spot check on a denser fixture graph."""

    @pytest.mark.parametrize("name,d", [("stark", 1), ("stard", 2)])
    def test_modes_identical_on_dense_graph(self, dense_scorer, name, d):
        star = star_query(
            "?", [("acted_in", "?"), ("born_in", "?")],
            pivot_type="actor",
        )
        plain = run_algorithm(name, dense_scorer, star, 5, d=d)
        assert plain, "spot check must exercise a non-empty result"
        with obs.capture():
            traced = run_algorithm(name, dense_scorer, star, 5, d=d)
        assert_same_results(traced, plain)
