"""Tests for procedure stark: exactness, monotonicity, weighting."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import brute_force_star
from repro.core import StarKSearch, is_monotone_non_increasing
from repro.errors import SearchError
from repro.query import StarQuery, star_query, star_workload
from repro.similarity import ScoringFunction

from tests.conftest import build_random_graph


class TestMovieGraph:
    """The paper's Fig. 1 scenario on the toy movie graph."""

    def test_movie_maker_query(self, movie_scorer):
        star = star_query(
            "?",
            [("collaborated_with", "Brad"), ("won", "?")],
            pivot_type="director",
            leaf_types=["actor", "award"],
        )
        matches = StarKSearch(movie_scorer).search(star, 2)
        assert matches
        graph = movie_scorer.graph
        top = matches[0]
        assert graph.node(top.assignment[0]).name == "Richard Linklater"
        assert graph.node(top.assignment[1]).name == "Brad Pitt"

    def test_top1_is_best(self, movie_scorer):
        star = star_query("Brad", [("acted_in", "?")], pivot_type="actor")
        matches = StarKSearch(movie_scorer).search(star, 10)
        oracle = brute_force_star(movie_scorer, star, 10)
        assert [m.score for m in matches] == pytest.approx(
            [m.score for m in oracle]
        )

    def test_k_validation(self, movie_scorer):
        star = star_query("Brad", [("acted_in", "?")])
        with pytest.raises(SearchError):
            StarKSearch(movie_scorer).search(star, 0)

    def test_no_candidates_empty(self, movie_scorer):
        star = star_query("zzzznothing", [("acted_in", "?")])
        assert StarKSearch(movie_scorer).search(star, 5) == []

    def test_unmatchable_leaf_empty(self, movie_scorer):
        star = star_query("Brad", [("acted_in", "qqqqqnothing")])
        assert StarKSearch(movie_scorer).search(star, 5) == []


class TestOracleEquivalence:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_workload_matches_oracle(self, yago_scorer, yago_graph, k):
        for query in star_workload(yago_graph, 8, seed=21):
            star = StarQuery.from_query(query)
            got = StarKSearch(yago_scorer).search(star, k)
            want = brute_force_star(yago_scorer, star, k)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            ), query.name

    def test_non_injective_mode(self, yago_scorer, yago_graph):
        for query in star_workload(yago_graph, 5, seed=22):
            star = StarQuery.from_query(query)
            got = StarKSearch(yago_scorer, injective=False).search(star, 5)
            want = brute_force_star(
                yago_scorer, star, 5, injective=False
            )
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            )

    @given(st.integers(min_value=0, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_random_graphs_property(self, seed):
        """stark == oracle on arbitrary random graphs."""
        graph = build_random_graph(seed)
        scorer = ScoringFunction(graph)
        star = star_query("Brad", [("acted_in", "?"), ("won", "Troy")],
                          pivot_type="actor")
        got = StarKSearch(scorer).search(star, 4)
        want = brute_force_star(scorer, star, 4)
        assert [round(m.score, 9) for m in got] == [
            round(m.score, 9) for m in want
        ]


class TestStreamProperties:
    def test_monotone_stream(self, yago_scorer, yago_graph):
        for query in star_workload(yago_graph, 5, seed=23):
            star = StarQuery.from_query(query)
            stream = StarKSearch(yago_scorer).stream(star)
            first_20 = list(itertools.islice(stream, 20))
            assert is_monotone_non_increasing(first_20)

    def test_stream_has_no_duplicates(self, yago_scorer, yago_graph):
        query = star_workload(yago_graph, 1, seed=24)[0]
        star = StarQuery.from_query(query)
        seen = set()
        for match in itertools.islice(StarKSearch(yago_scorer).stream(star), 50):
            key = match.key()
            assert key not in seen
            seen.add(key)

    def test_all_matches_injective(self, yago_scorer, yago_graph):
        query = star_workload(yago_graph, 1, seed=25)[0]
        star = StarQuery.from_query(query)
        for match in itertools.islice(StarKSearch(yago_scorer).stream(star), 30):
            assert match.is_injective()

    def test_stats_populated(self, yago_scorer, yago_graph):
        query = star_workload(yago_graph, 1, seed=26)[0]
        matcher = StarKSearch(yago_scorer)
        matcher.search(StarQuery.from_query(query), 5)
        assert matcher.stats.pivots_considered > 0
        assert matcher.stats.matches_emitted > 0


class TestNodeWeights:
    def test_weighted_scores(self, movie_scorer):
        """Alpha-scheme weighting scales node contributions."""
        star = star_query("Brad", [("acted_in", "Troy")], pivot_type="actor")
        full = StarKSearch(movie_scorer).search(star, 1)[0]
        half = next(
            StarKSearch(movie_scorer).stream(star, node_weights={0: 0.5})
        )
        pivot_score = full.node_scores[0]
        assert half.score == pytest.approx(full.score - 0.5 * pivot_score)

    def test_zero_weight_drops_contribution(self, movie_scorer):
        star = star_query("Brad", [("acted_in", "Troy")])
        unweighted = StarKSearch(movie_scorer).search(star, 1)[0]
        zeroed = next(
            StarKSearch(movie_scorer).stream(star, node_weights={1: 0.0})
        )
        leaf_score = unweighted.node_scores[1]
        assert zeroed.score == pytest.approx(unweighted.score - leaf_score)


class TestProp3Integration:
    def test_prop3_pruning_preserves_results(self, yago_scorer, yago_graph):
        for query in star_workload(yago_graph, 5, seed=27):
            star = StarQuery.from_query(query)
            pruned = StarKSearch(
                yago_scorer, injective=False, prop3=True
            ).search(star, 5)
            unpruned = StarKSearch(
                yago_scorer, injective=False, prop3=False
            ).search(star, 5)
            assert [m.score for m in pruned] == pytest.approx(
                [m.score for m in unpruned]
            )


class TestDBounded:
    def test_d2_matches_oracle(self, yago_scorer, yago_graph):
        for query in star_workload(yago_graph, 5, seed=28):
            star = StarQuery.from_query(query)
            got = StarKSearch(yago_scorer, d=2).search(star, 5)
            want = brute_force_star(yago_scorer, star, 5, d=2)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            )

    def test_d2_superset_scores(self, yago_scorer, yago_graph):
        """d=2 can only improve (or tie) every rank vs d=1."""
        for query in star_workload(yago_graph, 5, seed=29):
            star = StarQuery.from_query(query)
            d1 = StarKSearch(yago_scorer, d=1).search(star, 3)
            d2 = StarKSearch(yago_scorer, d=2).search(star, 3)
            for rank, m1 in enumerate(d1):
                assert d2[rank].score >= m1.score - 1e-9

    def test_invalid_d(self, yago_scorer):
        with pytest.raises(SearchError):
            StarKSearch(yago_scorer, d=0)
