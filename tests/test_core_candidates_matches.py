"""Tests for candidate generation and the Match type."""

import pytest

from repro.core import Match, node_candidates, scores_of, shortlist
from repro.core.matches import is_monotone_non_increasing
from repro.query import Query


def qnode(label, type=""):
    q = Query()
    q.add_node(label, type=type)
    return q.nodes[0]


class TestShortlist:
    def test_token_hit(self, movie_scorer):
        hits = shortlist(movie_scorer, qnode("Brad"))
        assert 0 in hits

    def test_synonym_expansion(self, movie_scorer):
        # "picture" is a synonym of "film": typed film nodes are reachable.
        hits = shortlist(movie_scorer, qnode("picture"))
        assert any(
            movie_scorer.graph.node(v).type == "film" for v in hits
        )

    def test_type_includes_subtypes(self, movie_scorer):
        hits = shortlist(movie_scorer, qnode("?", type="person"))
        types = {movie_scorer.graph.node(v).type for v in hits}
        assert "actor" in types and "director" in types

    def test_pure_wildcard_scans_all(self, movie_scorer, movie_graph):
        hits = shortlist(movie_scorer, qnode("?"))
        assert len(hits) == movie_graph.num_nodes


class TestNodeCandidates:
    def test_sorted_and_thresholded(self, movie_scorer):
        cands = node_candidates(movie_scorer, qnode("Brad Pitt"))
        scores = [s for _v, s in cands]
        assert scores == sorted(scores, reverse=True)
        assert all(s >= movie_scorer.config.node_threshold for s in scores)
        assert cands[0][0] == 0  # Brad Pitt first

    def test_limit(self, movie_scorer):
        cands = node_candidates(movie_scorer, qnode("?"), limit=3)
        assert len(cands) == 3

    def test_no_match_empty(self, movie_scorer):
        assert node_candidates(movie_scorer, qnode("zzzzqqq")) == []

    def test_deterministic_tiebreak(self, movie_scorer):
        a = node_candidates(movie_scorer, qnode("?", type="award"))
        b = node_candidates(movie_scorer, qnode("?", type="award"))
        assert a == b


class TestMatch:
    def make(self, score, assignment):
        return Match(score, assignment, {}, {}, {})

    def test_injectivity_check(self):
        assert self.make(1.0, {0: 5, 1: 6}).is_injective()
        assert not self.make(1.0, {0: 5, 1: 5}).is_injective()

    def test_key_canonical(self):
        a = self.make(1.0, {1: 6, 0: 5})
        b = self.make(2.0, {0: 5, 1: 6})
        assert a.key() == b.key()

    def test_merge_compatible(self):
        a = Match(1.0, {0: 5, 1: 6}, {0: 0.5, 1: 0.5}, {0: 0.2}, {0: 1})
        b = Match(0.8, {1: 6, 2: 7}, {1: 0.5, 2: 0.3}, {1: 0.1}, {1: 2})
        merged = a.merge(b)
        assert merged is not None
        assert merged.score == pytest.approx(1.8)
        assert merged.assignment == {0: 5, 1: 6, 2: 7}
        assert merged.edge_hops == {0: 1, 1: 2}

    def test_merge_conflict(self):
        a = self.make(1.0, {0: 5, 1: 6})
        b = self.make(1.0, {1: 7})
        assert a.merge(b) is None

    def test_scores_of_and_monotone(self):
        ms = [self.make(3.0, {}), self.make(2.0, {}), self.make(2.0, {})]
        assert scores_of(ms) == [3.0, 2.0, 2.0]
        assert is_monotone_non_increasing(ms)
        assert not is_monotone_non_increasing(list(reversed(ms)))

    def test_repr(self):
        assert "0->5" in repr(self.make(1.0, {0: 5}))


class TestDistinctBy:
    def make(self, score, assignment):
        return Match(score, assignment, {}, {}, {})

    def test_keeps_best_per_pivot(self):
        from repro.core import distinct_by

        ms = [
            self.make(3.0, {0: 7, 1: 1}),
            self.make(2.5, {0: 7, 1: 2}),
            self.make(2.0, {0: 8, 1: 1}),
            self.make(1.5, {0: 8, 1: 3}),
        ]
        kept = list(distinct_by(ms, 0))
        assert [m.score for m in kept] == [3.0, 2.0]

    def test_with_real_stream(self, yago_scorer, yago_graph):
        import itertools

        from repro.core import StarKSearch, distinct_by
        from repro.query import StarQuery, star_workload

        query = star_workload(yago_graph, 1, seed=151)[0]
        star = StarQuery.from_query(query)
        stream = StarKSearch(yago_scorer).stream(star)
        kept = list(itertools.islice(distinct_by(stream, star.pivot.id), 5))
        pivots = [m.assignment[star.pivot.id] for m in kept]
        assert len(pivots) == len(set(pivots))
