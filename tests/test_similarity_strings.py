"""Unit tests for the string-similarity primitives."""

import pytest
from hypothesis import given, strategies as st

from repro.similarity.strings import (
    common_prefix_ratio,
    common_suffix_ratio,
    dice,
    edit_similarity,
    initials,
    jaccard,
    jaro,
    jaro_winkler,
    levenshtein,
    ngrams,
    overlap_coefficient,
    rough_phonetic,
    soundex,
)

words = st.text(alphabet="abcdefgh", min_size=0, max_size=12)


class TestLevenshtein:
    def test_known_values(self):
        assert levenshtein("kitten", "sitting") == 3
        assert levenshtein("abc", "abc") == 0
        assert levenshtein("", "abc") == 3
        assert levenshtein("abc", "") == 3

    def test_cap_early_exit(self):
        assert levenshtein("aaaa", "bbbbbbbbbb", cap=2) == 3  # cap + 1

    @given(words, words)
    def test_symmetry(self, a, b):
        assert levenshtein(a, b) == levenshtein(b, a)

    @given(words, words, words)
    def test_triangle_inequality(self, a, b, c):
        assert levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c)

    @given(words)
    def test_identity(self, a):
        assert levenshtein(a, a) == 0


class TestEditSimilarity:
    def test_range(self):
        assert edit_similarity("abc", "abd") == pytest.approx(2 / 3)
        assert edit_similarity("", "") == 1.0
        assert edit_similarity("a", "") == 0.0

    @given(words, words)
    def test_bounds(self, a, b):
        assert 0.0 <= edit_similarity(a, b) <= 1.0


class TestJaro:
    def test_known_value(self):
        assert jaro("martha", "marhta") == pytest.approx(0.944, abs=1e-3)

    def test_disjoint(self):
        assert jaro("abc", "xyz") == 0.0

    def test_winkler_prefix_bonus(self):
        assert jaro_winkler("brad", "brady") > jaro("brad", "brady")

    @given(words, words)
    def test_bounds(self, a, b):
        assert 0.0 <= jaro_winkler(a, b) <= 1.0


class TestSetMeasures:
    def test_jaccard(self):
        a, b = frozenset("abc"), frozenset("bcd")
        assert jaccard(a, b) == pytest.approx(0.5)
        # Empty-set reflexivity: two identical (empty) sets are a perfect
        # match, consistent with edit_similarity("", "") == 1.0.
        assert jaccard(frozenset(), frozenset()) == 1.0
        assert dice(frozenset(), frozenset()) == 1.0
        assert overlap_coefficient(frozenset(), frozenset()) == 1.0
        assert jaccard(frozenset(), frozenset("ab")) == 0.0
        assert dice(frozenset(), frozenset("ab")) == 0.0
        assert overlap_coefficient(frozenset(), frozenset("ab")) == 0.0

    def test_dice(self):
        a, b = frozenset("abc"), frozenset("bcd")
        assert dice(a, b) == pytest.approx(2 / 3)

    def test_overlap(self):
        a, b = frozenset("ab"), frozenset("abcd")
        assert overlap_coefficient(a, b) == 1.0

    @given(st.frozensets(st.characters(), max_size=8),
           st.frozensets(st.characters(), max_size=8))
    def test_jaccard_le_dice_le_overlap(self, a, b):
        if a and b and (a & b):
            assert jaccard(a, b) <= dice(a, b) <= overlap_coefficient(a, b) + 1e-12


class TestNgrams:
    def test_bigram_content(self):
        assert ngrams("ab", 2) == frozenset({"^a", "ab", "b$"})

    def test_empty(self):
        assert ngrams("", 3) == frozenset()

    def test_short_string(self):
        assert ngrams("a", 3) == frozenset({"^a$"})

    def test_short_string_padded_to_length(self):
        # "^a$" is shorter than n=4: the gram is sentinel-padded so gram
        # sets stay length-homogeneous instead of mixing sizes.
        assert ngrams("a", 4) == frozenset({"^a$$"})
        assert ngrams("ab", 5) == frozenset({"^ab$$"})

    @given(st.text(max_size=12), st.integers(min_value=1, max_value=8))
    def test_length_homogeneous(self, text, n):
        for gram in ngrams(text, n):
            assert len(gram) == n


class TestPrefixSuffix:
    def test_prefix(self):
        assert common_prefix_ratio("brad", "brady") == 1.0
        assert common_prefix_ratio("brad", "chad") == 0.0

    def test_suffix(self):
        assert common_suffix_ratio("linklater", "slater") == pytest.approx(5 / 6)

    def test_empty(self):
        assert common_prefix_ratio("", "abc") == 0.0


class TestPhonetic:
    def test_soundex_classic(self):
        assert soundex("Robert") == "R163"
        assert soundex("Rupert") == "R163"
        assert soundex("Ashcraft") == soundex("Ashcroft")

    def test_soundex_empty(self):
        assert soundex("") == ""
        assert soundex("123") == ""

    def test_rough_phonetic_digraphs(self):
        assert rough_phonetic("philip") == rough_phonetic("filip")

    def test_rough_phonetic_double_letters(self):
        assert rough_phonetic("matt") == rough_phonetic("mat")


class TestInitials:
    def test_basic(self):
        assert initials(["New", "York", "City"]) == "nyc"

    def test_empty_tokens(self):
        assert initials([]) == ""
        assert initials(["", "a"]) == "a"
