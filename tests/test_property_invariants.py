"""Hypothesis property tests for structural invariants across the stack."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.starjoin import alpha_weights
from repro.graph import KnowledgeGraph, load_graph, save_graph
from repro.graph.sampling import bfs_expand, bfs_sample
from repro.query import Query, decompose

from tests.conftest import build_random_graph


class TestGraphIoRoundtripProperty:
    @given(seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_random_graph_roundtrip(self, seed, tmp_path_factory):
        graph = build_random_graph(seed, num_nodes=25, num_edges=40)
        path = tmp_path_factory.mktemp("io") / f"g{seed}.kg"
        save_graph(graph, path)
        loaded = load_graph(path)
        assert loaded.num_nodes == graph.num_nodes
        assert loaded.num_edges == graph.num_edges
        for v in graph.nodes():
            assert loaded.node(v).name == graph.node(v).name
            assert loaded.node(v).type == graph.node(v).type
        for eid, src, dst in graph.edges():
            lsrc, ldst, ldata = loaded.edge(eid)
            assert (lsrc, ldst) == (src, dst)
            assert ldata.relation == graph.edge(eid)[2].relation
        # The derived indexes agree too.
        assert loaded.vocabulary() == graph.vocabulary()
        assert loaded.max_degree == graph.max_degree


class TestSamplingProperties:
    @given(
        start=st.integers(min_value=20, max_value=60),
        growth=st.integers(min_value=5, max_value=60),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=25, deadline=None)
    def test_expand_monotone_supergraph(self, start, growth, seed):
        universe = build_random_graph(seed, num_nodes=60, num_edges=150)
        g1 = bfs_sample(universe, start, seed=seed)
        g2 = bfs_expand(g1, growth, seed=seed + 1)
        assert g1.used_edges <= g2.used_edges
        assert set(g1.node_map) <= set(g2.node_map)
        # Growth is exact until the universe saturates.
        expected = min(start + growth, universe.num_edges)
        assert len(g2.used_edges) <= expected
        if len(g2.used_edges) < expected:
            # Saturated: every edge incident to the sample is used.
            pool_exhausted = all(
                all(
                    eid in g2.used_edges
                    for _nbr, eid in universe.neighbors(u)
                )
                for u in g2.node_map
            )
            assert pool_exhausted


class TestAlphaWeightProperties:
    @st.composite
    def cycle_query_and_alpha(draw):
        n = draw(st.integers(min_value=3, max_value=7))
        alpha = draw(st.floats(min_value=0.0, max_value=1.0,
                               allow_nan=False))
        q = Query(name=f"cycle{n}")
        for i in range(n):
            q.add_node(f"n{i}")
        for i in range(n):
            q.add_edge(i, (i + 1) % n)
        return q, alpha

    @given(cycle_query_and_alpha())
    @settings(max_examples=50, deadline=None)
    def test_weights_always_partition_unity(self, query_and_alpha):
        query, alpha = query_and_alpha
        decomposition = decompose(query, "simsize")
        weights = alpha_weights(decomposition, alpha)
        totals = {}
        for star_weights in weights:
            for qid, w in star_weights.items():
                assert 0.0 <= w <= 1.0 + 1e-12
                totals[qid] = totals.get(qid, 0.0) + w
        for qid in range(query.num_nodes):
            assert totals[qid] == pytest.approx(1.0)


class TestVersionMonotonicity:
    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_version_strictly_increases(self, operations):
        g = KnowledgeGraph()
        g.add_node("seed")
        last = g.version
        for add_edge in operations:
            if add_edge and g.num_nodes >= 2:
                g.add_edge(g.num_nodes - 1, g.num_nodes - 2)
            else:
                g.add_node(f"n{g.num_nodes}")
            assert g.version > last
            last = g.version
