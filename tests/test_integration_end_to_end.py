"""End-to-end integration flows across all subsystems."""

import pytest

from repro import (
    Star,
    dbpedia_like,
    learn_weights,
    load_graph,
    save_graph,
    star_workload,
)
from repro.baselines import brute_force_topk
from repro.core import StarDSearch
from repro.query import StarQuery, parse_query
from repro.similarity import ScoringConfig, ScoringFunction


class TestGenerateSaveLoadSearch:
    """generate -> save -> load -> query: scores survive the round trip."""

    def test_search_results_identical_after_reload(self, tmp_path):
        graph = dbpedia_like(scale=0.15)
        path = tmp_path / "g.kg"
        save_graph(graph, path)
        reloaded = load_graph(path)

        workload = star_workload(graph, 3, seed=101)
        for query in workload:
            original = Star(graph).search(query, 5)
            # The same query text works because node ids are preserved.
            again = Star(reloaded).search(query, 5)
            assert [round(m.score, 9) for m in original] == [
                round(m.score, 9) for m in again
            ]
            assert [m.assignment for m in original] == [
                m.assignment for m in again
            ]


class TestLearnedWeightsPipeline:
    """train weights -> configure scorer -> search stays exact vs oracle."""

    def test_learned_scorer_exactness(self, yago_graph):
        weights = learn_weights(yago_graph, num_pairs=200, seed=31)
        scorer = ScoringFunction(
            yago_graph, ScoringConfig(node_weights=weights)
        )
        for query in star_workload(yago_graph, 4, seed=102):
            star = StarQuery.from_query(query)
            got = StarDSearch(scorer, d=2).search(star, 4)
            from repro.baselines import brute_force_star

            want = brute_force_star(scorer, star, 4, d=2)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            )


class TestParsedQueryPipeline:
    """parse text -> decompose -> join -> validate against oracle."""

    def test_cyclic_text_query(self, yago_scorer, yago_graph):
        # Build a parseable cyclic query from an actual subgraph so it
        # has answers: triangle of generic variables with typed corners.
        types = [t for t in ("person", "film", "award", "place")
                 if yago_graph.nodes_of_type(t)]
        text = (
            f"(?a:{types[0]}) -[?]- (?b)\n"
            f"(?b) -[?]- (?c)\n"
            f"(?a) -[?]- (?c)"
        )
        query = parse_query(text, name="triangle")
        engine = Star(yago_graph, scorer=yago_scorer,
                      decomposition_method="maxdeg", candidate_limit=150)
        got = engine.search(query, 3)
        want = brute_force_topk(yago_scorer, query, 3, candidate_limit=150)
        assert [round(m.score, 8) for m in got] == [
            round(m.score, 8) for m in want
        ]


class TestIncrementalStreaming:
    """The stream API supports 'give me more results' incrementally."""

    def test_stream_prefix_equals_search(self, yago_scorer, yago_graph):
        from repro.core import StarKSearch

        query = star_workload(yago_graph, 1, seed=103)[0]
        star = StarQuery.from_query(query)
        stream = StarKSearch(yago_scorer).stream(star)
        first_3 = [next(stream, None) for _ in range(3)]
        first_3 = [m for m in first_3 if m is not None]
        searched = StarKSearch(yago_scorer).search(star, 3)
        assert [m.score for m in first_3] == pytest.approx(
            [m.score for m in searched]
        )
        # Continuing the same stream keeps the monotone order.
        more = [next(stream, None) for _ in range(5)]
        scores = [m.score for m in first_3 + [m for m in more if m]]
        assert scores == sorted(scores, reverse=True)


class TestSharedScorerIsolation:
    """Different queries through one scorer never contaminate results."""

    def test_interleaved_queries(self, yago_scorer, yago_graph):
        from repro.core import StarKSearch

        queries = star_workload(yago_graph, 4, seed=104)
        stars = [StarQuery.from_query(q) for q in queries]
        solo = [
            [m.score for m in StarKSearch(yago_scorer).search(s, 3)]
            for s in stars
        ]
        interleaved = []
        for s in stars:
            interleaved.append(
                [m.score for m in StarKSearch(yago_scorer).search(s, 3)]
            )
        for a, b in zip(solo, interleaved):
            assert a == pytest.approx(b)
