"""Shared fixtures: small deterministic graphs, scorers, workloads."""

from __future__ import annotations

import random

import pytest

from repro.graph import KnowledgeGraph, dbpedia_like, yago2_like
from repro.similarity import ScoringConfig, ScoringFunction


def build_movie_graph() -> KnowledgeGraph:
    """The running example of Fig. 1: a tiny movie knowledge graph."""
    g = KnowledgeGraph(name="movies")
    brad = g.add_node("Brad Pitt", "actor", ["drama"])
    angelina = g.add_node("Angelina Jolie", "actor")
    richard = g.add_node("Richard Linklater", "director")
    kathryn = g.add_node("Kathryn Bigelow", "director")
    troy = g.add_node("Troy", "film", ["war"])
    boyhood = g.add_node("Boyhood", "film", ["drama"])
    hurt = g.add_node("The Hurt Locker", "film", ["war"])
    oscar = g.add_node("Academy Award", "award")
    globe = g.add_node("Golden Globe", "award")
    venice = g.add_node("Venice", "place")
    g.add_edge(brad, troy, "acted_in")
    g.add_edge(brad, boyhood, "acted_in")
    g.add_edge(angelina, troy, "acted_in")
    g.add_edge(richard, boyhood, "directed")
    g.add_edge(kathryn, hurt, "directed")
    g.add_edge(boyhood, oscar, "film_won")
    g.add_edge(hurt, oscar, "film_won")
    g.add_edge(richard, globe, "won")
    g.add_edge(kathryn, oscar, "won")
    g.add_edge(angelina, oscar, "won")
    g.add_edge(brad, venice, "born_in")
    g.add_edge(brad, richard, "collaborated_with")
    g.add_edge(brad, angelina, "married_to")
    return g


def build_random_graph(seed: int, num_nodes: int = 30, num_edges: int = 60) -> KnowledgeGraph:
    """A small random typed graph for property tests (deterministic)."""
    rng = random.Random(seed)
    types = ["actor", "director", "film", "award", "place"]
    names = ["Brad", "Angelina", "Troy", "Boyhood", "Oscar", "Globe",
             "Venice", "Richard", "Kathryn", "Hurt", "Locker", "Pitt"]
    relations = ["acted_in", "directed", "won", "born_in", "married_to"]
    g = KnowledgeGraph(name=f"random-{seed}")
    for i in range(num_nodes):
        name = f"{rng.choice(names)} {rng.choice(names)}"
        g.add_node(name, rng.choice(types))
    made = 0
    attempts = 0
    while made < num_edges and attempts < num_edges * 10:
        attempts += 1
        a, b = rng.randrange(num_nodes), rng.randrange(num_nodes)
        if a == b:
            continue
        g.add_edge(a, b, rng.choice(relations))
        made += 1
    return g


@pytest.fixture(scope="session")
def movie_graph() -> KnowledgeGraph:
    return build_movie_graph()


@pytest.fixture(scope="session")
def movie_scorer(movie_graph) -> ScoringFunction:
    return ScoringFunction(movie_graph)


@pytest.fixture(scope="session")
def yago_graph() -> KnowledgeGraph:
    return yago2_like(scale=0.2)


@pytest.fixture(scope="session")
def yago_scorer(yago_graph) -> ScoringFunction:
    return ScoringFunction(yago_graph)


@pytest.fixture(scope="session")
def dense_graph() -> KnowledgeGraph:
    return dbpedia_like(scale=0.15)


@pytest.fixture(scope="session")
def dense_scorer(dense_graph) -> ScoringFunction:
    return ScoringFunction(dense_graph, ScoringConfig(fast=True))
