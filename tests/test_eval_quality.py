"""Tests for the result-quality metrics."""

import pytest

from repro.core.matches import Match
from repro.eval.quality import AggregateQuality, QualityReport, compare_results


def match(score, assignment):
    return Match(score, assignment, {}, {}, {})


class TestCompareResults:
    def test_perfect(self):
        ms = [match(3.0, {0: 1}), match(2.0, {0: 2})]
        report = compare_results(ms, ms, k=2)
        assert report.precision_at_k == 1.0
        assert report.score_recall == 1.0
        assert report.top1_exact
        assert report.missing == 0

    def test_partial_overlap(self):
        got = [match(3.0, {0: 1}), match(1.0, {0: 9})]
        want = [match(3.0, {0: 1}), match(2.0, {0: 2})]
        report = compare_results(got, want, k=2)
        assert report.precision_at_k == pytest.approx(0.5)
        assert report.score_recall == pytest.approx(4.0 / 5.0)
        assert report.top1_exact
        assert report.missing == 1

    def test_missed_top1(self):
        got = [match(2.0, {0: 2})]
        want = [match(3.0, {0: 1}), match(2.0, {0: 2})]
        report = compare_results(got, want, k=2)
        assert not report.top1_exact

    def test_tie_swap_counts_in_score_recall(self):
        """Equal-score alternatives keep recall at 1.0 even when the
        specific matching functions differ (ties are interchangeable)."""
        got = [match(2.0, {0: 7})]
        want = [match(2.0, {0: 8})]
        report = compare_results(got, want, k=1)
        assert report.precision_at_k == 0.0
        assert report.score_recall == 1.0
        assert report.top1_exact

    def test_empty_reference(self):
        assert compare_results([], [], k=5).precision_at_k == 1.0
        report = compare_results([match(1.0, {0: 1})], [], k=5)
        assert report.precision_at_k == 0.0

    def test_empty_returned(self):
        want = [match(3.0, {0: 1})]
        report = compare_results([], want, k=1)
        assert report.precision_at_k == 0.0
        assert report.score_recall == 0.0
        assert not report.top1_exact

    def test_k_truncation(self):
        got = [match(3.0, {0: 1}), match(0.5, {0: 9})]
        want = [match(3.0, {0: 1}), match(2.0, {0: 2})]
        report = compare_results(got, want, k=1)
        assert report.precision_at_k == 1.0
        assert report.score_recall == 1.0


class TestAggregateQuality:
    def test_averages(self):
        reports = [
            QualityReport(2, 1.0, 1.0, True, 0),
            QualityReport(2, 0.5, 0.8, False, 1),
        ]
        agg = AggregateQuality(reports)
        assert agg.avg_precision == pytest.approx(0.75)
        assert agg.avg_score_recall == pytest.approx(0.9)
        assert agg.top1_rate == pytest.approx(0.5)

    def test_empty(self):
        agg = AggregateQuality([])
        assert agg.avg_precision == 0.0
        assert agg.top1_rate == 0.0
