"""Failure injection and boundary-condition tests across the stack."""

import pytest

from repro.baselines import BeliefPropagation, GraphTA, brute_force_topk
from repro.core import Star, StarDSearch, StarKSearch
from repro.errors import (
    DataCorruptionError,
    InjectedFaultError,
    QueryError,
    ReproError,
    SearchError,
)
from repro.graph import KnowledgeGraph
from repro.query import Query, StarQuery, star_query
from repro.runtime import Budget, FaultSpec, faulty
from repro.similarity import ScoringConfig, ScoringFunction


@pytest.fixture()
def tiny_graph():
    g = KnowledgeGraph(name="tiny")
    a = g.add_node("Alpha", "thing")
    b = g.add_node("Beta", "thing")
    g.add_edge(a, b, "rel")
    return g


class TestExtremeThresholds:
    def test_node_threshold_one_kills_everything(self, movie_graph):
        scorer = ScoringFunction(
            movie_graph, ScoringConfig(node_threshold=1.0)
        )
        star = star_query("Brad", [("acted_in", "?")])
        assert StarKSearch(scorer).search(star, 5) == []
        assert StarDSearch(scorer, d=2).search(star, 5) == []

    def test_edge_threshold_one_requires_perfect_relations(self, movie_graph):
        scorer = ScoringFunction(
            movie_graph, ScoringConfig(edge_threshold=1.0)
        )
        star = star_query("Brad", [("acted_in", "Troy")])
        # relation_score aggregates several measures, so even an exact
        # relation stays below 1.0 -- no admissible edge matches.
        assert StarKSearch(scorer).search(star, 5) == []

    def test_zero_thresholds_still_exact(self, movie_graph):
        scorer = ScoringFunction(
            movie_graph,
            ScoringConfig(node_threshold=0.0, edge_threshold=0.0),
        )
        star = star_query("Brad", [("acted_in", "?")], pivot_type="actor")
        got = StarKSearch(scorer).search(star, 5)
        from repro.baselines import brute_force_star

        want = brute_force_star(scorer, star, 5)
        assert [m.score for m in got] == pytest.approx(
            [m.score for m in want]
        )

    def test_extreme_lambda_values(self, movie_graph):
        for lam in (0.01, 0.99):
            scorer = ScoringFunction(
                movie_graph, ScoringConfig(path_lambda=lam)
            )
            star = star_query("Richard", [("?", "Academy Award")])
            got = StarDSearch(scorer, d=2).search(star, 3)
            from repro.baselines import brute_force_star

            want = brute_force_star(scorer, star, 3, d=2)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            )


class TestDegenerateGraphs:
    def test_single_edge_graph(self, tiny_graph):
        scorer = ScoringFunction(tiny_graph)
        star = star_query("Alpha", [("rel", "Beta")])
        matches = StarKSearch(scorer).search(star, 3)
        assert len(matches) == 1

    def test_edgeless_graph(self):
        g = KnowledgeGraph()
        g.add_node("Lonely")
        scorer = ScoringFunction(g)
        star = star_query("Lonely", [("rel", "?")])
        assert StarKSearch(scorer).search(star, 3) == []
        assert StarDSearch(scorer, d=3).search(star, 3) == []

    def test_disconnected_components(self):
        g = KnowledgeGraph()
        a, b = g.add_node("Alpha"), g.add_node("Beta")
        c, d = g.add_node("Gamma"), g.add_node("Delta")
        g.add_edge(a, b, "rel")
        g.add_edge(c, d, "rel")
        scorer = ScoringFunction(g)
        # Alpha and Delta are in different components: no d-bounded match.
        q = Query()
        qa = q.add_node("Alpha")
        qd = q.add_node("Delta")
        q.add_edge(qa, qd, "?")
        assert GraphTA(scorer, d=4).search(q, 3) == []
        assert brute_force_topk(scorer, q, 3, d=4) == []

    def test_single_node_query_via_framework(self, movie_graph, movie_scorer):
        q = Query(name="node-only")
        q.add_node("Brad", type="actor")
        engine = Star(movie_graph, scorer=movie_scorer)
        matches = engine.search(q, 3)
        assert matches
        assert matches[0].assignment == {0: 0}
        assert matches[0].edge_scores == {}


class TestKLargerThanResults:
    def test_all_matchers_return_what_exists(self, movie_graph, movie_scorer):
        star = star_query(
            "Kathryn", [("directed", "?")], pivot_type="director",
            leaf_types=["film"],
        )
        q = Query()
        p = q.add_node("Kathryn", type="director")
        f = q.add_node("?", type="film")
        q.add_edge(p, f, "directed")
        expected = len(brute_force_topk(movie_scorer, q, 100))
        assert len(StarKSearch(movie_scorer).search(star, 100)) == expected
        assert len(GraphTA(movie_scorer).search(q, 100)) == expected
        assert len(BeliefPropagation(movie_scorer).search(q, 100)) == expected


class TestInvalidQueriesThroughFramework:
    def test_empty_query(self, movie_graph, movie_scorer):
        engine = Star(movie_graph, scorer=movie_scorer)
        with pytest.raises(QueryError):
            engine.search(Query(), 3)

    def test_disconnected_query(self, movie_graph, movie_scorer):
        q = Query()
        q.add_node("A")
        q.add_node("B")
        q.add_node("C")
        q.add_edge(0, 1)
        engine = Star(movie_graph, scorer=movie_scorer)
        with pytest.raises(QueryError):
            engine.search(q, 3)

    def test_bad_engine_name(self, movie_scorer):
        with pytest.raises(SearchError):
            StarDSearch(movie_scorer, engine="gpu")


class TestCandidateLimit:
    def test_limit_respected_and_results_valid(self, yago_graph, yago_scorer):
        from repro.query import star_workload

        query = star_workload(yago_graph, 1, seed=81)[0]
        star = StarQuery.from_query(query)
        limited = StarKSearch(yago_scorer, candidate_limit=5)
        matches = limited.search(star, 3)
        assert limited.stats.pivots_considered <= 5
        for m in matches:
            assert m.is_injective()

    def test_limit_one_still_works(self, movie_scorer):
        star = star_query("Brad Pitt", [("acted_in", "?")],
                          pivot_type="actor")
        matches = StarKSearch(movie_scorer, candidate_limit=1).search(star, 5)
        assert matches
        assert all(m.assignment[0] == 0 for m in matches)


class TestFaultInjection:
    """Injected substrate faults: structured errors or flagged partials.

    Contract (see repro.runtime.faults): without an anytime budget a
    fault surfaces as a ReproError subclass; with one, the engine records
    it on the budget and keeps returning best-so-far results.  Raw
    KeyError / RuntimeError must never escape a search call.
    """

    STAR = ("Brad", [("acted_in", "?")])

    def _star(self):
        return star_query(self.STAR[0], self.STAR[1], pivot_type="actor")

    def test_scorer_raise_strict_propagates(self, movie_scorer):
        bad = faulty(
            movie_scorer,
            specs=[FaultSpec("scorer.node_score", at_call=2, mode="raise")],
        )
        with pytest.raises(InjectedFaultError):
            StarKSearch(bad).search(self._star(), 3)

    def test_scorer_raise_anytime_flagged(self, movie_scorer):
        bad = faulty(
            movie_scorer,
            specs=[FaultSpec("scorer.node_score", at_call=2, mode="raise")],
        )
        matcher = StarKSearch(bad)
        budget = Budget(anytime=True)
        matcher.search(self._star(), 3, budget=budget)
        report = matcher.last_report
        assert report.degraded
        assert report.faults
        assert not report.completed

    def test_adjacency_raise_strict_propagates(self, movie_scorer):
        bad = faulty(
            movie_scorer,
            specs=[FaultSpec("graph.neighbors", at_call=0, mode="raise")],
        )
        with pytest.raises(InjectedFaultError):
            StarKSearch(bad).search(self._star(), 3)

    def test_adjacency_raise_anytime_flagged(self, movie_scorer):
        bad = faulty(
            movie_scorer,
            specs=[FaultSpec("graph.neighbors", at_call=0, mode="raise")],
        )
        matcher = StarKSearch(bad)
        budget = Budget(anytime=True)
        got = matcher.search(self._star(), 3, budget=budget)
        assert bad._injector.fired
        assert matcher.last_report.degraded
        for m in got:
            assert m.is_injective()

    def test_corrupt_score_detected(self, movie_scorer):
        bad = faulty(
            movie_scorer,
            specs=[FaultSpec("scorer.node_score", at_call=1, mode="corrupt")],
        )
        with pytest.raises(DataCorruptionError):
            StarKSearch(bad).search(self._star(), 3)

    def test_corrupt_adjacency_detected(self, movie_scorer):
        bad = faulty(
            movie_scorer,
            specs=[FaultSpec("graph.neighbors", at_call=0, mode="corrupt")],
        )
        with pytest.raises(DataCorruptionError):
            StarKSearch(bad).search(self._star(), 3)

    def test_corrupt_anytime_recorded(self, movie_scorer):
        bad = faulty(
            movie_scorer,
            specs=[FaultSpec("scorer.node_score", at_call=1, mode="corrupt")],
        )
        matcher = StarKSearch(bad)
        budget = Budget(anytime=True)
        matcher.search(self._star(), 3, budget=budget)
        assert matcher.last_report.degraded
        assert any("corrupted" in f for f in matcher.last_report.faults)

    def test_slow_scorer_hits_deadline(self, movie_scorer):
        bad = faulty(
            movie_scorer,
            specs=[FaultSpec(
                "scorer.node_score", at_call=0, mode="delay",
                delay_ms=1.0, repeat=True,
            )],
        )
        matcher = StarKSearch(bad)
        budget = Budget(deadline_ms=2, anytime=True)
        matcher.search(self._star(), 3, budget=budget)
        report = matcher.last_report
        assert not report.completed
        assert report.reason == "deadline"

    def test_deadline_zero_strict_raises(self, movie_scorer):
        from repro.errors import SearchTimeoutError

        with pytest.raises(SearchTimeoutError):
            StarKSearch(movie_scorer).search(
                self._star(), 3, budget=Budget(deadline_ms=0)
            )

    def test_deadline_zero_anytime_flagged(self, movie_scorer):
        matcher = StarKSearch(movie_scorer)
        matcher.search(self._star(), 3, budget=Budget(deadline_ms=0, anytime=True))
        assert not matcher.last_report.completed

    def test_stard_propagation_fault_anytime(self, movie_scorer):
        bad = faulty(
            movie_scorer,
            specs=[FaultSpec("graph.neighbors", at_call=0, mode="raise",
                             repeat=True)],
        )
        matcher = StarDSearch(bad, d=2)
        budget = Budget(anytime=True)
        got = matcher.search(self._star(), 3, budget=budget)
        assert matcher.last_report.degraded
        assert isinstance(got, list)

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_sweep_only_structured_errors(self, movie_scorer, seed):
        """No raw KeyError/RuntimeError may escape any engine."""
        star = self._star()
        engines = [
            lambda s: StarKSearch(s).search(star, 3),
            lambda s: StarDSearch(s, d=2).search(star, 3),
        ]
        for run in engines:
            bad = faulty(
                movie_scorer, seed=seed, n_faults=2,
                modes=("raise", "corrupt"), window=30,
            )
            try:
                result = run(bad)
            except ReproError:
                continue  # structured failure: acceptable without a budget
            assert isinstance(result, list)

    @pytest.mark.parametrize("seed", range(8))
    def test_seeded_sweep_anytime_never_raises(self, movie_scorer, seed):
        """With an anytime budget, faults become flagged partials."""
        star = self._star()
        for make in (
            lambda s: StarKSearch(s),
            lambda s: StarDSearch(s, d=2),
        ):
            bad = faulty(
                movie_scorer, seed=seed, n_faults=2,
                modes=("raise", "corrupt"), window=30,
            )
            matcher = make(bad)
            budget = Budget(anytime=True)
            got = matcher.search(star, 3, budget=budget)
            assert isinstance(got, list)
            report = matcher.last_report
            if bad._injector.fired:
                assert report.faults
                assert not report.completed
