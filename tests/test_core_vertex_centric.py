"""Tests for the vertex-centric (Pregel-style) propagation engine."""

import pytest

from repro.core.messages import propagate
from repro.core.vertex_centric import (
    PregelEngine,
    StardPropagation,
    VertexProgram,
    propagate_vertex_centric,
)
from repro.errors import SearchError
from repro.graph import KnowledgeGraph


def path_graph(n):
    g = KnowledgeGraph()
    for i in range(n):
        g.add_node(f"v{i}")
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class _Flood(VertexProgram):
    """Trivial program: every seeded vertex floods '1' for two rounds."""

    def initial_messages(self, graph):
        return {0: [1]}

    def compute(self, vertex, state, incoming, superstep):
        count = (state or 0) + len(incoming)
        return count, (incoming if superstep < 2 else [])


class TestEngine:
    def test_halts_when_no_messages(self):
        engine = PregelEngine(path_graph(5), num_workers=2)
        states = engine.run(_Flood(), max_supersteps=10)
        assert engine.supersteps_run <= 4
        assert states[0] >= 1

    def test_message_accounting(self):
        g = path_graph(3)
        engine = PregelEngine(g, num_workers=1)
        engine.run(_Flood(), max_supersteps=5)
        assert engine.messages_sent > 0
        assert engine.cross_partition_messages == 0  # single worker

    def test_cross_partition_counted(self):
        g = path_graph(6)
        engine = PregelEngine(g, num_workers=3)
        engine.run(_Flood(), max_supersteps=5)
        # Round-robin partitioning puts consecutive path vertices on
        # different workers: all traffic is cross-partition.
        assert engine.cross_partition_messages == engine.messages_sent

    def test_worker_count_never_changes_results(self):
        g = path_graph(8)
        results = []
        for workers in (1, 3, 5):
            layers, _engine = propagate_vertex_centric(
                g, {0: 0.9, 7: 0.4}, d=3, num_workers=workers
            )
            results.append(
                [sorted((v, t.s1) for v, t in layer.items())
                 for layer in layers]
            )
        assert results[0] == results[1] == results[2]

    def test_validation(self):
        g = path_graph(3)
        with pytest.raises(SearchError):
            PregelEngine(g, num_workers=0)
        with pytest.raises(SearchError):
            PregelEngine(g).run(_Flood(), max_supersteps=0)
        with pytest.raises(SearchError):
            StardPropagation({}, d=0)


class TestEquivalenceWithDirectPropagation:
    @pytest.mark.parametrize("d", [1, 2, 3])
    def test_path_graph(self, d):
        g = path_graph(7)
        seeds = {0: 0.9, 3: 0.5, 6: 0.7}
        direct = propagate(g, seeds, d)
        vc, _engine = propagate_vertex_centric(g, seeds, d)
        for hop in range(d + 1):
            assert set(direct[hop]) == set(vc[hop]), hop
            for v in direct[hop]:
                assert direct[hop][v].s1 == pytest.approx(vc[hop][v].s1)
                assert direct[hop][v].s2 == pytest.approx(vc[hop][v].s2)

    def test_real_graph(self, yago_graph, yago_scorer):
        from repro.core.candidates import node_candidates
        from repro.query import star_workload, StarQuery

        query = star_workload(yago_graph, 1, seed=71)[0]
        star = StarQuery.from_query(query)
        leaf = star.leaves[0][0]
        seeds = dict(node_candidates(yago_scorer, leaf))
        if not seeds:
            pytest.skip("no seeds for this workload query")
        direct = propagate(yago_graph, seeds, 2)
        vc, engine = propagate_vertex_centric(yago_graph, seeds, 2)
        for hop in range(3):
            assert set(direct[hop]) == set(vc[hop])
            for v in list(direct[hop])[:200]:
                assert direct[hop][v].s1 == pytest.approx(vc[hop][v].s1)
        # The Remark's bound: all propagation in <= d+1 rounds.
        assert engine.supersteps_run <= 3

    def test_combiner_bounds_inbox(self):
        """The Top2 combiner caps per-vertex work at 2 messages."""
        g = KnowledgeGraph()
        hub = g.add_node("hub")
        for i in range(10):
            leaf = g.add_node(f"l{i}")
            g.add_edge(hub, leaf)
        program = StardPropagation({i: 0.1 * i for i in range(1, 11)}, d=1)
        combined = program.combine([(0.1 * i, i) for i in range(1, 11)])
        assert len(combined) == 2
        assert combined[0][0] == pytest.approx(1.0)
        assert combined[1][0] == pytest.approx(0.9)
