"""Tests for the synonym / ontology / abbreviation / unit tables."""

import pytest

from repro.similarity import ontology


class TestSynonyms:
    def test_paper_example(self):
        assert ontology.are_synonyms("teacher", "educator")

    def test_symmetric(self):
        assert ontology.are_synonyms("doctor", "physician")
        assert ontology.are_synonyms("physician", "doctor")

    def test_identity(self):
        assert ontology.are_synonyms("anything", "anything")

    def test_unknown(self):
        assert not ontology.are_synonyms("teacher", "doctor")

    def test_case_insensitive(self):
        assert ontology.are_synonyms("Teacher", "EDUCATOR")

    def test_synonyms_of_includes_self(self):
        assert "teacher" in ontology.synonyms_of("teacher")

    def test_relation_synonyms(self):
        assert ontology.are_synonyms("acted_in", "starred_in")


class TestTypeOntology:
    def test_ancestors(self):
        assert ontology.type_ancestors("actor") == ["person", "agent"]

    def test_distance_equal(self):
        assert ontology.type_distance("film", "film") == 0

    def test_distance_parent(self):
        assert ontology.type_distance("actor", "person") == 1

    def test_distance_siblings(self):
        assert ontology.type_distance("actor", "director") == 2

    def test_distance_unrelated(self):
        assert ontology.type_distance("actor", "award") is None

    def test_is_subtype(self):
        assert ontology.is_subtype("actor", "person")
        assert ontology.is_subtype("actor", "agent")
        assert ontology.is_subtype("actor", "actor")
        assert not ontology.is_subtype("person", "actor")


class TestAbbreviations:
    def test_known_table(self):
        assert ontology.expand_abbreviation("intl") == "international"
        assert ontology.expand_abbreviation("Univ") == "university"
        assert ontology.expand_abbreviation("univ.") == "university"

    def test_unknown(self):
        assert ontology.expand_abbreviation("zzz") is None

    def test_is_abbreviation_table(self):
        assert ontology.is_abbreviation_of("intl", "international")

    def test_is_abbreviation_prefix(self):
        assert ontology.is_abbreviation_of("prod", "production")

    def test_not_abbreviation_of_itself(self):
        assert not ontology.is_abbreviation_of("film", "film")

    def test_short_prefix_rejected(self):
        assert not ontology.is_abbreviation_of("pr", "production")


class TestUnits:
    def test_canonical(self):
        assert ontology.to_canonical(5, "km") == ("m", 5000.0)
        assert ontology.to_canonical(1, "lb") == ("g", pytest.approx(453.592))

    def test_unknown_unit(self):
        assert ontology.to_canonical(5, "parsec") is None

    def test_comparable(self):
        assert ontology.units_comparable("km", "mi")
        assert not ontology.units_comparable("km", "kg")
        assert not ontology.units_comparable("km", "parsec")
