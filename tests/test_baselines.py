"""Tests for graphTA, BP and the brute-force oracle itself."""

import pytest

from repro.baselines import (
    BeliefPropagation,
    GraphTA,
    brute_force_matches,
    brute_force_topk,
    edge_match,
)
from repro.core import Star, StarKSearch
from repro.errors import SearchError
from repro.query import (
    Query,
    StarQuery,
    complex_workload,
    star_query,
    star_workload,
)


class TestBruteForce:
    def test_enumerates_all_matches(self, movie_scorer):
        star = star_query("?", [("acted_in", "?")], pivot_type="actor")
        q = Query()
        a = q.add_node("?", type="actor")
        b = q.add_node("?", type="film")
        q.add_edge(a, b, "acted_in")
        matches = brute_force_matches(movie_scorer, q)
        # Brad->Troy, Brad->Boyhood, Angelina->Troy.
        assert len(matches) == 3
        scores = [m.score for m in matches]
        assert scores == sorted(scores, reverse=True)

    def test_injectivity_enforced(self, movie_scorer):
        q = Query()
        a = q.add_node("Brad")
        b = q.add_node("Brad")
        q.add_edge(a, b, "?")
        for m in brute_force_matches(movie_scorer, q):
            assert m.is_injective()

    def test_non_injective_mode(self, movie_scorer):
        q = Query()
        a = q.add_node("?", type="film")
        b = q.add_node("?", type="actor")
        c = q.add_node("?", type="actor")
        q.add_edge(a, b, "acted_in")
        q.add_edge(a, c, "acted_in")
        strict = brute_force_matches(movie_scorer, q, injective=True)
        loose = brute_force_matches(movie_scorer, q, injective=False)
        assert len(loose) > len(strict)

    def test_d_bounded(self, movie_scorer):
        # movie maker -[2 hops via film]-> award (the Fig. 1 path match).
        q = Query()
        a = q.add_node("Richard", type="director")
        b = q.add_node("Academy Award", type="award")
        q.add_edge(a, b, "?")
        assert not brute_force_matches(movie_scorer, q, d=1)
        d2 = brute_force_matches(movie_scorer, q, d=2)
        assert d2
        assert d2[0].edge_hops[0] == 2

    def test_max_matches_guard(self, yago_scorer, yago_graph):
        q = Query()
        a = q.add_node("?")
        b = q.add_node("?")
        q.add_edge(a, b, "?")
        with pytest.raises(SearchError):
            brute_force_matches(yago_scorer, q, max_matches=10)


class TestEdgeMatch:
    def test_direct_edge_relation_scored(self, movie_scorer):
        from repro.similarity import Descriptor

        cache = {}
        score_hops = edge_match(movie_scorer, Descriptor("acted_in"), 0, 4, 1, cache)
        assert score_hops is not None
        score, hops = score_hops
        assert hops == 1 and score > 0.5

    def test_two_hop_decay(self, movie_scorer):
        from repro.similarity import Descriptor

        cache = {}
        # Richard (2) to Academy Award (7) via Boyhood.
        score_hops = edge_match(movie_scorer, Descriptor("?"), 2, 7, 2, cache)
        assert score_hops == (0.5, 2)

    def test_out_of_range(self, movie_scorer):
        from repro.similarity import Descriptor

        assert edge_match(movie_scorer, Descriptor("?"), 2, 7, 1, {}) is None

    def test_same_node(self, movie_scorer):
        from repro.similarity import Descriptor

        assert edge_match(movie_scorer, Descriptor("?"), 2, 2, 2, {}) is None


class TestGraphTA:
    @pytest.mark.parametrize("d", [1, 2])
    def test_matches_oracle_stars(self, yago_scorer, yago_graph, d):
        for query in star_workload(yago_graph, 6, seed=61):
            got = GraphTA(yago_scorer, d=d).search(query, 5)
            want = brute_force_topk(yago_scorer, query, 5, d=d)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            ), query.name

    def test_matches_oracle_cyclic(self, yago_scorer, yago_graph):
        for query in complex_workload(yago_graph, 3, shape=(4, 4), seed=62):
            got = GraphTA(yago_scorer).search(query, 4)
            want = brute_force_topk(yago_scorer, query, 4)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            )

    def test_agrees_with_star(self, yago_scorer, yago_graph):
        """The headline comparison: same answers, different speed."""
        for query in star_workload(yago_graph, 5, seed=63):
            ta = GraphTA(yago_scorer).search(query, 5)
            star = Star(yago_graph, scorer=yago_scorer).search(query, 5)
            assert [m.score for m in ta] == pytest.approx(
                [m.score for m in star]
            )

    def test_empty_candidates(self, yago_scorer):
        q = Query()
        q.add_node("zzzz-no-such-entity-zzzz")
        q2 = q.add_node("?")
        q.add_edge(0, q2)
        assert GraphTA(yago_scorer).search(q, 3) == []

    def test_k_validation(self, yago_scorer):
        q = Query()
        q.add_node("x")
        with pytest.raises(SearchError):
            GraphTA(yago_scorer).search(q, 0)

    def test_diagnostics_populated(self, yago_scorer, yago_graph):
        query = star_workload(yago_graph, 1, seed=64)[0]
        ta = GraphTA(yago_scorer)
        ta.search(query, 3)
        assert ta.anchors_expanded > 0


class TestBeliefPropagation:
    @pytest.mark.parametrize("d", [1, 2])
    def test_exact_on_trees(self, yago_scorer, yago_graph, d):
        """Paper: 'For acyclic queries, BP outputs the exact top-k'."""
        for query in star_workload(yago_graph, 6, seed=65):
            got = BeliefPropagation(yago_scorer, d=d).search(query, 5)
            want = brute_force_topk(yago_scorer, query, 5, d=d)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            ), query.name

    def test_cyclic_best_effort(self, yago_scorer, yago_graph):
        """On cyclic queries BP is approximate but usually finds top-1."""
        hits = 0
        queries = complex_workload(yago_graph, 4, shape=(4, 4), seed=66)
        for query in queries:
            got = BeliefPropagation(yago_scorer).search(query, 3)
            want = brute_force_topk(yago_scorer, query, 3)
            if got and want and abs(got[0].score - want[0].score) < 1e-9:
                hits += 1
        assert hits >= len(queries) - 1

    def test_results_injective_and_complete(self, yago_scorer, yago_graph):
        query = star_workload(yago_graph, 1, seed=67)[0]
        for m in BeliefPropagation(yago_scorer).search(query, 5):
            assert m.is_injective()
            assert set(m.assignment) == set(range(query.num_nodes))

    def test_iteration_counter(self, yago_scorer, yago_graph):
        query = star_workload(yago_graph, 1, seed=68)[0]
        bp = BeliefPropagation(yago_scorer)
        bp.search(query, 3)
        assert bp.iterations_run >= 1
        assert bp.pairwise_evaluated > 0

    def test_k_and_damping_validation(self, yago_scorer):
        q = Query()
        q.add_node("x")
        with pytest.raises(SearchError):
            BeliefPropagation(yago_scorer).search(q, 0)
        with pytest.raises(SearchError):
            BeliefPropagation(yago_scorer, damping=1.0)
        with pytest.raises(SearchError):
            BeliefPropagation(yago_scorer, d=0)
