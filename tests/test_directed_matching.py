"""Tests for directed (orientation-enforcing) matching mode."""

import pytest

from repro.baselines import (
    BeliefPropagation,
    GraphTA,
    brute_force_star,
    brute_force_topk,
)
from repro.core import Star, StarKSearch
from repro.errors import SearchError
from repro.graph import KnowledgeGraph
from repro.query import Query, StarQuery, star_workload
from repro.similarity import ScoringFunction


@pytest.fixture()
def oriented_graph():
    """Orientation matters: A -> B exists, B -> A does not."""
    g = KnowledgeGraph(name="oriented")
    a = g.add_node("Alpha", "person")
    b = g.add_node("Beta", "person")
    c = g.add_node("Gamma", "person")
    g.add_edge(a, b, "mentor_of")   # Alpha mentors Beta
    g.add_edge(c, a, "mentor_of")   # Gamma mentors Alpha
    return g


def mentor_query(src_label: str, dst_label: str) -> Query:
    q = Query()
    s = q.add_node(src_label, type="person")
    t = q.add_node(dst_label, type="person")
    q.add_edge(s, t, "mentor_of")
    return q


class TestOrientationSemantics:
    def test_directed_respects_orientation(self, oriented_graph):
        scorer = ScoringFunction(oriented_graph)
        forward = brute_force_topk(
            scorer, mentor_query("Alpha", "Beta"), 5, directed=True
        )
        backward = brute_force_topk(
            scorer, mentor_query("Beta", "Alpha"), 5, directed=True
        )
        assert forward and forward[0].assignment == {0: 0, 1: 1}
        # No data edge Beta -> Alpha: the oriented query has no top match
        # with those endpoints.
        assert all(m.assignment != {0: 1, 1: 0} for m in backward)

    def test_undirected_matches_both_ways(self, oriented_graph):
        scorer = ScoringFunction(oriented_graph)
        backward = brute_force_topk(
            scorer, mentor_query("Beta", "Alpha"), 5, directed=False
        )
        assert any(m.assignment == {0: 1, 1: 0} for m in backward)

    def test_directed_strictly_subsets_undirected(self, yago_graph, yago_scorer):
        for query in star_workload(yago_graph, 6, seed=131):
            directed = brute_force_topk(
                yago_scorer, query, 50, directed=True
            )
            undirected = brute_force_topk(
                yago_scorer, query, 500, directed=False
            )
            undirected_keys = {m.key() for m in undirected}
            for m in directed:
                assert m.key() in undirected_keys


class TestMatchersAgreeDirected:
    def test_stark_equals_oracle(self, yago_graph, yago_scorer):
        for query in star_workload(yago_graph, 6, seed=132):
            star = StarQuery.from_query(query)
            got = StarKSearch(yago_scorer, directed=True).search(star, 5)
            want = brute_force_star(yago_scorer, star, 5, directed=True)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            ), query.name

    def test_graphta_and_bp_equal_oracle(self, yago_graph, yago_scorer):
        for query in star_workload(yago_graph, 4, seed=133):
            want = [
                round(m.score, 8)
                for m in brute_force_topk(yago_scorer, query, 4, directed=True)
            ]
            ta = [
                round(m.score, 8)
                for m in GraphTA(yago_scorer, directed=True).search(query, 4)
            ]
            bp = [
                round(m.score, 8)
                for m in BeliefPropagation(
                    yago_scorer, directed=True
                ).search(query, 4)
            ]
            assert ta == want
            assert bp == want

    def test_framework_directed_join(self, yago_graph, yago_scorer):
        from repro.query import complex_workload

        for query in complex_workload(yago_graph, 3, shape=(4, 4), seed=134):
            engine = Star(yago_graph, scorer=yago_scorer, directed=True,
                          decomposition_method="maxdeg")
            got = engine.search(query, 3)
            want = brute_force_topk(yago_scorer, query, 3, directed=True)
            assert [round(m.score, 8) for m in got] == [
                round(m.score, 8) for m in want
            ]


class TestDirectedValidation:
    def test_directed_requires_d1(self, yago_scorer, yago_graph):
        with pytest.raises(SearchError):
            StarKSearch(yago_scorer, d=2, directed=True)
        with pytest.raises(SearchError):
            GraphTA(yago_scorer, d=2, directed=True)
        with pytest.raises(SearchError):
            BeliefPropagation(yago_scorer, d=2, directed=True)
        with pytest.raises(SearchError):
            Star(yago_graph, scorer=yago_scorer, d=2, directed=True)

    def test_edge_match_directed_d2_rejected(self, yago_scorer):
        from repro.baselines import edge_match
        from repro.similarity import Descriptor

        with pytest.raises(SearchError):
            edge_match(yago_scorer, Descriptor("?"), 0, 1, 2, {}, directed=True)
