"""Unit tests for the core knowledge-graph structure."""

import pytest

from repro.errors import GraphError
from repro.graph import KnowledgeGraph
from repro.graph.knowledge_graph import subgraph_view
from repro.textutil import tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Brad Pitt (actor)") == ["brad", "pitt", "actor"]

    def test_empty(self):
        assert tokenize("") == []

    def test_numbers_kept(self):
        assert tokenize("Blade Runner 2049") == ["blade", "runner", "2049"]

    def test_underscores_split(self):
        assert tokenize("born_in") == ["born", "in"]


class TestConstruction:
    def test_add_node_returns_sequential_ids(self):
        g = KnowledgeGraph()
        assert g.add_node("A") == 0
        assert g.add_node("B") == 1
        assert g.num_nodes == 2

    def test_add_edge_links_both_directions(self):
        g = KnowledgeGraph()
        a, b = g.add_node("A"), g.add_node("B")
        eid = g.add_edge(a, b, "likes")
        assert (b, eid) in g.neighbors(a)
        assert (a, eid) in g.neighbors(b)
        assert g.out_neighbors(a) == [(b, eid)]
        assert g.in_neighbors(b) == [(a, eid)]
        assert g.out_neighbors(b) == []

    def test_edge_data(self):
        g = KnowledgeGraph()
        a, b = g.add_node("A"), g.add_node("B")
        eid = g.add_edge(a, b, "likes", since=2001)
        src, dst, data = g.edge(eid)
        assert (src, dst) == (a, b)
        assert data.relation == "likes"
        assert data.attrs == {"since": 2001}

    def test_self_loop_rejected(self):
        g = KnowledgeGraph()
        a = g.add_node("A")
        with pytest.raises(GraphError):
            g.add_edge(a, a)

    def test_bad_endpoint_rejected(self):
        g = KnowledgeGraph()
        a = g.add_node("A")
        with pytest.raises(GraphError):
            g.add_edge(a, 5)

    def test_parallel_edges_allowed(self):
        g = KnowledgeGraph()
        a, b = g.add_node("A"), g.add_node("B")
        g.add_edge(a, b, "r1")
        g.add_edge(a, b, "r2")
        assert g.degree(a) == 2

    def test_max_degree_tracked(self):
        g = KnowledgeGraph()
        hub = g.add_node("hub")
        for i in range(5):
            leaf = g.add_node(f"leaf{i}")
            g.add_edge(hub, leaf)
        assert g.max_degree == 5


class TestAccessErrors:
    def test_unknown_node(self):
        g = KnowledgeGraph()
        with pytest.raises(GraphError):
            g.node(0)

    def test_unknown_edge(self):
        g = KnowledgeGraph()
        with pytest.raises(GraphError):
            g.edge(0)

    def test_negative_node_id(self):
        g = KnowledgeGraph()
        g.add_node("A")
        with pytest.raises(GraphError):
            g.neighbors(-1)

    def test_contains(self):
        g = KnowledgeGraph()
        g.add_node("A")
        assert 0 in g
        assert 1 not in g
        assert "x" not in g


class TestIndexes:
    def test_token_index(self, movie_graph):
        hits = movie_graph.nodes_with_token("brad")
        assert len(hits) == 1
        assert movie_graph.node(next(iter(hits))).name == "Brad Pitt"

    def test_token_index_includes_type_and_keywords(self):
        g = KnowledgeGraph()
        v = g.add_node("X", "actor", ["drama"])
        assert v in g.nodes_with_token("actor")
        assert v in g.nodes_with_token("drama")

    def test_nodes_matching_any(self, movie_graph):
        hits = movie_graph.nodes_matching_any(["brad", "kathryn"])
        names = {movie_graph.node(v).name for v in hits}
        assert names == {"Brad Pitt", "Kathryn Bigelow"}

    def test_type_index(self, movie_graph):
        actors = movie_graph.nodes_of_type("actor")
        assert {movie_graph.node(v).name for v in actors} == {
            "Brad Pitt", "Angelina Jolie"
        }

    def test_types_and_relations(self, movie_graph):
        assert set(movie_graph.types()) >= {"actor", "director", "film", "award"}
        assert "acted_in" in movie_graph.relations()

    def test_vocabulary(self, movie_graph):
        assert "pitt" in movie_graph.vocabulary()

    def test_unknown_token_empty(self, movie_graph):
        assert movie_graph.nodes_with_token("nonexistent") == frozenset()


class TestNodeData:
    def test_tokens(self, movie_graph):
        data = movie_graph.node(0)
        assert data.tokens() >= {"brad", "pitt", "actor", "drama"}

    def test_describe(self, movie_graph):
        text = movie_graph.describe(0)
        assert "Brad Pitt" in text and "actor" in text


class TestSubgraphView:
    def test_induced_subgraph(self, movie_graph):
        sub = subgraph_view(movie_graph, [0, 4, 5])  # Brad, Troy, Boyhood
        assert sub.num_nodes == 3
        # Brad-Troy and Brad-Boyhood edges survive.
        assert sub.num_edges == 2
        assert {sub.node(v).name for v in sub.nodes()} == {
            "Brad Pitt", "Troy", "Boyhood"
        }

    def test_empty_selection(self, movie_graph):
        sub = subgraph_view(movie_graph, [])
        assert sub.num_nodes == 0
        assert sub.num_edges == 0

    def test_repr(self, movie_graph):
        assert "movies" in repr(movie_graph)
