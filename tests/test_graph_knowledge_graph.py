"""Unit tests for the core knowledge-graph structure."""

import pytest

from repro.errors import GraphError
from repro.graph import KnowledgeGraph
from repro.graph.knowledge_graph import subgraph_view
from repro.textutil import tokenize


class TestTokenize:
    def test_basic(self):
        assert tokenize("Brad Pitt (actor)") == ["brad", "pitt", "actor"]

    def test_empty(self):
        assert tokenize("") == []

    def test_numbers_kept(self):
        assert tokenize("Blade Runner 2049") == ["blade", "runner", "2049"]

    def test_underscores_split(self):
        assert tokenize("born_in") == ["born", "in"]


class TestConstruction:
    def test_add_node_returns_sequential_ids(self):
        g = KnowledgeGraph()
        assert g.add_node("A") == 0
        assert g.add_node("B") == 1
        assert g.num_nodes == 2

    def test_add_edge_links_both_directions(self):
        g = KnowledgeGraph()
        a, b = g.add_node("A"), g.add_node("B")
        eid = g.add_edge(a, b, "likes")
        assert (b, eid) in g.neighbors(a)
        assert (a, eid) in g.neighbors(b)
        assert g.out_neighbors(a) == [(b, eid)]
        assert g.in_neighbors(b) == [(a, eid)]
        assert g.out_neighbors(b) == []

    def test_edge_data(self):
        g = KnowledgeGraph()
        a, b = g.add_node("A"), g.add_node("B")
        eid = g.add_edge(a, b, "likes", since=2001)
        src, dst, data = g.edge(eid)
        assert (src, dst) == (a, b)
        assert data.relation == "likes"
        assert data.attrs == {"since": 2001}

    def test_self_loop_rejected(self):
        g = KnowledgeGraph()
        a = g.add_node("A")
        with pytest.raises(GraphError):
            g.add_edge(a, a)

    def test_bad_endpoint_rejected(self):
        g = KnowledgeGraph()
        a = g.add_node("A")
        with pytest.raises(GraphError):
            g.add_edge(a, 5)

    def test_parallel_edges_allowed(self):
        g = KnowledgeGraph()
        a, b = g.add_node("A"), g.add_node("B")
        g.add_edge(a, b, "r1")
        g.add_edge(a, b, "r2")
        assert g.degree(a) == 2

    def test_max_degree_tracked(self):
        g = KnowledgeGraph()
        hub = g.add_node("hub")
        for i in range(5):
            leaf = g.add_node(f"leaf{i}")
            g.add_edge(hub, leaf)
        assert g.max_degree == 5


class TestAccessErrors:
    def test_unknown_node(self):
        g = KnowledgeGraph()
        with pytest.raises(GraphError):
            g.node(0)

    def test_unknown_edge(self):
        g = KnowledgeGraph()
        with pytest.raises(GraphError):
            g.edge(0)

    def test_negative_node_id(self):
        g = KnowledgeGraph()
        g.add_node("A")
        with pytest.raises(GraphError):
            g.neighbors(-1)

    def test_contains(self):
        g = KnowledgeGraph()
        g.add_node("A")
        assert 0 in g
        assert 1 not in g
        assert "x" not in g


class TestIndexes:
    def test_token_index(self, movie_graph):
        hits = movie_graph.nodes_with_token("brad")
        assert len(hits) == 1
        assert movie_graph.node(next(iter(hits))).name == "Brad Pitt"

    def test_token_index_includes_type_and_keywords(self):
        g = KnowledgeGraph()
        v = g.add_node("X", "actor", ["drama"])
        assert v in g.nodes_with_token("actor")
        assert v in g.nodes_with_token("drama")

    def test_nodes_matching_any(self, movie_graph):
        hits = movie_graph.nodes_matching_any(["brad", "kathryn"])
        names = {movie_graph.node(v).name for v in hits}
        assert names == {"Brad Pitt", "Kathryn Bigelow"}

    def test_type_index(self, movie_graph):
        actors = movie_graph.nodes_of_type("actor")
        assert {movie_graph.node(v).name for v in actors} == {
            "Brad Pitt", "Angelina Jolie"
        }

    def test_types_and_relations(self, movie_graph):
        assert set(movie_graph.types()) >= {"actor", "director", "film", "award"}
        assert "acted_in" in movie_graph.relations()

    def test_vocabulary(self, movie_graph):
        assert "pitt" in movie_graph.vocabulary()

    def test_unknown_token_empty(self, movie_graph):
        assert movie_graph.nodes_with_token("nonexistent") == frozenset()


class TestNodeData:
    def test_tokens(self, movie_graph):
        data = movie_graph.node(0)
        assert data.tokens() >= {"brad", "pitt", "actor", "drama"}

    def test_describe(self, movie_graph):
        text = movie_graph.describe(0)
        assert "Brad Pitt" in text and "actor" in text


class TestSubgraphView:
    def test_induced_subgraph(self, movie_graph):
        sub = subgraph_view(movie_graph, [0, 4, 5])  # Brad, Troy, Boyhood
        assert sub.num_nodes == 3
        # Brad-Troy and Brad-Boyhood edges survive.
        assert sub.num_edges == 2
        assert {sub.node(v).name for v in sub.nodes()} == {
            "Brad Pitt", "Troy", "Boyhood"
        }

    def test_empty_selection(self, movie_graph):
        sub = subgraph_view(movie_graph, [])
        assert sub.num_nodes == 0
        assert sub.num_edges == 0

    def test_repr(self, movie_graph):
        assert "movies" in repr(movie_graph)


class TestLazyMaxDegree:
    """Regression: node removal defers (not skips) the max-degree rescan."""

    def _hub_graph(self):
        g = KnowledgeGraph()
        hub = g.add_node("hub", "actor")
        spokes = [g.add_node(f"spoke {i}", "actor") for i in range(6)]
        for s in spokes:
            g.add_edge(hub, s, "r")
        g.add_edge(spokes[0], spokes[1], "r")
        return g, hub, spokes

    def test_tombstoned_hub_lowers_max_degree(self):
        g, hub, _spokes = self._hub_graph()
        assert g.max_degree == 6
        g.remove_node(hub)
        # The rescan is deferred (dirty flag), but the property resolves.
        assert g._max_degree_dirty is True
        assert g.max_degree == 1
        assert g._max_degree_dirty is False

    def test_low_degree_removal_skips_rescan(self):
        g, _hub, _spokes = self._hub_graph()
        x = g.add_node("x", "actor")
        y = g.add_node("y", "actor")
        g.add_edge(x, y, "r")
        assert g.max_degree == 6  # resolve anything pending
        g.remove_node(x)  # it and its neighbor are far below the max
        assert g._max_degree_dirty is False
        assert g.max_degree == 6

    def test_max_neighbor_removal_triggers_rescan(self):
        g, _hub, spokes = self._hub_graph()
        assert g.max_degree == 6
        g.remove_node(spokes[5])  # neighbor of the max-degree hub
        assert g._max_degree_dirty is True
        assert g.max_degree == 5

    def test_removal_cascade_defers_until_read(self):
        g, hub, spokes = self._hub_graph()
        g.remove_node(hub)
        g.remove_node(spokes[0])
        g.remove_node(spokes[1])
        assert g.max_degree == 0
        assert g.num_nodes == 4

    def test_add_edge_stats_exact_while_dirty(self):
        g = KnowledgeGraph()
        a, b, c = g.add_node("a"), g.add_node("b"), g.add_node("c")
        g.add_edge(a, b, "r")
        g.add_edge(a, c, "r")
        g.remove_node(a)  # true max drops 2 -> 0, rescan deferred
        assert g._max_degree_dirty
        eid = g.add_edge(b, c, "r")
        # add_edge resolved the stale maximum before comparing, so the
        # new degree-1 edge correctly registers as the (new) maximum.
        assert not g._max_degree_dirty
        assert g.max_degree == 1
        delta = [d for d in g.journal.entries() if d.kind == "add_edge"][-1]
        assert delta.stats_changed is True
        g.remove_edge(eid)
        assert g.max_degree == 0

    def test_remove_edge_recheck_honors_dirty_flag(self):
        g, hub, spokes = self._hub_graph()
        g.remove_node(hub)  # max stale at 6, dirty
        eid = [e for e, _s, _d in g.edges()][0]  # spoke0 - spoke1
        g.remove_edge(eid)
        assert g._max_degree_dirty is False
        assert g.max_degree == 0

    def test_snapshot_saves_resolved_max_degree(self, tmp_path):
        g, hub, _spokes = self._hub_graph()
        g.remove_node(hub)  # dirty at save time
        path = tmp_path / "g.kgs"
        g.save(path)
        loaded = KnowledgeGraph.load(path)
        assert loaded._max_degree_dirty is False
        assert loaded.max_degree == 1
        assert loaded.max_degree == g.max_degree


class TestSubtypeClosureImmutability:
    """``nodes_of_subtype`` returns immutable views on every path."""

    def _typed_graph(self):
        g = KnowledgeGraph()
        g.add_node("A", "actor")
        g.add_node("D", "director")
        g.add_node("P", "person")
        g.add_node("F", "film")
        return g

    def test_fresh_and_cached_results_are_frozenset(self):
        g = self._typed_graph()
        first = g.nodes_of_subtype("person")
        assert isinstance(first, frozenset)
        assert isinstance(g.nodes_of_subtype("person"), frozenset)
        assert isinstance(g.nodes_of_subtype(""), frozenset)
        assert isinstance(g.nodes_of_subtype("no-such-type"), frozenset)

    def test_caller_cannot_corrupt_closure(self):
        g = self._typed_graph()
        view = g.nodes_of_subtype("person")
        with pytest.raises(AttributeError):
            view.add(999)  # frozenset: no mutation API
        assert g.nodes_of_subtype("person") == view

    def test_incrementally_maintained_closure_stays_immutable(self):
        g = self._typed_graph()
        before = g.nodes_of_subtype("person")
        new = g.add_node("N", "actor")  # joins the cached person closure
        after = g.nodes_of_subtype("person")
        assert isinstance(after, frozenset)
        assert new in after
        assert before == after - {new}  # old view unaffected (no aliasing)
        g.remove_node(new)
        shrunk = g.nodes_of_subtype("person")
        assert isinstance(shrunk, frozenset)
        assert shrunk == before

    def test_snapshot_reload_closure_immutable(self, tmp_path):
        g = self._typed_graph()
        g.nodes_of_subtype("person")  # populate the cache pre-save
        path = tmp_path / "g.kgs"
        g.save(path)
        loaded = KnowledgeGraph.load(path)
        view = loaded.nodes_of_subtype("person")
        assert isinstance(view, frozenset)
        assert view == g.nodes_of_subtype("person")
