"""Tests for starjoin: alpha-scheme validity and join exactness."""

import pytest

from repro.baselines import brute_force_topk
from repro.core import StarJoin, alpha_weights
from repro.core.framework import Star
from repro.errors import SearchError
from repro.query import complex_workload, decompose, Query


def cycle4() -> Query:
    q = Query(name="cycle4")
    for i in range(4):
        q.add_node(f"n{i}")
    for i in range(4):
        q.add_edge(i, (i + 1) % 4)
    return q


class TestAlphaWeights:
    def test_weights_sum_to_one_per_node(self, yago_scorer):
        query = cycle4()
        for alpha in (0.0, 0.3, 0.5, 1.0):
            decomposition = decompose(query, "simsize")
            weights = alpha_weights(decomposition, alpha)
            totals = {}
            for w in weights:
                for qid, weight in w.items():
                    totals[qid] = totals.get(qid, 0.0) + weight
            for qid, total in totals.items():
                assert total == pytest.approx(1.0), qid

    def test_exclusive_nodes_weight_one(self, yago_scorer):
        query = cycle4()
        decomposition = decompose(query, "simsize")
        weights = alpha_weights(decomposition, 0.3)
        joint = decomposition.joint_nodes()
        for star, w in zip(decomposition.stars, weights):
            for qid in star.node_ids():
                if qid not in joint:
                    assert w[qid] == 1.0

    def test_invalid_alpha(self, yago_scorer):
        decomposition = decompose(cycle4(), "simsize")
        with pytest.raises(SearchError):
            alpha_weights(decomposition, 1.5)


class TestJoinExactness:
    @pytest.mark.parametrize("method", ["rand", "maxdeg", "simsize", "simdec"])
    @pytest.mark.parametrize("alpha", [0.2, 0.5, 0.8])
    def test_matches_oracle(self, yago_scorer, yago_graph, method, alpha):
        queries = complex_workload(yago_graph, 4, shape=(4, 4), seed=41)
        for query in queries:
            engine = Star(
                yago_graph, scorer=yago_scorer, alpha=alpha,
                decomposition_method=method,
            )
            got = engine.search(query, 4)
            want = brute_force_topk(yago_scorer, query, 4)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            ), (query.name, method, alpha)

    def test_d2_join_matches_oracle(self, yago_scorer, yago_graph):
        queries = complex_workload(yago_graph, 3, shape=(3, 3), seed=42)
        for query in queries:
            engine = Star(yago_graph, scorer=yago_scorer, d=2,
                          decomposition_method="maxdeg")
            got = engine.search(query, 3)
            want = brute_force_topk(yago_scorer, query, 3, d=2)
            assert [m.score for m in got] == pytest.approx(
                [m.score for m in want]
            )

    def test_joined_scores_equal_breakdown(self, yago_scorer, yago_graph):
        """Weighted star scores must recombine into exact Eq. 2 totals."""
        query = complex_workload(yago_graph, 1, shape=(4, 4), seed=43)[0]
        engine = Star(yago_graph, scorer=yago_scorer, alpha=0.3)
        for match in engine.search(query, 5):
            recomputed = sum(match.node_scores.values()) + sum(
                match.edge_scores.values()
            )
            assert match.score == pytest.approx(recomputed)

    def test_results_are_valid_matches(self, yago_scorer, yago_graph):
        query = complex_workload(yago_graph, 1, shape=(4, 5), seed=44)[0]
        engine = Star(yago_graph, scorer=yago_scorer)
        for match in engine.search(query, 5):
            assert match.is_injective()
            assert set(match.assignment) == set(range(query.num_nodes))
            assert set(match.edge_scores) == {e.id for e in query.edges}


class TestJoinMechanics:
    def test_no_duplicate_results(self, yago_scorer, yago_graph):
        query = complex_workload(yago_graph, 1, shape=(4, 4), seed=45)[0]
        engine = Star(yago_graph, scorer=yago_scorer)
        matches = engine.search(query, 10)
        keys = [m.key() for m in matches]
        assert len(keys) == len(set(keys))

    def test_depth_tracked(self, yago_scorer, yago_graph):
        query = complex_workload(yago_graph, 1, shape=(4, 4), seed=46)[0]
        engine = Star(yago_graph, scorer=yago_scorer)
        engine.search(query, 5)
        assert engine.total_depth is not None
        assert engine.total_depth >= 2  # at least one fetch per star
        assert len(engine.last_join.last_depths) == \
            engine.last_decomposition.num_stars

    def test_unanswerable_star_returns_empty(self, yago_scorer, yago_graph):
        query = Query(name="impossible")
        a = query.add_node("zzzz-does-not-exist-zzzz")
        b = query.add_node("?")
        c = query.add_node("?")
        query.add_edge(a, b)
        query.add_edge(b, c)
        query.add_edge(a, c)
        engine = Star(yago_graph, scorer=yago_scorer)
        assert engine.search(query, 3) == []

    def test_k_validation(self, yago_scorer, yago_graph):
        join = StarJoin(yago_scorer)
        decomposition = decompose(cycle4(), "simsize")
        with pytest.raises(SearchError):
            join.join(decomposition, 0)

    def test_invalid_alpha_rejected(self, yago_scorer):
        with pytest.raises(SearchError):
            StarJoin(yago_scorer, alpha=-0.1)
