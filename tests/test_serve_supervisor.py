"""Supervised worker pool tests: payload execution, crash recovery."""

import time

import pytest

from repro.perf.parallel import fork_available
from repro.serve import (
    EngineContext,
    ForkWorkerPool,
    ThreadWorkerPool,
    execute_payload,
    make_pool,
)
from repro.errors import ReproError

QUERY = "(Brad:actor) -[acted_in]- (?:film)"

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="fork start method unavailable")


class TestExecutePayload:
    def test_ok_result_shape(self, movie_graph):
        ctx = EngineContext(movie_graph)
        result = execute_payload(ctx, {"query": QUERY, "k": 2})
        assert result["ok"] is True
        assert result["degraded"] is False
        assert len(result["matches"]) == 2
        for match in result["matches"]:
            assert set(match) == {"assignment", "score"}
        assert result["report"] is None or isinstance(result["report"], dict)

    def test_semicolons_become_newlines(self, movie_graph):
        ctx = EngineContext(movie_graph)
        two_line = ("(?m:director) -[collaborated_with]- (Brad:actor);"
                    "(?m) -[won]- (?:award)")
        result = execute_payload(ctx, {"query": two_line, "k": 1})
        assert result["ok"] is True

    def test_parse_error_is_structured(self, movie_graph):
        ctx = EngineContext(movie_graph)
        result = execute_payload(ctx, {"query": "not a pattern", "k": 1})
        assert result["ok"] is False
        assert result["error_kind"] == "QueryError"

    def test_budget_spec_reaches_the_engine(self, movie_graph):
        ctx = EngineContext(movie_graph)
        result = execute_payload(ctx, {
            "query": QUERY, "k": 2,
            "budget_spec": {"max_nodes": 0, "anytime": True},
        })
        assert result["ok"] is True
        assert result["degraded"] is True
        assert result["report"]["completed"] is False

    def test_exact_mode_fault_escapes_as_error(self, movie_graph):
        ctx = EngineContext(movie_graph)
        result = execute_payload(ctx, {
            "query": QUERY, "k": 2,
            "budget_spec": {"deadline_ms": 1000.0, "anytime": False},
            "fault_specs": [{"site": "scorer.node_score", "mode": "raise",
                             "repeat": True}],
        })
        assert result["ok"] is False
        assert result["error_kind"] == "InjectedFaultError"

    def test_anytime_budget_absorbs_fault_as_degraded(self, movie_graph):
        ctx = EngineContext(movie_graph)
        result = execute_payload(ctx, {
            "query": QUERY, "k": 2,
            "budget_spec": {"deadline_ms": 1000.0, "anytime": True},
            "fault_specs": [{"site": "scorer.node_score", "mode": "raise"}],
        })
        assert result["ok"] is True
        assert result["degraded"] is True


class TestThreadPool:
    def test_submit_and_stats(self, movie_graph):
        pool = ThreadWorkerPool(movie_graph, size=2).start()
        try:
            result = pool.submit({"query": QUERY, "k": 2}).result(timeout=30)
            assert result["ok"] is True
            assert pool.alive() == 2
            assert pool.stats()["backend"] == "thread"
        finally:
            pool.stop()

    def test_submit_before_start_fails_fast(self, movie_graph):
        pool = ThreadWorkerPool(movie_graph, size=1)
        with pytest.raises(ReproError):
            pool.submit({"query": QUERY, "k": 1}).result(timeout=5)


@needs_fork
class TestForkPool:
    @pytest.fixture()
    def pool(self, movie_graph):
        pool = ForkWorkerPool(movie_graph, size=2).start()
        yield pool
        pool.stop()

    def test_clean_submits(self, pool):
        futures = [pool.submit({"query": QUERY, "k": 2}) for _ in range(6)]
        results = [f.result(timeout=30) for f in futures]
        assert all(r["ok"] for r in results)
        scores = {tuple(m["score"] for m in r["matches"]) for r in results}
        assert len(scores) == 1  # identical answers from every worker
        assert pool.stats()["worker_crashes"] == 0

    def test_crash_is_detected_requeued_and_replenished(self, pool):
        crash = {
            "query": QUERY, "k": 2,
            "fault_specs": [{"site": "scorer.node_score", "mode": "crash"}],
        }
        result = pool.submit(crash).result(timeout=30)
        # The re-queued attempt has the crash spec stripped, so the
        # caller still gets a valid answer.
        assert result["ok"] is True
        stats = pool.stats()
        assert stats["worker_crashes"] >= 1
        assert stats["requeued"] >= 1
        assert stats["replacements"] >= 1
        # The pool replenished back to full strength.
        deadline = time.monotonic() + 10.0
        while pool.alive() < pool.size and time.monotonic() < deadline:
            time.sleep(0.05)
        assert pool.alive() == pool.size
        # And survivors still serve.
        assert pool.submit({"query": QUERY, "k": 1}).result(timeout=30)["ok"]

    def test_size_validation(self, movie_graph):
        with pytest.raises(ValueError):
            ForkWorkerPool(movie_graph, size=0)


class TestMakePool:
    def test_unknown_backend_rejected(self, movie_graph):
        with pytest.raises(ReproError):
            make_pool(movie_graph, backend="greenlet")

    def test_auto_picks_a_backend(self, movie_graph):
        pool = make_pool(movie_graph, size=1, backend="auto")
        expected = "fork" if fork_available() else "thread"
        assert pool.backend == expected

    def test_thread_is_always_available(self, movie_graph):
        assert make_pool(movie_graph, backend="thread").backend == "thread"
