"""Tests for the neighborhood-sketch accelerator."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import StarKSearch
from repro.errors import GraphError
from repro.graph import KnowledgeGraph
from repro.graph.sketch import BloomSignature, NeighborhoodSketch
from repro.query import StarQuery, star_workload


class TestBloomSignature:
    def test_no_false_negatives(self):
        sig = BloomSignature()
        sig.add_all([1, 5, 900, 12345])
        for element in (1, 5, 900, 12345):
            assert sig.might_contain(element)

    def test_absent_usually_rejected(self):
        sig = BloomSignature(num_bits=256)
        sig.add_all(range(10))
        rejected = sum(
            1 for x in range(1000, 1200) if not sig.might_contain(x)
        )
        assert rejected > 150  # low false-positive rate at this load

    def test_disjoint_certificate_is_sound(self):
        a = BloomSignature()
        a.add_all([1, 2, 3])
        b = BloomSignature()
        b.add_all([3, 4, 5])
        # They share element 3, so they can never look disjoint.
        assert not a.disjoint_from(b)

    @given(
        st.frozensets(st.integers(min_value=0, max_value=5000), max_size=20),
        st.frozensets(st.integers(min_value=0, max_value=5000), max_size=20),
    )
    @settings(max_examples=100, deadline=None)
    def test_disjointness_soundness_property(self, xs, ys):
        """disjoint_from == True must imply truly disjoint sets."""
        a = BloomSignature()
        a.add_all(xs)
        b = BloomSignature()
        b.add_all(ys)
        if a.disjoint_from(b):
            assert not (xs & ys)

    def test_saturation(self):
        sig = BloomSignature(num_bits=64)
        assert sig.saturation() == 0.0
        sig.add_all(range(100))
        assert sig.saturation() > 0.8

    def test_invalid_params(self):
        with pytest.raises(GraphError):
            BloomSignature(num_bits=0)


class TestNeighborhoodSketch:
    def test_pivot_may_match_soundness(self, movie_graph):
        sketch = NeighborhoodSketch(movie_graph)
        # Brad's (node 0) neighbors include Troy (4); candidate set {4}
        # must never be pruned for pivot 0.
        leaf_sig = sketch.candidate_signature([4])
        assert sketch.pivot_may_match(0, [leaf_sig])

    def test_pruning_fires_on_non_neighbors(self, movie_graph):
        sketch = NeighborhoodSketch(movie_graph)
        # Venice (9) has exactly one neighbor: Brad (0).  A candidate set
        # far from it should usually be prunable.
        leaf_sig = sketch.candidate_signature([6])  # Hurt Locker
        assert not sketch.pivot_may_match(9, [leaf_sig])

    def test_memory_estimate(self, movie_graph):
        sketch = NeighborhoodSketch(movie_graph, num_bits=256)
        assert sketch.memory_bytes() == movie_graph.num_nodes * 32


class TestStarKIntegration:
    def test_results_unchanged_with_sketch(self, yago_graph, yago_scorer):
        sketch = NeighborhoodSketch(yago_graph)
        for query in star_workload(yago_graph, 8, seed=121):
            star = StarQuery.from_query(query)
            plain = StarKSearch(yago_scorer).search(star, 5)
            sketched = StarKSearch(yago_scorer, sketch=sketch).search(star, 5)
            assert [m.score for m in plain] == pytest.approx(
                [m.score for m in sketched]
            )

    def test_sketch_prunes_some_pivots(self, yago_graph, yago_scorer):
        sketch = NeighborhoodSketch(yago_graph)
        pruned = 0
        for query in star_workload(yago_graph, 10, seed=122):
            star = StarQuery.from_query(query)
            matcher = StarKSearch(yago_scorer, sketch=sketch)
            matcher.search(star, 5)
            pruned += matcher.stats.pivots_sketch_pruned
        assert pruned > 0

    def test_sketch_true_builds_internally(self, movie_graph, movie_scorer):
        from repro.query import star_query

        matcher = StarKSearch(movie_scorer, sketch=True)
        star = star_query("Brad", [("acted_in", "?")], pivot_type="actor")
        assert matcher.search(star, 2)

    def test_sketch_ignored_at_d2(self, yago_graph, yago_scorer):
        """At d >= 2 leaf matches need not be neighbors: no pruning."""
        sketch = NeighborhoodSketch(yago_graph)
        query = star_workload(yago_graph, 1, seed=123)[0]
        star = StarQuery.from_query(query)
        matcher = StarKSearch(yago_scorer, d=2, sketch=sketch)
        matcher.search(star, 3)
        assert matcher.stats.pivots_sketch_pruned == 0
