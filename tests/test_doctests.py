"""Run the library's embedded doctests (docstring examples stay honest)."""

import doctest

import pytest

import repro.core.matches
import repro.graph.knowledge_graph
import repro.query.model
import repro.textutil

MODULES = [
    repro.textutil,
    repro.graph.knowledge_graph,
    repro.query.model,
    repro.core.matches,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures"
    assert results.attempted > 0, "module has no doctests to run"
