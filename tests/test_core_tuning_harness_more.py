"""Additional coverage: tuning surfaces, harness result objects."""

import pytest

from repro.core.tuning import TuningResult, tune_parameters
from repro.eval.harness import AlgorithmResult, JoinRunResult, time_algorithm
from repro.query import complex_workload, star_workload


class TestTuningSurface:
    def test_grid_is_complete_cartesian(self, yago_scorer, yago_graph):
        workload = complex_workload(yago_graph, 1, shape=(4, 4), seed=201)
        result = tune_parameters(
            yago_scorer, workload, k=2,
            alphas=[0.25, 0.75], lams=[0.0, 1.0, 2.0],
        )
        assert set(result.grid) == {
            (a, l) for a in (0.25, 0.75) for l in (0.0, 1.0, 2.0)
        }

    def test_result_is_a_grid_minimum(self, yago_scorer, yago_graph):
        workload = complex_workload(yago_graph, 1, shape=(4, 4), seed=202)
        result = tune_parameters(
            yago_scorer, workload, k=2, alphas=[0.2, 0.8], lams=[0.5],
        )
        assert result.grid[(result.alpha, result.lam)] == result.total_depth

    def test_depths_deterministic(self, yago_scorer, yago_graph):
        """Depth depends only on seeds, so tuning twice agrees exactly."""
        workload = complex_workload(yago_graph, 1, shape=(4, 4), seed=203)
        a = tune_parameters(yago_scorer, workload, k=2,
                            alphas=[0.5], lams=[1.0])
        b = tune_parameters(yago_scorer, workload, k=2,
                            alphas=[0.5], lams=[1.0])
        assert a.grid == b.grid


class TestHarnessResults:
    def test_algorithm_result_stats(self):
        result = AlgorithmResult("x", runtimes=[0.010, 0.020, 0.030])
        assert result.total_s == pytest.approx(0.060)
        assert result.avg_ms == pytest.approx(20.0)
        assert result.p50_ms == pytest.approx(20.0)

    def test_empty_result(self):
        result = AlgorithmResult("x")
        assert result.avg_ms == 0.0
        assert result.p50_ms == 0.0

    def test_join_run_result_stats(self):
        r = JoinRunResult("m", 0.5, [0.01, 0.03], [10, 30], 4)
        assert r.avg_ms == pytest.approx(20.0)
        assert r.avg_depth == pytest.approx(20.0)
        assert r.depth_std == pytest.approx(10.0)

    def test_time_algorithm_empty_query_counts(self, yago_scorer, yago_graph):
        workload = star_workload(yago_graph, 3, seed=204)
        result = time_algorithm("stark", yago_scorer, workload, k=3)
        assert result.matches_found + result.empty_queries >= len(workload) \
            or result.matches_found > 0

    def test_warm_mode_skips_cache_clear(self, yago_scorer, yago_graph):
        workload = star_workload(yago_graph, 2, seed=205)
        # Prime the cache, then a warm run should typically be faster
        # than a cold one; assert only that both produce measurements.
        cold = time_algorithm("stark", yago_scorer, workload, k=3, cold=True)
        warm = time_algorithm("stark", yago_scorer, workload, k=3, cold=False)
        assert len(cold.runtimes) == len(warm.runtimes) == 2
        assert all(t > 0 for t in cold.runtimes + warm.runtimes)
