"""Snapshot decode hardening: corruption always surfaces typed.

The contract under test: whatever bytes :func:`load_snapshot` is fed,
the only exceptions that escape are :class:`DatasetError` (not a
snapshot at all / unsupported version / missing file) and its subclass
:class:`SnapshotCorruptionError` (was a snapshot, is now broken), the
latter carrying the failing byte offset.  A bare ``struct.error``,
``zlib.error``, ``IndexError`` or ``UnicodeDecodeError`` escaping the
decoder is a bug, found here by systematic truncation and byte-flip
fuzzing.
"""

from __future__ import annotations

import random
import zlib

import pytest

from repro.dynamic.snapshot import (
    _HEADER,
    MAGIC,
    load_snapshot,
    save_snapshot,
)
from repro.errors import DatasetError, SnapshotCorruptionError

from .conftest import build_movie_graph


@pytest.fixture(scope="module")
def snapshot_bytes(tmp_path_factory):
    path = tmp_path_factory.mktemp("snap") / "graph.kgs"
    save_snapshot(build_movie_graph(), path)
    return path.read_bytes()


def _load(tmp_path, blob: bytes):
    bad = tmp_path / "bad.kgs"
    bad.write_bytes(blob)
    return load_snapshot(bad)


def _repack(raw: bytes, body: bytes) -> bytes:
    """Rebuild a snapshot around a (possibly corrupt) body with a
    *valid* CRC, so decode-level checks are actually reached."""
    header = _HEADER.pack(MAGIC, raw[4], zlib.crc32(body) & 0xFFFFFFFF)
    return header + zlib.compress(body, 6)


class TestEnvelope:
    def test_truncated_header(self, tmp_path, snapshot_bytes):
        with pytest.raises(SnapshotCorruptionError) as info:
            _load(tmp_path, snapshot_bytes[:6])
        assert info.value.offset == 6

    def test_garbage_after_magic(self, tmp_path, snapshot_bytes):
        blob = snapshot_bytes[:_HEADER.size] + b"\x00\x01\x02not zlib"
        with pytest.raises(SnapshotCorruptionError) as info:
            _load(tmp_path, blob)
        assert info.value.offset == _HEADER.size

    def test_crc_mismatch(self, tmp_path, snapshot_bytes):
        raw = bytearray(snapshot_bytes)
        body = zlib.decompress(bytes(raw[_HEADER.size:]))
        flipped = bytearray(body)
        flipped[-1] ^= 0xFF
        blob = raw[:_HEADER.size] + zlib.compress(bytes(flipped), 6)
        with pytest.raises(SnapshotCorruptionError, match="CRC"):
            _load(tmp_path, bytes(blob))

    def test_error_message_names_the_file(self, tmp_path, snapshot_bytes):
        with pytest.raises(SnapshotCorruptionError) as info:
            _load(tmp_path, snapshot_bytes[:6])
        assert "bad.kgs" in str(info.value)
        assert info.value.path is not None


class TestBodyCorruption:
    def test_truncated_body_with_valid_crc(self, tmp_path, snapshot_bytes):
        """Truncation the CRC cannot catch (CRC recomputed over the
        truncated body) must still die typed, with an offset."""
        body = zlib.decompress(snapshot_bytes[_HEADER.size:])
        for cut in (0, 1, len(body) // 4, len(body) // 2, len(body) - 1):
            with pytest.raises(SnapshotCorruptionError) as info:
                _load(tmp_path, _repack(snapshot_bytes, body[:cut]))
            assert info.value.offset is not None
            assert 0 <= info.value.offset <= cut

    def test_trailing_garbage_rejected(self, tmp_path, snapshot_bytes):
        body = zlib.decompress(snapshot_bytes[_HEADER.size:])
        with pytest.raises(SnapshotCorruptionError, match="trailing"):
            _load(tmp_path, _repack(snapshot_bytes, body + b"\x00\x00"))

    def test_implausible_count_rejected_without_allocation(
        self, tmp_path, snapshot_bytes
    ):
        # A count varint claiming more entries than there are bytes
        # left must fail fast, not loop until an underflow.
        body = zlib.decompress(snapshot_bytes[_HEADER.size:])
        corrupt = bytearray(body)
        # The body starts with the node-count varint; replace it with
        # a huge (5-byte) varint value.
        huge = b"\xff\xff\xff\xff\x0f"
        corrupt = huge + bytes(corrupt[1:])
        with pytest.raises(SnapshotCorruptionError, match="implausible"):
            _load(tmp_path, _repack(snapshot_bytes, bytes(corrupt)))

    def test_truncation_sweep_is_always_typed(self, tmp_path,
                                              snapshot_bytes):
        body = zlib.decompress(snapshot_bytes[_HEADER.size:])
        step = max(1, len(body) // 60)
        for cut in range(0, len(body), step):
            try:
                _load(tmp_path, _repack(snapshot_bytes, body[:cut]))
            except SnapshotCorruptionError:
                pass  # the only acceptable failure

    def test_byte_flip_fuzz_never_escapes_untyped(self, tmp_path,
                                                  snapshot_bytes):
        """200 random single/multi-byte flips in the decoded body:
        every load either succeeds or raises the typed error."""
        body = zlib.decompress(snapshot_bytes[_HEADER.size:])
        rng = random.Random(20260809)
        for trial in range(200):
            corrupt = bytearray(body)
            for _ in range(rng.randint(1, 4)):
                corrupt[rng.randrange(len(corrupt))] = rng.randrange(256)
            try:
                graph = _load(tmp_path, _repack(snapshot_bytes,
                                                bytes(corrupt)))
            except (SnapshotCorruptionError, DatasetError):
                continue
            # A flip that survives validation must yield a usable graph.
            assert graph.num_nodes >= 0

    def test_compressed_byte_flip_fuzz(self, tmp_path, snapshot_bytes):
        """Flips in the raw file (header + compressed stream)."""
        rng = random.Random(4242)
        for trial in range(100):
            corrupt = bytearray(snapshot_bytes)
            corrupt[rng.randrange(4, len(corrupt))] ^= 1 << rng.randrange(8)
            try:
                _load(tmp_path, bytes(corrupt))
            except (SnapshotCorruptionError, DatasetError):
                continue

    def test_loaded_graph_round_trips_after_clean_load(self, tmp_path,
                                                       snapshot_bytes):
        graph = _load(tmp_path, snapshot_bytes)
        again = tmp_path / "again.kgs"
        save_snapshot(graph, again)
        assert load_snapshot(again).num_nodes == graph.num_nodes
