"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main
from repro.graph import load_graph


@pytest.fixture()
def saved_graph(tmp_path, movie_graph):
    from repro.graph import save_graph

    path = tmp_path / "movies.kg"
    save_graph(movie_graph, path)
    return str(path)


class TestGenerate:
    def test_generate_and_reload(self, tmp_path, capsys):
        out = str(tmp_path / "g.kg")
        code = main(["generate", "yago2", out, "--scale", "0.1"])
        assert code == 0
        assert os.path.exists(out)
        graph = load_graph(out)
        assert graph.num_nodes > 0
        assert "wrote" in capsys.readouterr().out


class TestStats:
    def test_stats_output(self, saved_graph, capsys):
        assert main(["stats", saved_graph]) == 0
        out = capsys.readouterr().out
        assert "num_nodes" in out and "avg_degree" in out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["stats", str(tmp_path / "nope.kg")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestSearch:
    def test_star_search(self, saved_graph, capsys):
        code = main([
            "search", saved_graph,
            "(?m:director) -[collaborated_with]- (Brad:actor)"
            "; (?m) -[won]- (?:award)",
            "-k", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "match(es)" in out
        assert "Richard Linklater" in out

    def test_d_bounded_search(self, saved_graph, capsys):
        code = main([
            "search", saved_graph,
            "(Richard:director) -[?]- (Academy Award:award)",
            "-k", "1", "-d", "2",
        ])
        assert code == 0
        assert "score=" in capsys.readouterr().out

    def test_bad_query_reports_error(self, saved_graph, capsys):
        code = main(["search", saved_graph, "not a query"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestDemo:
    def test_demo_runs(self, capsys):
        code = main(["demo", "--scale", "0.3"])
        out = capsys.readouterr().out
        assert "generated" in out
        assert code in (0, 1)  # 1 = no matches at tiny scale, still valid


class TestWorkloadCommand:
    def test_star_workload_file(self, saved_graph, tmp_path, capsys):
        out = str(tmp_path / "w.txt")
        assert main(["workload", saved_graph, out, "--count", "4"]) == 0
        from repro.query import load_workload

        queries = load_workload(out)
        assert len(queries) == 4
        assert all(q.is_star() for q in queries)

    def test_complex_shape(self, saved_graph, tmp_path):
        out = str(tmp_path / "w.txt")
        code = main([
            "workload", saved_graph, out, "--count", "1", "--shape", "3,3",
        ])
        # The tiny movie graph may or may not host a triangle; either a
        # valid file or a clean error is acceptable.
        assert code in (0, 2)

    def test_bad_shape_argument(self, saved_graph, tmp_path, capsys):
        out = str(tmp_path / "w.txt")
        assert main(["workload", saved_graph, out, "--shape", "nope"]) == 2
        assert "error:" in capsys.readouterr().err


class TestLearnCommand:
    def test_learn_and_reuse(self, tmp_path, capsys):
        graph_path = str(tmp_path / "g.kg")
        config_path = str(tmp_path / "c.json")
        assert main(["generate", "yago2", graph_path, "--scale", "0.15"]) == 0
        assert main(["learn", graph_path, config_path, "--pairs", "80"]) == 0
        assert "holdout accuracy" in capsys.readouterr().out
        code = main([
            "search", graph_path, "(Brad:actor) -[?]- (?)",
            "-k", "2", "--config", config_path,
        ])
        assert code == 0

    def test_learn_missing_graph(self, tmp_path, capsys):
        code = main([
            "learn", str(tmp_path / "nope.kg"), str(tmp_path / "c.json"),
        ])
        assert code == 2


class TestBatchCommand:
    @pytest.fixture()
    def saved_workload(self, tmp_path, saved_graph):
        path = str(tmp_path / "queries.jsonl")
        assert main(["workload", saved_graph, path, "--count", "4"]) == 0
        return path

    def test_batch_serial(self, saved_graph, saved_workload, capsys):
        code = main(["batch", saved_graph, saved_workload, "-k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 quer(ies) via serial x1" in out
        assert "query 3:" in out

    def test_batch_workers_cache_show(self, saved_graph, saved_workload,
                                      capsys):
        code = main([
            "batch", saved_graph, saved_workload, "-k", "2",
            "--workers", "2", "--backend", "thread", "--cache",
            "--show", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "thread x2" in out
        assert "cache:" in out
        assert "score=" in out

    def test_batch_budgeted(self, saved_graph, saved_workload, capsys):
        code = main([
            "batch", saved_graph, saved_workload, "-k", "2",
            "--budget-nodes", "2", "--anytime",
        ])
        assert code == 0
        assert "budget-exceeded" in capsys.readouterr().out

    def test_batch_missing_workload(self, saved_graph, tmp_path):
        code = main(["batch", saved_graph, str(tmp_path / "nope.jsonl")])
        assert code == 2


class TestTraceCommand:
    QUERY = (
        "(?m:director) -[collaborated_with]- (Brad:actor)"
        "; (?m) -[won]- (?:award)"
    )

    def test_trace_prints_span_tree(self, saved_graph, capsys):
        code = main(["trace", saved_graph, self.QUERY, "-k", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stark.search" in out
        assert "  stark.pivot_search" in out  # nested (indented) child
        assert "wall" in out and "cpu" in out and "ms" in out
        assert "histogram" in out
        assert "stark:" in out  # unified EngineStats summary line

    def test_trace_d2_uses_stard_spans(self, saved_graph, capsys):
        code = main(["trace", saved_graph, self.QUERY, "-k", "2", "-d", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "stard.search" in out
        assert "stard.propagate" in out

    def test_trace_jsonl_and_metrics_out(self, saved_graph, tmp_path,
                                         capsys):
        import json

        jsonl = str(tmp_path / "trace.jsonl")
        metrics = str(tmp_path / "metrics.json")
        code = main([
            "trace", saved_graph, self.QUERY, "-k", "2",
            "--jsonl", jsonl, "--metrics-out", metrics,
        ])
        assert code == 0
        lines = open(jsonl).read().splitlines()
        assert lines
        first = json.loads(lines[0])
        assert first["name"] == "stark.search" and first["depth"] == 0
        doc = json.load(open(metrics))
        assert doc["command"] == "trace"
        assert set(doc["engine_stats"]) == set(
            __import__("repro").STAT_KEYS
        )
        assert "span.stark.search.ms" in doc["metrics"]["histograms"]

    def test_trace_no_timing_jsonl_deterministic(self, saved_graph,
                                                 tmp_path, capsys):
        paths = [str(tmp_path / f"t{i}.jsonl") for i in range(2)]
        for path in paths:
            assert main([
                "trace", saved_graph, self.QUERY, "-k", "2",
                "--jsonl", path, "--no-timing",
            ]) == 0
        a, b = (open(p, "rb").read() for p in paths)
        assert a == b and a

    def test_trace_disables_observability_after(self, saved_graph, capsys):
        from repro import obs

        assert main(["trace", saved_graph, self.QUERY]) == 0
        assert not obs.is_enabled()


class TestMetricsOutFlag:
    def test_search_metrics_out(self, saved_graph, tmp_path, capsys):
        import json

        path = str(tmp_path / "m.json")
        code = main([
            "search", saved_graph,
            "(?m:director) -[collaborated_with]- (Brad:actor)",
            "-k", "2", "--metrics-out", path,
        ])
        assert code == 0
        doc = json.load(open(path))
        assert doc["command"] == "search"
        assert doc["spans"][0]["name"] == "stark.search"
        assert doc["elapsed_ms"] > 0

    def test_batch_metrics_out(self, saved_graph, tmp_path, capsys):
        import json

        workload = str(tmp_path / "w.jsonl")
        assert main(["workload", saved_graph, workload, "--count", "3"]) == 0
        path = str(tmp_path / "m.json")
        code = main([
            "batch", saved_graph, workload, "-k", "2", "--cache",
            "--metrics-out", path,
        ])
        assert code == 0
        doc = json.load(open(path))
        assert doc["command"] == "batch" and doc["queries"] == 3
        assert doc["metrics"]["counters"]["cache.misses"] == \
            doc["cache"]["misses"]


class TestDirectedFlag:
    def test_search_directed(self, saved_graph, capsys):
        code = main([
            "search", saved_graph,
            "(Brad:actor) -[acted_in]-> (?:film)", "-k", "2", "--directed",
        ])
        assert code == 0
        assert "match(es)" in capsys.readouterr().out


class TestKeywordSearch:
    def test_keywords_end_to_end(self, saved_graph, capsys):
        code = main([
            "search", saved_graph, "--keywords", "director globe", "-k", "2",
            "-d", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "'director': pivot" in out
        assert "match(es)" in out and "score=" in out

    def test_keywords_ambiguous_type_reported(self, saved_graph, capsys):
        code = main([
            "search", saved_graph, "--keywords", "actor venice", "-k", "1",
        ])
        assert code == 0
        assert "also readable as token" in capsys.readouterr().out

    def test_keywords_no_match_is_error(self, saved_graph, capsys):
        code = main(["search", saved_graph, "--keywords", "xyzzy plugh"])
        assert code == 2
        assert "no keyword matches" in capsys.readouterr().err

    def test_query_and_keywords_both_rejected(self, saved_graph, capsys):
        code = main([
            "search", saved_graph, "(?:film) -[?]- (Brad:actor)",
            "--keywords", "film",
        ])
        assert code == 2
        assert "not both" in capsys.readouterr().err

    def test_neither_query_nor_keywords_rejected(self, saved_graph, capsys):
        assert main(["search", saved_graph]) == 2
        assert "give a query" in capsys.readouterr().err


class TestPlanCLI:
    QUERY = "(?m:director) -[?]- (Brad:actor)"

    def test_plan_auto_matches_static(self, saved_graph, capsys):
        assert main(["search", saved_graph, self.QUERY, "-k", "3"]) == 0
        static_out = capsys.readouterr().out
        assert main([
            "search", saved_graph, self.QUERY, "-k", "3", "--plan", "auto",
        ]) == 0
        planned_out = capsys.readouterr().out
        static_scores = [l.split("score=")[1].split()[0]
                         for l in static_out.splitlines() if "score=" in l]
        planned_scores = [l.split("score=")[1].split()[0]
                          for l in planned_out.splitlines() if "score=" in l]
        assert planned_scores == static_scores

    def test_experience_out_and_plan_fit(self, saved_graph, tmp_path, capsys):
        exp = str(tmp_path / "exp.jsonl")
        for _ in range(3):
            assert main([
                "search", saved_graph, self.QUERY, "-k", "3",
                "--plan", "auto", "--experience-out", exp,
            ]) == 0
        assert sum(1 for _ in open(exp)) == 3
        model = str(tmp_path / "model.json")
        assert main([
            "plan-fit", exp, model, "--min-samples", "2",
        ]) == 0
        out = capsys.readouterr().out
        assert "3 record(s)" in out and "warm" in out
        assert main([
            "search", saved_graph, self.QUERY, "-k", "3",
            "--plan", "learned", "--plan-model", model,
        ]) == 0
        assert "match(es)" in capsys.readouterr().out

    def test_experience_without_plan_warns(self, saved_graph, tmp_path,
                                           capsys):
        exp = str(tmp_path / "exp.jsonl")
        assert main([
            "search", saved_graph, self.QUERY, "-k", "2",
            "--experience-out", exp,
        ]) == 0
        assert "--experience-out needs" in capsys.readouterr().err

    def test_metrics_no_timing_deterministic(self, saved_graph, tmp_path,
                                             capsys):
        paths = [str(tmp_path / name) for name in ("a.json", "b.json")]
        for path in paths:
            assert main([
                "search", saved_graph, self.QUERY, "-k", "3",
                "--plan", "auto", "--metrics-out", path, "--no-timing",
            ]) == 0
        capsys.readouterr()
        blobs = [open(p, "rb").read() for p in paths]
        assert blobs[0] == blobs[1]
        doc = json.loads(blobs[0])
        assert "elapsed_ms" not in doc
        assert "histograms" not in doc["metrics"]
        assert doc["plan"]["source"] in ("explore", "learned", "static")

    def test_batch_plan_modes(self, saved_graph, tmp_path, capsys):
        workload = str(tmp_path / "queries.jsonl")
        assert main(["workload", saved_graph, workload, "--count", "3"]) == 0
        metrics = str(tmp_path / "metrics.json")
        assert main([
            "batch", saved_graph, workload, "-k", "2", "--plan", "auto",
            "--metrics-out", metrics, "--no-timing",
        ]) == 0
        assert "3 quer(ies)" in capsys.readouterr().out
        doc = json.loads(open(metrics).read())
        assert "wall_s" not in doc
        assert "histograms" not in doc["metrics"]
