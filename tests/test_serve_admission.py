"""Admission control unit tests: token bucket, watermarks, decisions.

Everything here is pure state-machine arithmetic driven by an injected
clock -- no server, no sockets, no sleeps.
"""

import pytest

from repro.runtime import MAX_DEGRADE_LEVEL
from repro.serve import AdmissionController, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert all(bucket.try_acquire() for _ in range(3))
        assert not bucket.try_acquire()

    def test_refill_over_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_acquire(2.0)
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 1 token back
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.try_acquire(2.0)
        assert not bucket.try_acquire()

    def test_no_partial_take(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert not bucket.try_acquire(2.0)
        # The failed acquire must not have consumed the one token.
        assert bucket.try_acquire(1.0)

    def test_retry_after_is_deficit_over_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
        assert bucket.retry_after_s() == 0.0
        bucket.try_acquire()
        assert bucket.retry_after_s() == pytest.approx(0.5)


class TestDegradeLevels:
    def controller(self, **kwargs):
        kwargs.setdefault("max_queue_depth", 100)
        kwargs.setdefault("clock", FakeClock())
        return AdmissionController(**kwargs)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_queue_depth=0)
        with pytest.raises(ValueError):
            AdmissionController(degrade_watermarks=(0.5, 0.25))

    def test_every_class_full_budget_at_rest(self):
        ctl = self.controller()
        for rank in range(3):
            assert ctl.degrade_level_for(0.0, rank) == 0

    def test_levels_rise_with_pressure(self):
        ctl = self.controller()
        assert ctl.degrade_level_for(0.25, 0) == 1
        assert ctl.degrade_level_for(0.5, 0) == 2
        assert ctl.degrade_level_for(0.75, 0) == 3
        assert ctl.degrade_level_for(5.0, 0) == MAX_DEGRADE_LEVEL

    def test_lower_classes_degrade_earlier(self):
        ctl = self.controller()
        # class_bias shifts pressure by rank * 0.1: at raw pressure 0.2
        # gold is untouched while bronze already degrades.
        assert ctl.degrade_level_for(0.2, 0) == 0
        assert ctl.degrade_level_for(0.2, 1) == 1
        assert ctl.degrade_level_for(0.2, 2) == 1

    def test_monotone_in_pressure_and_rank(self):
        ctl = self.controller()
        grid = [i / 20 for i in range(25)]
        for rank in range(3):
            levels = [ctl.degrade_level_for(p, rank) for p in grid]
            assert levels == sorted(levels)
        for pressure in grid:
            by_rank = [ctl.degrade_level_for(pressure, r) for r in range(3)]
            assert by_rank == sorted(by_rank)


class TestDecide:
    def test_admit_at_rest(self):
        ctl = AdmissionController(max_queue_depth=10)
        decision = ctl.decide("t", rank=0, queue_depth=0)
        assert decision.admitted and decision.degrade_level == 0
        assert ctl.counters["admitted"] == 1

    def test_degraded_admit_counts(self):
        ctl = AdmissionController(max_queue_depth=10)
        decision = ctl.decide("t", rank=0, queue_depth=5)
        assert decision.admitted and decision.degrade_level == 2
        assert ctl.counters["degraded"] == 1

    def test_low_priority_sheds_past_watermark(self):
        ctl = AdmissionController(max_queue_depth=10)
        gold = ctl.decide("t", rank=0, queue_depth=9)
        bronze = ctl.decide("t", rank=2, queue_depth=9)
        assert gold.admitted and gold.degrade_level == MAX_DEGRADE_LEVEL
        assert not bronze.admitted
        assert bronze.reason == "overload"
        assert bronze.retry_after_s > 0
        assert ctl.counters["shed_overload"] == 1

    def test_top_class_sheds_only_when_hard_full(self):
        ctl = AdmissionController(max_queue_depth=10, hard_factor=1.5)
        assert ctl.decide("t", rank=0, queue_depth=14).admitted
        assert not ctl.decide("t", rank=0, queue_depth=15).admitted

    def test_rate_limit_shed_and_recovery(self):
        clock = FakeClock()
        ctl = AdmissionController(max_queue_depth=10, tenant_rate=1.0,
                                  tenant_burst=2.0, clock=clock)
        assert ctl.decide("a", 0, 0).admitted
        assert ctl.decide("a", 0, 0).admitted
        shed = ctl.decide("a", 0, 0)
        assert not shed.admitted and shed.reason == "rate_limited"
        assert shed.retry_after_s > 0
        # Other tenants have their own bucket.
        assert ctl.decide("b", 0, 0).admitted
        clock.advance(1.0)
        assert ctl.decide("a", 0, 0).admitted
        assert ctl.counters["shed_rate_limited"] == 1

    def test_tenant_slots_isolate_and_release(self):
        ctl = AdmissionController(max_queue_depth=10, tenant_slots=2)
        ctl.begin("a")
        ctl.begin("a")
        shed = ctl.decide("a", rank=1, queue_depth=0)
        assert not shed.admitted and shed.reason == "tenant_slots"
        # The top class gets double slots for the same tenant.
        assert ctl.decide("a", rank=0, queue_depth=0).admitted
        ctl.end("a")
        assert ctl.decide("a", rank=1, queue_depth=0).admitted
        ctl.end("a")
        ctl.end("a")  # over-release must not go negative
        assert ctl.outstanding("a") == 0

    def test_state_snapshot_is_json_safe(self):
        import json

        ctl = AdmissionController(max_queue_depth=10)
        ctl.begin("a")
        ctl.decide("a", 0, 0)
        state = json.loads(json.dumps(ctl.state()))
        assert state["max_queue_depth"] == 10
        assert state["counters"]["admitted"] == 1
        assert state["outstanding"] == {"a": 1}
