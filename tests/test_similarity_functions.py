"""Tests for the 46-measure catalog."""

import pytest
from hypothesis import given, strategies as st

from repro.similarity import (
    CorpusContext,
    Descriptor,
    EDGE_FUNCTIONS,
    NODE_FUNCTIONS,
    TOTAL_FUNCTIONS,
)
from repro.similarity import functions as F

CTX = CorpusContext.empty()


def d(name, type="", keywords=(), degree=0):
    return Descriptor(name, type, tuple(keywords), degree)


class TestCatalog:
    def test_exactly_46_measures(self):
        """The paper applies 46 similarity functions."""
        assert TOTAL_FUNCTIONS == 46
        assert len(NODE_FUNCTIONS) == 42
        assert len(EDGE_FUNCTIONS) == 4

    def test_names_unique(self):
        names = [n for n, _f in NODE_FUNCTIONS] + [n for n, _f in EDGE_FUNCTIONS]
        assert len(names) == len(set(names))

    def test_fast_subset_valid(self):
        node_names = {n for n, _f in NODE_FUNCTIONS}
        assert set(F.FAST_NODE_FUNCTION_NAMES) <= node_names

    @given(
        st.sampled_from([fn for _n, fn in NODE_FUNCTIONS]),
        st.text(max_size=15),
        st.text(max_size=15),
    )
    def test_all_measures_bounded(self, fn, qtext, dtext):
        """Every measure returns a value in [0, 1] for arbitrary text."""
        score = fn(d(qtext), d(dtext), CTX)
        assert 0.0 <= score <= 1.0


class TestNameMeasures:
    def test_exact_name(self):
        assert F.exact_name(d("Brad Pitt"), d("brad pitt"), CTX) == 1.0
        assert F.exact_name(d("Brad"), d("Brad Pitt"), CTX) == 0.0
        assert F.exact_name(d("?"), d("?"), CTX) == 0.0  # wildcard never exact

    def test_first_last_token(self):
        assert F.first_token_equal(d("Brad"), d("Brad Pitt"), CTX) == 1.0
        assert F.last_token_equal(d("Pitt"), d("Brad Pitt"), CTX) == 1.0
        assert F.first_token_equal(d("Pitt"), d("Brad Pitt"), CTX) == 0.0

    def test_containment(self):
        assert F.containment(d("Hurt Locker"), d("The Hurt Locker"), CTX) == 1.0
        assert F.containment(d("Locker Hurt"), d("The Hurt Locker"), CTX) == 0.0

    def test_query_token_coverage(self):
        assert F.query_token_coverage(d("Brad Pitt"), d("Brad Pitt Jr"), CTX) == 1.0
        assert F.query_token_coverage(d("Brad Smith"), d("Brad Pitt"), CTX) == 0.5

    def test_acronym_paper_example(self):
        """'J.J. Abrams' style: compact token spelling the initials."""
        assert F.acronym_forward(d("jja"), d("Jeffrey Jacob Abrams"), CTX) == 1.0
        assert F.acronym_backward(d("Jeffrey Jacob Abrams"), d("jja"), CTX) == 1.0
        assert F.acronym_forward(d("jjx"), d("Jeffrey Jacob Abrams"), CTX) == 0.0

    def test_initials_similarity(self):
        assert F.initials_similarity(
            d("J J Abrams"), d("Jeffrey Jacob Abrams"), CTX
        ) == 1.0

    def test_abbreviation_tokens(self):
        score = F.abbreviation_tokens(d("Intl Films"), d("International Films"), CTX)
        assert score == pytest.approx(0.5)

    def test_best_token_edit(self):
        score = F.best_token_edit(d("Bradd"), d("Brad Pitt"), CTX)
        assert score == pytest.approx(0.8)


class TestSemanticMeasures:
    def test_synonym_token_paper_example(self):
        assert F.synonym_token(d("teacher"), d("educator school"), CTX) == 1.0

    def test_type_exact(self):
        assert F.type_exact(d("x", "actor"), d("y", "actor"), CTX) == 1.0
        assert F.type_exact(d("x", ""), d("y", "actor"), CTX) == 0.0

    def test_type_ontology_decay(self):
        same = F.type_ontology(d("x", "actor"), d("y", "actor"), CTX)
        parent = F.type_ontology(d("x", "actor"), d("y", "person"), CTX)
        sibling = F.type_ontology(d("x", "actor"), d("y", "director"), CTX)
        assert same == 1.0
        assert same > parent > sibling > 0.0

    def test_type_subsumption(self):
        assert F.type_subsumption(d("x", "person"), d("y", "actor"), CTX) == 1.0
        assert F.type_subsumption(d("x", "award"), d("y", "actor"), CTX) == 0.0


class TestNumericMeasures:
    def test_numeric_exact(self):
        assert F.numeric_exact(d("Movie 1999"), d("Film 1999"), CTX) == 1.0
        assert F.numeric_exact(d("Movie 1999"), d("Film 2000"), CTX) == 0.0

    def test_numeric_close(self):
        assert F.numeric_close(d("run 100"), d("run 99"), CTX) == pytest.approx(0.99)

    def test_unit_conversion_paper_family(self):
        assert F.unit_convert_match(d("5 km race"), d("5000 m race"), CTX) == 1.0
        assert F.unit_convert_match(d("5 km race"), d("4000 m race"), CTX) == 0.0
        assert F.unit_convert_match(d("5 km race"), d("5 kg race"), CTX) == 0.0


class TestStructuralMeasures:
    def test_degree_prior_monotone(self):
        ctx = CorpusContext({}, max_degree=100)
        low = F.degree_prior(d("?"), d("x", degree=1), ctx)
        high = F.degree_prior(d("?"), d("x", degree=100), ctx)
        assert 0.0 < low < high <= 1.0

    def test_wildcard(self):
        assert F.wildcard(d("?"), d("anything"), CTX) == 1.0
        assert F.wildcard(d("Brad"), d("anything"), CTX) == 0.0


class TestEdgeMeasures:
    def test_relation_exact(self):
        assert F.relation_exact(d("acted_in"), d("acted_in"), CTX) == 1.0
        assert F.relation_exact(d("acted_in"), d("directed"), CTX) == 0.0

    def test_relation_synonym(self):
        assert F.relation_synonym(d("won"), d("recipient_of"), CTX) == 1.0

    def test_relation_token_jaccard(self):
        score = F.relation_token_jaccard(d("born_in"), d("lived_in"), CTX)
        assert score == pytest.approx(1 / 3)

    def test_relation_wildcard(self):
        assert F.relation_wildcard(d("?"), d("anything"), CTX) == 1.0
        assert F.relation_wildcard(d("won"), d("anything"), CTX) == 0.0


class TestFrequencyMeasures:
    def test_tfidf_prefers_rare_tokens(self, movie_graph):
        ctx = CorpusContext.from_graph(movie_graph)
        # "pitt" is rarer than "award" (two award nodes share it).
        rare = F.rare_token_bonus(d("Pitt"), d("Brad Pitt"), ctx)
        common = F.rare_token_bonus(d("Award"), d("Academy Award"), ctx)
        assert rare > common > 0.0

    def test_tfidf_cosine_identity(self, movie_graph):
        ctx = CorpusContext.from_graph(movie_graph)
        assert F.tfidf_cosine(d("Brad Pitt"), d("Brad Pitt"), ctx) == pytest.approx(1.0)

    def test_idf_weighted_coverage(self, movie_graph):
        ctx = CorpusContext.from_graph(movie_graph)
        full = F.idf_weighted_coverage(d("Brad Pitt"), d("Brad Pitt"), ctx)
        partial = F.idf_weighted_coverage(d("Brad Pitt"), d("Brad Smith"), ctx)
        assert full == pytest.approx(1.0)
        assert 0.0 < partial < 1.0
