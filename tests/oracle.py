"""Reusable differential oracle harness.

Checks any engine configuration against the exhaustive brute-force
oracle.  The comparison is *tie-tolerant*: scores must agree pairwise at
every rank, and every returned assignment must appear in the oracle's
full enumeration with exactly that score -- so engines that break score
ties differently from the oracle's ``(-score, key)`` order still pass,
while any wrong score, invalid assignment or duplicate emission fails.

Used by ``tests/test_oracle_differential.py`` (Hypothesis fuzzing) and
available to any future engine configuration::

    from tests.oracle import assert_against_oracle

    assert_against_oracle("stard", scorer, star, k=5, d=2)
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.baselines.brute_force import brute_force_matches, brute_force_star
from repro.core.framework import Star
from repro.core.stard import StarDSearch
from repro.core.stark import StarKSearch
from repro.query.decomposition import decompose
from repro.query.model import Query, StarQuery

#: Score comparisons round to this many decimals (float summation order
#: differs between engines).
ROUND = 9

#: Engine names :func:`run_algorithm` understands.
ALGORITHMS = ("stark", "stard", "starjoin")


def rounded_scores(matches) -> List[float]:
    return [round(m.score, ROUND) for m in matches]


def oracle_matches(scorer, query, d: int = 1, injective: bool = True):
    """Every admissible match, best first (ties by assignment key)."""
    if isinstance(query, StarQuery):
        # brute_force_star truncates; ask for everything.
        return brute_force_star(
            scorer, query, k=2_000_000, d=d, injective=injective
        )
    return brute_force_matches(scorer, query, d=d, injective=injective)


def run_algorithm(
    name: str,
    scorer,
    query,
    k: int,
    d: int = 1,
    alpha: float = 0.5,
    method: str = "maxdeg",
    injective: bool = True,
):
    """Top-k matches of *query* under the named engine configuration.

    ``stark``/``stard`` take the query as a star (converted if needed);
    ``starjoin`` requires a general :class:`Query` and is forced through
    the rank-join path by passing an explicit decomposition (otherwise
    the framework would shortcut star-shaped queries to stark/stard).
    """
    if name in ("stark", "stard"):
        star = (query if isinstance(query, StarQuery)
                else StarQuery.from_query(query))
        cls = StarKSearch if name == "stark" else StarDSearch
        return cls(scorer, d=d, injective=injective).search(star, k)
    if name == "starjoin":
        if isinstance(query, StarQuery):
            raise TypeError("starjoin differential needs a general Query")
        engine = Star(
            scorer.graph, scorer=scorer, d=d, alpha=alpha,
            decomposition_method=method, injective=injective,
        )
        decomposition = decompose(query, method=method, scorer=scorer)
        return engine.search(query, k, decomposition=decomposition)
    raise ValueError(f"unknown algorithm {name!r}; choose from {ALGORITHMS}")


def assert_same_results(got, expected) -> None:
    """Exact (assignment, score) equality between two engine runs."""
    assert (
        [(m.key(), round(m.score, ROUND)) for m in got]
        == [(m.key(), round(m.score, ROUND)) for m in expected]
    )


def assert_against_oracle(
    name: str,
    scorer,
    query,
    k: int,
    d: int = 1,
    **opts,
):
    """Differential check of one engine configuration vs brute force.

    Asserts, in order:

    1. rank-by-rank score equality with the oracle top-k;
    2. every returned assignment exists in the full oracle enumeration
       with exactly the returned score (tie-tolerant assignment check);
    3. no assignment is emitted twice.

    Returns ``(got, oracle_full)`` for further inspection.
    """
    injective = opts.get("injective", True)
    got = run_algorithm(name, scorer, query, k, d=d, **opts)
    full = oracle_matches(scorer, query, d=d, injective=injective)
    want = full[:k]
    assert rounded_scores(got) == rounded_scores(want), (
        f"{name}(k={k}, d={d}) scores diverge from oracle: "
        f"{rounded_scores(got)} != {rounded_scores(want)}"
    )
    by_score: Dict[float, Set[Tuple]] = defaultdict(set)
    for m in full:
        by_score[round(m.score, ROUND)].add(m.key())
    for m in got:
        key, score = m.key(), round(m.score, ROUND)
        assert key in by_score[score], (
            f"{name} returned assignment {key} with score {score} "
            "that the oracle never produced"
        )
    keys = [m.key() for m in got]
    assert len(keys) == len(set(keys)), f"{name} emitted a duplicate match"
    return got, full
