"""A small textual query language.

The paper positions graph queries as the common target that keyword /
natural-language / exemplar front-ends compile into ("one can parse a
natural language question to a dependency graph, which can later be
converted to a graph query").  This module provides a human-writable
surface for that target so examples, tests and the CLI can state queries
compactly:

    (?m:director) -[collaborated_with]- (Brad:actor)
    (?m) -[won]- (?:award)

Each line is one edge pattern.  A node is written ``(label)`` or
``(label:type)``; a label starting with ``?`` is a variable -- ``?name``
is *named* and refers to the same query node wherever it reappears, a
bare ``?`` is anonymous (fresh node each time).  Concrete labels also
unify: two occurrences of ``(Brad:actor)`` are the same query node.
Relations are ``-[rel]-`` with ``?`` for "any relation".  ``->`` / ``<-``
arrowheads set the stored edge orientation (``(a) <-[r]- (b)`` stores the
edge ``b -> a``); orientation is enforced only when the engine matches
with ``directed=True``, otherwise it is descriptive.  ``#`` starts a
comment.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import QueryError
from repro.query.model import Query

_EDGE_RE = re.compile(
    r"^\s*\(([^()]*)\)\s*"            # left node
    r"(<-|-)\s*\[([^\[\]]*)\]\s*(->|-)"  # relation with optional arrowhead
    r"\s*\(([^()]*)\)\s*$"            # right node
)


def _parse_node_spec(spec: str, line_no: int) -> Tuple[str, str]:
    """Split ``label[:type]``; returns (label, type)."""
    spec = spec.strip()
    if not spec:
        raise QueryError(f"line {line_no}: empty node spec '()'")
    if ":" in spec:
        label, type_name = spec.split(":", 1)
        label = label.strip()
        type_name = type_name.strip()
        if not type_name:
            raise QueryError(f"line {line_no}: empty type in {spec!r}")
    else:
        label, type_name = spec, ""
    if not label:
        label = "?"
    return label, type_name


class _NodeRegistry:
    """Unifies node specs into query nodes."""

    def __init__(self, query: Query) -> None:
        self._query = query
        self._named: Dict[str, int] = {}
        self._anon_count = 0

    def resolve(self, label: str, type_name: str, line_no: int) -> int:
        if label == "?":
            # Anonymous variable: always a fresh node.
            self._anon_count += 1
            return self._query.add_node("?", type=type_name)
        key = label.lower() if not label.startswith("?") else label
        existing = self._named.get(key)
        if existing is not None:
            node = self._query.nodes[existing]
            if type_name and node.type and type_name != node.type:
                raise QueryError(
                    f"line {line_no}: node {label!r} redeclared with type "
                    f"{type_name!r} (was {node.type!r})"
                )
            if type_name and not node.type:
                # Upgrade: later occurrence added a type constraint.
                replacement_label = node.label
                self._query.nodes[existing] = type(node)(
                    existing, replacement_label, type_name, node.keywords
                )
            return existing
        display = "?" if label.startswith("?") else label
        node_id = self._query.add_node(display, type=type_name)
        self._named[key] = node_id
        return node_id


def parse_query(text: str, name: str = "") -> Query:
    """Parse the edge-pattern language into a :class:`Query`.

    Raises:
        QueryError: on syntax errors, duplicate edges, or a query that
            fails structural validation (empty / disconnected).
    """
    query = Query(name=name)
    registry = _NodeRegistry(query)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        matched = _EDGE_RE.match(line)
        if not matched:
            raise QueryError(
                f"line {line_no}: cannot parse edge pattern {raw.strip()!r}"
            )
        left_spec, head, rel_spec, tail, right_spec = matched.groups()
        if head == "<-" and tail == "->":
            raise QueryError(
                f"line {line_no}: edge cannot point both ways"
            )
        left = registry.resolve(*_parse_node_spec(left_spec, line_no), line_no)
        right = registry.resolve(*_parse_node_spec(right_spec, line_no), line_no)
        relation = rel_spec.strip() or "?"
        if left == right:
            raise QueryError(
                f"line {line_no}: both endpoints resolve to the same node"
            )
        # Arrowheads set the stored orientation (enforced only when the
        # engine runs with directed=True): "<-" means right -> left.
        if head == "<-":
            query.add_edge(right, left, relation)
        else:
            query.add_edge(left, right, relation)
    query.validate()
    return query


def format_query(query: Query) -> str:
    """Render a :class:`Query` back into the edge-pattern language.

    ``parse_query(format_query(q))`` is structurally equivalent to ``q``
    (labels/types/relations preserved; anonymous variables are named so
    identity survives the round trip).
    """
    def node_ref(node_id: int) -> str:
        node = query.nodes[node_id]
        label = node.label if not node.is_wildcard else f"?v{node_id}"
        return f"({label}:{node.type})" if node.type else f"({label})"

    lines = []
    for edge in query.edges:
        lines.append(
            f"{node_ref(edge.src)} -[{edge.label}]- {node_ref(edge.dst)}"
        )
    if not query.edges and query.nodes:
        # Single-node query has no edge lines; emit a degenerate comment.
        lines.append(f"# single node: {node_ref(0)}")
    return "\n".join(lines)
