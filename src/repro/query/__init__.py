"""Query model: graph queries, star queries, templates, workloads,
decomposition (Sections II, VI-B, VII-A of the paper)."""

from repro.query.decomposition import (
    DEFAULT_CONNECT_PROBABILITY,
    Decomposition,
    METHODS,
    decompose,
)
from repro.query.model import Query, QueryEdge, QueryNode, StarQuery, star_query
from repro.query.parser import format_query, parse_query
from repro.query.serialization import load_workload, save_workload
from repro.query.templates import (
    LeafSpec,
    StarTemplate,
    VARIABLE,
    all_templates,
    templates_of_size,
)
from repro.query.workload import (
    complex_workload,
    instantiate,
    random_subgraph_query,
    star_workload,
)

__all__ = [
    "DEFAULT_CONNECT_PROBABILITY",
    "Decomposition",
    "LeafSpec",
    "METHODS",
    "Query",
    "QueryEdge",
    "QueryNode",
    "StarQuery",
    "StarTemplate",
    "VARIABLE",
    "all_templates",
    "complex_workload",
    "decompose",
    "format_query",
    "instantiate",
    "load_workload",
    "parse_query",
    "random_subgraph_query",
    "save_workload",
    "star_query",
    "star_workload",
    "templates_of_size",
]
