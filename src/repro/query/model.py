"""Graph-query model: general queries and star queries (Section II).

A query ``Q = (V_Q, E_Q)`` where each node carries an entity constraint
(label text, optional type, keywords -- or the wildcard ``"?"``) and each
edge carries a relationship constraint (relation label or wildcard).  A
:class:`StarQuery` is a query with a designated *pivot* node adjacent to
every edge; it is STAR's unit of fast evaluation.

Query nodes/edges are identified by dense integer ids, mirroring the graph
side.  Descriptors (the similarity layer's view) are built lazily and
cached on the node/edge objects.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.similarity.descriptors import Descriptor, WILDCARD


class QueryNode:
    """One query node: an entity constraint.

    Attributes:
        id: dense index within the query.
        label: constraint text (``"?"`` for a variable node).
        type: optional type constraint.
        keywords: optional keyword constraints.
    """

    __slots__ = ("id", "label", "type", "keywords", "_descriptor")

    def __init__(
        self,
        id: int,
        label: str,
        type: str = "",
        keywords: Tuple[str, ...] = (),
    ) -> None:
        self.id = id
        self.label = label
        self.type = type
        self.keywords = keywords
        self._descriptor: Optional[Descriptor] = None

    @property
    def descriptor(self) -> Descriptor:
        """Similarity-layer descriptor of this constraint (cached)."""
        if self._descriptor is None:
            self._descriptor = Descriptor(self.label, self.type, self.keywords)
        return self._descriptor

    @property
    def is_wildcard(self) -> bool:
        return self.descriptor.is_wildcard

    def __repr__(self) -> str:
        type_part = f":{self.type}" if self.type else ""
        return f"QueryNode({self.id}, {self.label!r}{type_part})"


class QueryEdge:
    """One query edge: a relationship constraint between two query nodes."""

    __slots__ = ("id", "src", "dst", "label", "_descriptor")

    def __init__(self, id: int, src: int, dst: int, label: str = WILDCARD) -> None:
        self.id = id
        self.src = src
        self.dst = dst
        self.label = label
        self._descriptor: Optional[Descriptor] = None

    @property
    def descriptor(self) -> Descriptor:
        if self._descriptor is None:
            self._descriptor = Descriptor(self.label)
        return self._descriptor

    def other(self, node_id: int) -> int:
        """The endpoint opposite to *node_id*.

        Raises:
            QueryError: if *node_id* is not an endpoint of this edge.
        """
        if node_id == self.src:
            return self.dst
        if node_id == self.dst:
            return self.src
        raise QueryError(f"node {node_id} not an endpoint of edge {self.id}")

    def __repr__(self) -> str:
        return f"QueryEdge({self.src} -[{self.label}]- {self.dst})"


class Query:
    """A general graph query.

    Example:
        >>> q = Query()
        >>> brad = q.add_node("Brad", type="actor")
        >>> maker = q.add_node("?", type="director")
        >>> award = q.add_node("Academy Award", type="award")
        >>> _ = q.add_edge(brad, maker, "collaborated_with")
        >>> _ = q.add_edge(maker, award, "won")
        >>> q.is_star()
        True
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.nodes: List[QueryNode] = []
        self.edges: List[QueryEdge] = []
        self._adj: List[List[Tuple[int, int]]] = []  # node -> [(nbr, edge_id)]

    # ------------------------------------------------------------------
    def add_node(
        self,
        label: str,
        type: str = "",
        keywords: Iterable[str] = (),
    ) -> int:
        """Add a query node; returns its id."""
        node = QueryNode(len(self.nodes), label, type, tuple(keywords))
        self.nodes.append(node)
        self._adj.append([])
        return node.id

    def add_edge(self, src: int, dst: int, label: str = WILDCARD) -> int:
        """Add a query edge; returns its id.

        Raises:
            QueryError: on out-of-range endpoints, self-loops, or duplicate
                edges between the same node pair (queries are simple graphs).
        """
        n = len(self.nodes)
        if not (0 <= src < n) or not (0 <= dst < n):
            raise QueryError(f"edge endpoints ({src}, {dst}) out of range [0, {n})")
        if src == dst:
            raise QueryError("query self-loops are not supported")
        if any(nbr == dst for nbr, _e in self._adj[src]):
            raise QueryError(f"duplicate query edge between {src} and {dst}")
        edge = QueryEdge(len(self.edges), src, dst, label)
        self.edges.append(edge)
        self._adj[src].append((dst, edge.id))
        self._adj[dst].append((src, edge.id))
        return edge.id

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def neighbors(self, node_id: int) -> List[Tuple[int, int]]:
        """Adjacent ``(neighbor_node_id, edge_id)`` pairs."""
        return self._adj[node_id]

    def degree(self, node_id: int) -> int:
        return len(self._adj[node_id])

    def validate(self) -> None:
        """Check the query is non-empty and connected.

        Raises:
            QueryError: otherwise.
        """
        if not self.nodes:
            raise QueryError("query has no nodes")
        if len(self.nodes) > 1 and not self.edges:
            raise QueryError("multi-node query has no edges")
        # Connectivity via BFS.
        seen: Set[int] = {0}
        frontier = [0]
        while frontier:
            v = frontier.pop()
            for nbr, _e in self._adj[v]:
                if nbr not in seen:
                    seen.add(nbr)
                    frontier.append(nbr)
        if len(seen) != len(self.nodes):
            raise QueryError(
                f"query is disconnected ({len(seen)}/{len(self.nodes)} reachable)"
            )

    def is_star(self) -> bool:
        """True if some node is incident to every edge (and |V| >= 1)."""
        if not self.edges:
            return len(self.nodes) == 1
        return self.star_center() is not None

    def star_center(self) -> Optional[int]:
        """A node incident to all edges, or None.

        For a single-edge query (both endpoints qualify) the higher-degree
        endpoint across... both have degree 1; the smaller id is returned
        for determinism.
        """
        if not self.edges:
            return 0 if self.nodes else None
        candidates = {self.edges[0].src, self.edges[0].dst}
        for edge in self.edges[1:]:
            candidates &= {edge.src, edge.dst}
            if not candidates:
                return None
        return min(candidates)

    def __repr__(self) -> str:
        label = self.name or "Query"
        return f"<{label}: |V|={self.num_nodes} |E|={self.num_edges}>"


class StarQuery:
    """A star query ``Q*``: a pivot node plus leaf constraints.

    Attributes:
        pivot: the pivot :class:`QueryNode`.
        leaves: ``[(leaf_node, edge), ...]`` -- one entry per star edge, in
            edge order.  The same underlying query node may appear as a
            leaf of several stars after decomposition.
    """

    def __init__(
        self,
        pivot: QueryNode,
        leaves: Sequence[Tuple[QueryNode, QueryEdge]],
        name: str = "",
    ) -> None:
        self.pivot = pivot
        self.leaves = list(leaves)
        self.name = name
        for leaf, edge in self.leaves:
            if {edge.src, edge.dst} != {pivot.id, leaf.id}:
                raise QueryError(
                    f"edge {edge!r} does not connect pivot {pivot.id} "
                    f"to leaf {leaf.id}"
                )

    @classmethod
    def from_query(cls, query: Query, pivot_id: Optional[int] = None) -> "StarQuery":
        """View a star-shaped :class:`Query` as a :class:`StarQuery`.

        Raises:
            QueryError: if the query is not a star, or *pivot_id* is not a
                valid center.
        """
        query.validate()
        center = pivot_id if pivot_id is not None else query.star_center()
        if center is None:
            raise QueryError("query is not star-shaped")
        leaves: List[Tuple[QueryNode, QueryEdge]] = []
        for edge in query.edges:
            if center not in (edge.src, edge.dst):
                raise QueryError(f"node {center} is not incident to edge {edge.id}")
            leaves.append((query.nodes[edge.other(center)], edge))
        return cls(query.nodes[center], leaves, name=query.name)

    @property
    def size(self) -> int:
        """Number of query nodes (pivot + leaves, counting repeats once each
        as star positions -- matches the paper's |V*|)."""
        return 1 + len(self.leaves)

    @property
    def num_edges(self) -> int:
        return len(self.leaves)

    def node_ids(self) -> List[int]:
        """Underlying query-node ids covered by this star (pivot first)."""
        ids = [self.pivot.id]
        ids.extend(leaf.id for leaf, _edge in self.leaves)
        return ids

    def __repr__(self) -> str:
        leaf_part = ", ".join(leaf.label for leaf, _e in self.leaves)
        return f"<StarQuery pivot={self.pivot.label!r} leaves=[{leaf_part}]>"


def star_query(
    pivot_label: str,
    leaves: Sequence[Tuple[str, str]],
    pivot_type: str = "",
    leaf_types: Optional[Sequence[str]] = None,
) -> StarQuery:
    """Convenience constructor: build a star query from labels.

    Args:
        pivot_label: pivot constraint text.
        leaves: ``[(relation_label, leaf_label), ...]``.
        pivot_type: optional pivot type constraint.
        leaf_types: optional per-leaf type constraints.

    Example:
        >>> q = star_query("?", [("directed", "?"), ("won", "Academy Award")],
        ...                pivot_type="director")
        >>> q.size
        3
    """
    query = Query()
    pivot = query.add_node(pivot_label, type=pivot_type)
    for i, (relation, leaf_label) in enumerate(leaves):
        leaf_type = leaf_types[i] if leaf_types else ""
        leaf = query.add_node(leaf_label, type=leaf_type)
        query.add_edge(pivot, leaf, relation)
    return StarQuery.from_query(query, pivot_id=pivot)
