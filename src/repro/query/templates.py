"""Star query templates (the DBPSB-derived workload of Section VII-A).

The paper derives 50 star query templates from the DBpedia SPARQL benchmark
(DBPSB); each template mixes real labels with variable labels ``"?"`` (at
most 50% variables) and is instantiated against the data graph by filling
variables with common labels of actual matching entities.

We reproduce the protocol over the synthetic schema: 30 single-edge
templates (both orientations of the 15 core relations) plus 20 multi-leaf
star templates of sizes 3-6, for exactly 50.  Templates are pure data;
instantiation lives in :mod:`repro.query.workload`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

VARIABLE = "?"


@dataclass(frozen=True)
class LeafSpec:
    """One leaf of a star template.

    Attributes:
        relation: relation label or ``"?"``.
        leaf_type: leaf node type, or ``"?"`` for an untyped variable leaf.
        variable_label: True if the leaf's *label* is left variable and
            must be instantiated from the data graph.
    """

    relation: str
    leaf_type: str
    variable_label: bool = True


@dataclass(frozen=True)
class StarTemplate:
    """A star query template.

    Attributes:
        name: template identifier.
        pivot_type: pivot node type ("?" = untyped variable pivot).
        pivot_variable: True if the pivot label is variable.
        leaves: leaf specifications.
    """

    name: str
    pivot_type: str
    pivot_variable: bool
    leaves: Tuple[LeafSpec, ...]

    @property
    def size(self) -> int:
        """Number of query nodes (pivot + leaves)."""
        return 1 + len(self.leaves)

    def variable_fraction(self) -> float:
        """Fraction of variable-labelled elements (paper caps this at 0.5)."""
        total = self.size + len(self.leaves)  # nodes + edges
        variables = int(self.pivot_variable)
        variables += sum(1 for leaf in self.leaves if leaf.variable_label)
        variables += sum(1 for leaf in self.leaves if leaf.relation == VARIABLE)
        return variables / total


# The 15 core relations with their (src type, dst type) signatures.
_RELATION_SIGNATURES: Tuple[Tuple[str, str, str], ...] = (
    ("acted_in", "actor", "film"),
    ("directed", "director", "film"),
    ("produced", "producer", "film"),
    ("wrote", "writer", "film"),
    ("won", "person", "award"),
    ("nominated_for", "person", "award"),
    ("film_won", "film", "award"),
    ("born_in", "person", "place"),
    ("located_in", "organization", "place"),
    ("works_for", "person", "organization"),
    ("has_genre", "film", "genre"),
    ("married_to", "person", "person"),
    ("collaborated_with", "person", "person"),
    ("filmed_in", "film", "place"),
    ("distributed_by", "film", "organization"),
)

# Multi-leaf star shapes: (name, pivot type, [(relation, leaf type), ...]).
_MULTI_SHAPES: Tuple[Tuple[str, str, Tuple[Tuple[str, str], ...]], ...] = (
    ("film_director_actor", "film",
     (("directed", "director"), ("acted_in", "actor"))),
    ("film_award_genre", "film",
     (("film_won", "award"), ("has_genre", "genre"))),
    ("film_actor_place", "film",
     (("acted_in", "actor"), ("filmed_in", "place"))),
    ("film_full_credits", "film",
     (("directed", "director"), ("acted_in", "actor"), ("produced", "producer"))),
    ("film_release_profile", "film",
     (("directed", "director"), ("has_genre", "genre"), ("distributed_by", "organization"))),
    ("film_awarded_cast", "film",
     (("acted_in", "actor"), ("film_won", "award"), ("has_genre", "genre"))),
    ("film_four_leaves", "film",
     (("directed", "director"), ("acted_in", "actor"), ("film_won", "award"),
      ("filmed_in", "place"))),
    ("film_five_leaves", "film",
     (("directed", "director"), ("acted_in", "actor"), ("produced", "producer"),
      ("has_genre", "genre"), ("distributed_by", "organization"))),
    ("person_award_place", "person",
     (("won", "award"), ("born_in", "place"))),
    ("person_career", "person",
     (("works_for", "organization"), ("born_in", "place"))),
    ("person_spouse_award", "person",
     (("married_to", "person"), ("won", "award"))),
    ("person_network", "person",
     (("collaborated_with", "person"), ("married_to", "person"), ("won", "award"))),
    ("person_profile", "person",
     (("won", "award"), ("born_in", "place"), ("works_for", "organization"))),
    ("person_four_leaves", "person",
     (("won", "award"), ("nominated_for", "award"), ("born_in", "place"),
      ("collaborated_with", "person"))),
    ("actor_films_award", "actor",
     (("acted_in", "film"), ("won", "award"))),
    ("actor_two_films", "actor",
     (("acted_in", "film"), ("acted_in", "film"))),
    ("director_film_award", "director",
     (("directed", "film"), ("won", "award"))),
    ("director_portfolio", "director",
     (("directed", "film"), ("directed", "film"), ("won", "award"))),
    ("org_place_people", "organization",
     (("located_in", "place"), ("works_for", "person"))),
    ("award_winners", "award",
     (("won", "person"), ("film_won", "film"))),
)


def _single_edge_templates() -> List[StarTemplate]:
    """30 single-edge templates: both pivot orientations per core relation."""
    templates: List[StarTemplate] = []
    for relation, src_type, dst_type in _RELATION_SIGNATURES:
        templates.append(
            StarTemplate(
                name=f"{relation}_fwd",
                pivot_type=src_type,
                pivot_variable=True,
                leaves=(LeafSpec(relation, dst_type, variable_label=False),),
            )
        )
        templates.append(
            StarTemplate(
                name=f"{relation}_rev",
                pivot_type=dst_type,
                pivot_variable=False,
                leaves=(LeafSpec(relation, src_type, variable_label=True),),
            )
        )
    return templates


def _multi_leaf_templates() -> List[StarTemplate]:
    """20 multi-leaf templates of sizes 3-6 over the core schema."""
    templates: List[StarTemplate] = []
    for i, (name, pivot_type, leaf_pairs) in enumerate(_MULTI_SHAPES):
        pivot_variable = i % 2 == 0
        # Variable budget: at most half of all labelled elements
        # (nodes + edges), counting the pivot if it is variable.
        total_elements = 1 + 2 * len(leaf_pairs)
        budget = total_elements // 2 - int(pivot_variable)
        leaves = []
        for j, (relation, leaf_type) in enumerate(leaf_pairs):
            rel = relation
            variable_label = False
            if budget > 0 and j % 2 == 0:
                variable_label = True
                budget -= 1
            if budget > 0 and (i + j) % 4 == 3:
                rel = VARIABLE
                budget -= 1
            leaves.append(LeafSpec(rel, leaf_type, variable_label=variable_label))
        templates.append(
            StarTemplate(
                name=name,
                pivot_type=pivot_type,
                pivot_variable=pivot_variable,
                leaves=tuple(leaves),
            )
        )
    return templates


def all_templates() -> List[StarTemplate]:
    """The full 50-template workload (30 single-edge + 20 multi-leaf)."""
    return _single_edge_templates() + _multi_leaf_templates()


def templates_of_size(size: int) -> List[StarTemplate]:
    """Templates whose star has exactly *size* query nodes (2..6)."""
    return [t for t in all_templates() if t.size == size]
