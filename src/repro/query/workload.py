"""Workload generation: instantiating templates against a data graph.

Section VII-A's protocol: search the template in the graph, select labels
from the matched data entities, and use them to instantiate the template's
variable nodes/edges.  Because labels come from entities that actually
exhibit the template's structure, most generated queries have good answers
-- the regime where top-k search is interesting.

Complex (non-star) queries "with cycles and multiple stars" are generated
by sampling a connected subgraph and lifting it to a query with partially
wildcarded labels (:func:`random_subgraph_query`), reproducing the paper's
"extend the templates by adding nodes and edges" step with a guarantee
that an answer exists.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import QueryError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.query.model import Query, StarQuery
from repro.query.templates import VARIABLE, LeafSpec, StarTemplate, all_templates


def _perturbed_name(name: str, rng: random.Random) -> str:
    """A query-style reference to *name*: full, partial, or first token."""
    tokens = name.split()
    roll = rng.random()
    if roll < 0.55 or len(tokens) == 1:
        return name
    if roll < 0.8:
        return tokens[0]
    return tokens[-1]


def _pivot_pool(graph: KnowledgeGraph, pivot_type: str) -> List[int]:
    pool = list(graph.nodes_of_type(pivot_type))
    if not pool and pivot_type == "person":
        # "person" subsumes the professional subtypes in the ontology.
        for subtype in ("actor", "director", "producer", "writer"):
            pool = pool + list(graph.nodes_of_type(subtype))
    if not pool:
        pool = list(graph.nodes())
    return pool


def _fill_leaf(
    graph: KnowledgeGraph,
    pivot_node: int,
    spec: LeafSpec,
    rng: random.Random,
) -> Tuple[str, str, str]:
    """Choose (leaf_label, leaf_type, relation_label) for one leaf.

    Prefers an actual neighbor of the instantiated pivot that satisfies the
    spec, falling back to a random node of the leaf type.
    """
    want_relation = spec.relation if spec.relation != VARIABLE else None
    want_type = spec.leaf_type if spec.leaf_type != VARIABLE else None
    matches: List[Tuple[int, str]] = []
    for nbr, eid in graph.neighbors(pivot_node):
        relation = graph.edge(eid)[2].relation
        if want_relation and relation != want_relation:
            continue
        if want_type and graph.node(nbr).type != want_type:
            continue
        matches.append((nbr, relation))
    if matches:
        nbr, relation = rng.choice(matches)
        # A non-variable leaf is a class constraint ("Person" in DBPSB):
        # lift it to a typed wildcard so it matches by type, not by name.
        label = (
            _perturbed_name(graph.node(nbr).name, rng)
            if spec.variable_label
            else VARIABLE
        )
        rel_label = relation if spec.relation == VARIABLE else spec.relation
        return label, want_type or "", rel_label
    # No structural match near the pivot: fall back to a random entity of
    # the right type (query becomes an approximate-match query).
    pool = list(graph.nodes_of_type(want_type)) if want_type else []
    if pool and spec.variable_label:
        label = _perturbed_name(graph.node(rng.choice(pool)).name, rng)
    else:
        label = VARIABLE
    return label, want_type or "", spec.relation


def _embeds_template(
    graph: KnowledgeGraph, pivot_node: int, template: StarTemplate
) -> bool:
    """True if *pivot_node* has a distinct matching neighbor per leaf spec."""
    used: Set[int] = set()
    for spec in template.leaves:
        want_relation = spec.relation if spec.relation != VARIABLE else None
        want_type = spec.leaf_type if spec.leaf_type != VARIABLE else None
        found = None
        for nbr, eid in graph.neighbors(pivot_node):
            if nbr in used or nbr == pivot_node:
                continue
            if want_relation and graph.edge(eid)[2].relation != want_relation:
                continue
            if want_type and graph.node(nbr).type != want_type:
                continue
            found = nbr
            break
        if found is None:
            return False
        used.add(found)
    return True


def instantiate(
    template: StarTemplate,
    graph: KnowledgeGraph,
    rng: Optional[random.Random] = None,
) -> Query:
    """Instantiate *template* against *graph* (one workload query).

    Returns a star-shaped :class:`Query` (convertible via
    :meth:`StarQuery.from_query`; pivot is node 0).
    """
    rng = rng or random.Random()
    pool = _pivot_pool(graph, template.pivot_type)
    # "We search the template in the graphs": prefer a pivot entity that
    # actually embeds the template (has a structural match per leaf), so
    # most workload queries have answers.  Fall back to the last try.
    pivot_node = rng.choice(pool)
    for _attempt in range(25):
        candidate = rng.choice(pool)
        if _embeds_template(graph, candidate, template):
            pivot_node = candidate
            break
    pivot_data = graph.node(pivot_node)

    query = Query(name=template.name)
    if template.pivot_variable:
        pivot_label = _perturbed_name(pivot_data.name, rng)
    else:
        # Class-constrained pivot: a typed wildcard (see _fill_leaf).
        pivot_label = VARIABLE
    pivot_type = template.pivot_type if template.pivot_type != VARIABLE else ""
    pivot = query.add_node(pivot_label, type=pivot_type)

    for spec in template.leaves:
        label, leaf_type, relation = _fill_leaf(graph, pivot_node, spec, rng)
        leaf = query.add_node(label, type=leaf_type)
        query.add_edge(pivot, leaf, relation)
    return query


def star_workload(
    graph: KnowledgeGraph,
    count: int,
    seed: int = 23,
    templates: Optional[Sequence[StarTemplate]] = None,
    size: Optional[int] = None,
) -> List[Query]:
    """Generate *count* star queries by random template instantiation.

    Args:
        templates: template pool (defaults to all 50).
        size: restrict to templates with exactly this many query nodes.

    Raises:
        QueryError: if the filtered template pool is empty.
    """
    rng = random.Random(seed)
    pool = list(templates) if templates is not None else all_templates()
    if size is not None:
        pool = [t for t in pool if t.size == size]
    if not pool:
        raise QueryError(f"no templates available (size={size})")
    return [instantiate(rng.choice(pool), graph, rng) for _ in range(count)]


def _sample_connected_nodes(
    graph: KnowledgeGraph,
    num_nodes: int,
    rng: random.Random,
    prefer_hubs: bool = False,
) -> List[int]:
    """Random-walk a connected node set of the requested size.

    With ``prefer_hubs`` the walk starts at a high-degree node and expands
    toward higher-degree neighbors -- used as a fallback when a requested
    query shape needs more induced edges than a uniform walk finds.
    """
    hub_pool: List[int] = []
    if prefer_hubs:
        hub_pool = sorted(graph.nodes(), key=graph.degree, reverse=True)[:200]
    for _attempt in range(20):
        if prefer_hubs and hub_pool:
            start = rng.choice(hub_pool)
        else:
            start = rng.randrange(graph.num_node_slots)
            if start not in graph:  # tombstoned slot on a mutated graph
                continue
        chosen: Set[int] = {start}
        frontier: List[int] = [start]
        while frontier and len(chosen) < num_nodes:
            v = rng.choice(frontier)
            nbrs = [n for n, _e in graph.neighbors(v) if n not in chosen]
            if not nbrs:
                frontier.remove(v)
                continue
            if prefer_hubs:
                nxt = max(
                    rng.sample(nbrs, min(4, len(nbrs))), key=graph.degree
                )
            else:
                nxt = rng.choice(nbrs)
            chosen.add(nxt)
            frontier.append(nxt)
        if len(chosen) == num_nodes:
            return list(chosen)
    raise QueryError(
        f"could not sample a connected subgraph of {num_nodes} nodes"
    )


def random_subgraph_query(
    graph: KnowledgeGraph,
    num_nodes: int,
    num_edges: int,
    seed: Optional[int] = None,
    wildcard_rate: float = 0.3,
) -> Query:
    """Lift a random connected subgraph of *graph* to a query ``Q(n, e)``.

    The subgraph guarantees at least one exact answer exists.  Node labels
    are (possibly partial) entity names with at most 50% wildcards; edge
    labels keep the data relation with probability 0.7.

    Raises:
        QueryError: if the graph cannot host the requested shape.
    """
    if num_nodes < 2:
        raise QueryError("complex queries need at least 2 nodes")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges < num_nodes - 1 or num_edges > max_edges:
        raise QueryError(
            f"Q({num_nodes},{num_edges}) infeasible: need "
            f"{num_nodes - 1} <= e <= {max_edges}"
        )
    rng = random.Random(seed)
    for _attempt in range(40):
        nodes = _sample_connected_nodes(
            graph, num_nodes, rng, prefer_hubs=(_attempt >= 10)
        )
        node_set = set(nodes)
        # Collect induced edges, one per unordered pair (queries are simple).
        pair_edges = {}
        for v in nodes:
            for nbr, eid in graph.neighbors(v):
                if nbr in node_set:
                    pair = (min(v, nbr), max(v, nbr))
                    pair_edges.setdefault(pair, eid)
        if len(pair_edges) < num_edges:
            continue
        # Keep a connected subset of exactly num_edges pairs: spanning tree
        # first, then random extras.
        pairs = list(pair_edges)
        rng.shuffle(pairs)
        chosen: List[Tuple[int, int]] = []
        reached = {nodes[0]}
        remaining = pairs[:]
        while len(reached) < num_nodes:
            progressed = False
            for pair in remaining:
                if (pair[0] in reached) != (pair[1] in reached):
                    chosen.append(pair)
                    reached.update(pair)
                    remaining.remove(pair)
                    progressed = True
                    break
            if not progressed:
                break
        if len(reached) < num_nodes:
            continue
        extras = [p for p in remaining if p not in chosen]
        chosen.extend(extras[: num_edges - len(chosen)])
        if len(chosen) < num_edges:
            continue
        return _lift_to_query(graph, nodes, chosen, pair_edges, rng, wildcard_rate)
    raise QueryError(
        f"could not generate Q({num_nodes},{num_edges}) from {graph.name}"
    )


def _lift_to_query(
    graph: KnowledgeGraph,
    nodes: List[int],
    pairs: List[Tuple[int, int]],
    pair_edges,
    rng: random.Random,
    wildcard_rate: float,
) -> Query:
    query = Query(name=f"Q({len(nodes)},{len(pairs)})")
    max_wildcards = len(nodes) // 2
    wildcards_used = 0
    local = {}
    for v in nodes:
        data = graph.node(v)
        if wildcards_used < max_wildcards and rng.random() < wildcard_rate:
            label = VARIABLE
            wildcards_used += 1
        else:
            label = _perturbed_name(data.name, rng)
        node_type = data.type if rng.random() < 0.6 else ""
        local[v] = query.add_node(label, type=node_type)
    for pair in pairs:
        relation = graph.edge(pair_edges[pair])[2].relation
        label = relation if rng.random() < 0.7 else VARIABLE
        query.add_edge(local[pair[0]], local[pair[1]], label)
    return query


def complex_workload(
    graph: KnowledgeGraph,
    count: int,
    shape: Tuple[int, int] = (4, 4),
    seed: int = 29,
) -> List[Query]:
    """Generate *count* complex queries of shape ``Q(nodes, edges)``.

    Individual unlucky samples are retried with fresh sub-seeds; the
    workload fails only when the shape is (near-)infeasible in *graph*.

    Raises:
        QueryError: when a query repeatedly cannot be generated.
    """
    rng = random.Random(seed)
    queries: List[Query] = []
    failures = 0
    while len(queries) < count:
        try:
            queries.append(
                random_subgraph_query(
                    graph, shape[0], shape[1], seed=rng.randrange(1 << 30)
                )
            )
        except QueryError:
            failures += 1
            if failures > 5 * count + 10:
                raise
    return queries
