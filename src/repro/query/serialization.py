"""Workload serialization: save/load query sets as text.

Benchmark workloads are regenerable from seeds, but shipping a concrete
workload file makes runs auditable and lets users edit queries by hand.
The format is one block per query -- a ``== name ==`` header followed by
the edge-pattern language of :mod:`repro.query.parser`.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Union

from repro.errors import QueryError
from repro.query.model import Query
from repro.query.parser import format_query, parse_query

_HEADER_PREFIX = "== "
_HEADER_SUFFIX = " =="


def save_workload(
    queries: Sequence[Query], path: Union[str, os.PathLike]
) -> None:
    """Write *queries* to *path* (one edge-pattern block per query).

    Raises:
        QueryError: if a query has no edges (the text format represents
            edges; single-node queries are not serializable).
    """
    blocks: List[str] = []
    for i, query in enumerate(queries):
        if not query.edges:
            raise QueryError(
                f"query #{i} ({query.name!r}) has no edges; "
                "the workload format cannot represent it"
            )
        name = query.name or f"query-{i}"
        blocks.append(
            f"{_HEADER_PREFIX}{name}{_HEADER_SUFFIX}\n{format_query(query)}"
        )
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("\n\n".join(blocks) + "\n")


def load_workload(path: Union[str, os.PathLike]) -> List[Query]:
    """Load a workload previously written by :func:`save_workload`.

    Raises:
        QueryError: on malformed blocks or unparsable queries.
    """
    if not os.path.exists(path):
        raise QueryError(f"workload file not found: {path}")
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    queries: List[Query] = []
    current_name = ""
    current_lines: List[str] = []

    def flush() -> None:
        nonlocal current_lines
        if current_lines:
            queries.append(
                parse_query("\n".join(current_lines), name=current_name)
            )
            current_lines = []

    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith(_HEADER_PREFIX) and line.endswith(_HEADER_SUFFIX):
            flush()
            current_name = line[len(_HEADER_PREFIX):-len(_HEADER_SUFFIX)]
        elif line:
            current_lines.append(raw)
    flush()
    if not queries:
        raise QueryError(f"no queries found in {path}")
    return queries
