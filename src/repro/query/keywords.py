"""Keyword-query front-end: bag of keywords -> star query.

Users of the paper's engine must hand-build a :class:`Query` graph;
real search boxes get a flat string.  This module bridges the gap by
*synthesizing* a star query from keywords using only the graph's own
indexes (token postings, subtype closures) -- no scoring:

1. each keyword is classified as a **type** (it names a node type with
   live members, subtype closure included), a **token** (it hits the
   inverted token index, synonym/abbreviation expansion included), or
   **unknown** (reported, excluded from the query);
2. a pivot is chosen -- a typed wildcard when a type keyword is present
   (``"film"`` means *some film*, not a node named "film"), otherwise
   the most selective token keyword;
3. every other matched keyword becomes a leaf joined to the pivot by a
   wildcard edge (any relation, path length <= d at search time).

A keyword matching both a type and tokens is **ambiguous**; the type
reading wins deterministically and the interpretation records the
alternative so callers (the CLI) can surface it.  Multi-word phrases
(quote them on the command line) stay single keywords.

The synthesized query is an ordinary :class:`Query`; it flows through
decomposition, planning, sharding and serving like any hand-built one.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.core.candidates import expanded_query_tokens
from repro.errors import QueryError
from repro.query.model import Query, WILDCARD
from repro.similarity.descriptors import Descriptor


@dataclass(frozen=True)
class KeywordRole:
    """How one keyword was read.

    Attributes:
        keyword: the raw keyword (phrase).
        role: ``type`` | ``token`` | ``unknown``.
        matches: how many graph nodes the chosen reading covers.
        type_name: the resolved type label (type role only).
        alternatives: other admissible readings, e.g. ``("token",)`` for
            an ambiguous keyword resolved as a type.
    """

    keyword: str
    role: str
    matches: int
    type_name: str = ""
    alternatives: Tuple[str, ...] = ()


@dataclass(frozen=True)
class KeywordInterpretation:
    """A synthesized query plus full provenance.

    Attributes:
        query: the star query to search with.
        pivot_keyword: the keyword chosen as the pivot.
        roles: per-keyword readings, in input order.
        unmatched: keywords excluded (no type, no postings).
    """

    query: Query
    pivot_keyword: str
    roles: Tuple[KeywordRole, ...]
    unmatched: Tuple[str, ...]

    def describe(self) -> str:
        """One human-readable line per keyword (CLI ``--explain``)."""
        lines = []
        for role in self.roles:
            marker = "pivot" if role.keyword == self.pivot_keyword else "leaf"
            if role.role == "unknown":
                lines.append(f"{role.keyword!r}: no match (ignored)")
                continue
            detail = f"{role.role}, {role.matches} nodes"
            if role.type_name and role.type_name != role.keyword:
                detail += f", type {role.type_name!r}"
            if role.alternatives:
                detail += f", also readable as {'/'.join(role.alternatives)}"
            lines.append(f"{role.keyword!r}: {marker} ({detail})")
        return "\n".join(lines)


def parse_keywords(text: Union[str, Sequence[str]]) -> List[str]:
    """Split a keyword string; quoted phrases stay single keywords."""
    if not isinstance(text, str):
        return [kw for kw in (k.strip() for k in text) if kw]
    try:
        return [kw for kw in shlex.split(text) if kw.strip()]
    except ValueError as exc:  # unbalanced quotes
        raise QueryError(f"cannot parse keywords {text!r}: {exc}") from exc


def _classify(graph, keyword: str, type_map: Dict[str, str]) -> KeywordRole:
    type_name = type_map.get(keyword.strip().lower(), "")
    type_matches = (
        len(graph.nodes_of_subtype(type_name)) if type_name else 0
    )
    token_matches = len(
        graph.nodes_matching_any(expanded_query_tokens(Descriptor(keyword)))
    )
    if type_matches and token_matches:
        # Ambiguous: a type name that also appears in node descriptions.
        # The type reading is the broader intent ("film" = some film) and
        # wins deterministically; the alternative is recorded.
        return KeywordRole(
            keyword, "type", type_matches, type_name=type_name,
            alternatives=("token",),
        )
    if type_matches:
        return KeywordRole(keyword, "type", type_matches, type_name=type_name)
    if token_matches:
        return KeywordRole(keyword, "token", token_matches)
    return KeywordRole(keyword, "unknown", 0)


def synthesize_query(
    graph, keywords: Union[str, Sequence[str]]
) -> KeywordInterpretation:
    """Build a star :class:`Query` from *keywords* (string or list).

    Raises:
        QueryError: when no keyword is given or none matches the graph.
    """
    parsed = parse_keywords(keywords)
    if not parsed:
        raise QueryError("keyword query is empty")
    # Case-insensitive type lookup over types with live members.  The
    # subtype closure makes a parent type usable even when only subtypes
    # have members.
    type_map = {t.lower(): t for t in graph.types()}
    roles = tuple(_classify(graph, kw, type_map) for kw in parsed)
    matched = [r for r in roles if r.role != "unknown"]
    unmatched = tuple(r.keyword for r in roles if r.role == "unknown")
    if not matched:
        raise QueryError(
            f"no keyword matches anything in the graph: {parsed!r} "
            "(not a node type, and no token/synonym postings)"
        )

    # Pivot: first type keyword if any (typed wildcard -- the entity
    # being asked for), else the most selective token keyword.
    type_roles = [r for r in matched if r.role == "type"]
    if type_roles:
        pivot_role = type_roles[0]
    else:
        pivot_role = min(matched, key=lambda r: (r.matches, parsed.index(r.keyword)))

    query = Query(name=f"keywords({' '.join(parsed)})")
    if pivot_role.role == "type":
        pivot = query.add_node(WILDCARD, type=pivot_role.type_name)
    else:
        pivot = query.add_node(pivot_role.keyword)
    for role in matched:
        if role is pivot_role:
            continue
        if role.role == "type":
            leaf = query.add_node(WILDCARD, type=role.type_name)
        else:
            leaf = query.add_node(role.keyword)
        query.add_edge(pivot, leaf, WILDCARD)
    return KeywordInterpretation(
        query=query,
        pivot_keyword=pivot_role.keyword,
        roles=roles,
        unmatched=unmatched,
    )
