"""Query decomposition into star subqueries (Section VI-B).

Given a general query ``Q``, STAR decomposes it into stars whose pivots
cover every edge; each edge is assigned to exactly one incident pivot, so
the stars partition ``E_Q`` (node scores shared between stars are later
split by the alpha-scheme).  The paper frames decomposition as

    maximize  sum_i delta(Q_i*)  -  lambda * sum_i |f(Q_i*) - f_bar|
    subject to minimal star count m                         (Eq. 5)

and enumerates decompositions by increasing ``m``, returning the best-
scoring one at the first feasible ``m``.  Features:

* ``SimSize``  -- ``f = |E_i*|`` (balanced edge partition);
* ``SimTop``   -- ``f`` = sampled top-1 pivot match score;
* ``SimDec``   -- ``delta`` = estimated average score decrement of the
  star's match list, using sampled candidate counts and the edge
  connection probability ``p`` estimated offline.

Baselines: ``Rand`` (random pivots) and ``MaxDeg`` (greedy highest degree).
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import DecompositionError
from repro.query.model import Query, QueryEdge, QueryNode, StarQuery

#: Edge-connection probability estimated offline via edge queries
#: (the paper reports p = 4.5e-4 for DBpedia).
DEFAULT_CONNECT_PROBABILITY = 4.5e-4

METHODS = ("rand", "maxdeg", "simsize", "simtop", "simdec")


@dataclass
class Decomposition:
    """Result of decomposing a query.

    Attributes:
        stars: the star subqueries (edge-disjoint, jointly covering E_Q).
        pivots: pivot query-node ids, parallel to ``stars``.
        method: decomposition method name.
        objective: Eq. 5 objective value (0.0 for rand/maxdeg).
    """

    stars: List[StarQuery]
    pivots: List[int]
    method: str
    objective: float = 0.0

    @property
    def num_stars(self) -> int:
        return len(self.stars)

    def joint_nodes(self) -> Set[int]:
        """Query nodes appearing in more than one star."""
        seen: Set[int] = set()
        joint: Set[int] = set()
        for star in self.stars:
            ids = set(star.node_ids())
            joint |= seen & ids
            seen |= ids
        return joint


class NodeStatisticsSampler:
    """Samples per-query-node match statistics for SimTop / SimDec.

    The paper samples ~200 graph nodes per query node and computes their
    match scores online; we do the same through the shared scorer so the
    sampling cost is measured with everything else.
    """

    def __init__(self, scorer, sample_size: int = 200, seed: int = 41) -> None:
        self._scorer = scorer
        self._sample_size = sample_size
        self._rng = random.Random(seed)
        self._cache: Dict[int, Tuple[float, float, float]] = {}
        graph = scorer.graph
        n = graph.num_nodes
        k = min(n, sample_size)
        self._sample = self._rng.sample(range(n), k) if n else []
        self._scale = n / max(1, k)

    def stats(self, node: QueryNode) -> Tuple[float, float, float]:
        """Return ``(top1_score, mean_score, est_candidates)`` for *node*.

        ``est_candidates`` extrapolates the sampled above-threshold count
        to the full graph.
        """
        cached = self._cache.get(node.id)
        if cached is not None:
            return cached
        scorer = self._scorer
        threshold = scorer.config.node_threshold
        desc = node.descriptor
        scores = [scorer.node_score(desc, v) for v in self._sample]
        passing = [s for s in scores if s >= threshold]
        top1 = max(passing, default=0.0)
        mean = sum(passing) / len(passing) if passing else 0.0
        est = len(passing) * self._scale
        result = (top1, mean, max(1.0, est))
        self._cache[node.id] = result
        return result


def decompose(
    query: Query,
    method: str = "simdec",
    scorer=None,
    seed: int = 41,
    lam: float = 1.0,
    sample_size: int = 200,
    connect_probability: float = DEFAULT_CONNECT_PROBABILITY,
    max_pivot_sets: int = 2000,
) -> Decomposition:
    """Decompose *query* into star subqueries with the given *method*.

    Args:
        method: one of :data:`METHODS`.
        scorer: a :class:`repro.similarity.scoring.ScoringFunction`;
            required by ``simtop`` and ``simdec``.
        lam: the Eq. 5 trade-off parameter.
        connect_probability: SimDec's ``p``.
        max_pivot_sets: cap on enumerated pivot covers per size ``m``.

    Raises:
        DecompositionError: on unknown method, missing scorer, or
            structurally undecomposable queries.
    """
    method = method.lower()
    if method not in METHODS:
        raise DecompositionError(
            f"unknown decomposition method {method!r}; choose from {METHODS}"
        )
    query.validate()
    if not query.edges:
        star = StarQuery.from_query(query)
        return Decomposition([star], [star.pivot.id], method)
    if method in ("simtop", "simdec") and scorer is None:
        raise DecompositionError(f"method {method!r} requires a scorer")

    if method == "rand":
        return _decompose_rand(query, seed)
    if method == "maxdeg":
        return _decompose_maxdeg(query)

    sampler = (
        NodeStatisticsSampler(scorer, sample_size=sample_size, seed=seed)
        if scorer is not None
        else None
    )
    return _decompose_optimized(
        query, method, sampler, lam, connect_probability, max_pivot_sets
    )


# ----------------------------------------------------------------------
# Edge assignment and star construction
# ----------------------------------------------------------------------

def _assign_edges(
    query: Query, pivots: Sequence[int]
) -> Optional[Dict[int, List[QueryEdge]]]:
    """Assign each query edge to exactly one incident pivot.

    Forced edges (one pivot endpoint) first; flexible edges go to the
    pivot with the currently smallest star, which keeps partitions
    balanced (the SimSize intuition).  Returns None if some edge touches
    no pivot (not a cover).
    """
    pivot_set = set(pivots)
    assignment: Dict[int, List[QueryEdge]] = {p: [] for p in pivots}
    flexible: List[QueryEdge] = []
    for edge in query.edges:
        src_p, dst_p = edge.src in pivot_set, edge.dst in pivot_set
        if src_p and dst_p:
            flexible.append(edge)
        elif src_p:
            assignment[edge.src].append(edge)
        elif dst_p:
            assignment[edge.dst].append(edge)
        else:
            return None
    for edge in flexible:
        target = min((edge.src, edge.dst), key=lambda p: len(assignment[p]))
        assignment[target].append(edge)
    # Every pivot must anchor at least one edge, otherwise drop it.
    return {p: edges for p, edges in assignment.items() if edges}


def _build_stars(
    query: Query, assignment: Dict[int, List[QueryEdge]]
) -> Tuple[List[StarQuery], List[int]]:
    stars: List[StarQuery] = []
    pivots: List[int] = []
    for pivot_id, edges in assignment.items():
        leaves = [(query.nodes[e.other(pivot_id)], e) for e in edges]
        stars.append(StarQuery(query.nodes[pivot_id], leaves,
                               name=f"{query.name}*{pivot_id}"))
        pivots.append(pivot_id)
    return stars, pivots


def _finish(
    query: Query, pivots: Sequence[int], method: str, objective: float = 0.0
) -> Decomposition:
    assignment = _assign_edges(query, pivots)
    if assignment is None:
        raise DecompositionError(f"pivots {pivots} do not cover all edges")
    stars, pivot_ids = _build_stars(query, assignment)
    return Decomposition(stars, pivot_ids, method, objective)


# ----------------------------------------------------------------------
# Baseline methods
# ----------------------------------------------------------------------

def _decompose_rand(query: Query, seed: int) -> Decomposition:
    """Random greedy cover: repeatedly pick a random node of an uncovered
    edge as pivot."""
    rng = random.Random(seed)
    uncovered = set(range(query.num_edges))
    pivots: List[int] = []
    while uncovered:
        edge = query.edges[rng.choice(sorted(uncovered))]
        pivot = rng.choice((edge.src, edge.dst))
        pivots.append(pivot)
        uncovered -= {
            eid for eid in uncovered
            if pivot in (query.edges[eid].src, query.edges[eid].dst)
        }
    return _finish(query, pivots, "rand")


def _decompose_maxdeg(query: Query) -> Decomposition:
    """Greedy cover picking the node covering the most uncovered edges."""
    uncovered = set(range(query.num_edges))
    pivots: List[int] = []
    while uncovered:
        def coverage(node_id: int) -> int:
            return sum(
                1 for eid in uncovered
                if node_id in (query.edges[eid].src, query.edges[eid].dst)
            )

        best = max(range(query.num_nodes), key=lambda v: (coverage(v), -v))
        if coverage(best) == 0:  # pragma: no cover - cannot happen
            raise DecompositionError("maxdeg stalled")
        pivots.append(best)
        uncovered -= {
            eid for eid in uncovered
            if best in (query.edges[eid].src, query.edges[eid].dst)
        }
    return _finish(query, pivots, "maxdeg")


# ----------------------------------------------------------------------
# Eq. 5 optimized methods
# ----------------------------------------------------------------------

def _decompose_optimized(
    query: Query,
    method: str,
    sampler: Optional[NodeStatisticsSampler],
    lam: float,
    connect_probability: float,
    max_pivot_sets: int,
) -> Decomposition:
    """Enumerate pivot covers by increasing size; score with Eq. 5."""
    node_ids = list(range(query.num_nodes))
    for m in range(1, query.num_nodes + 1):
        best: Optional[Tuple[float, Decomposition]] = None
        enumerated = 0
        for pivot_combo in itertools.combinations(node_ids, m):
            enumerated += 1
            if enumerated > max_pivot_sets:
                break
            assignment = _assign_edges(query, pivot_combo)
            if assignment is None or len(assignment) != m:
                continue
            stars, pivots = _build_stars(query, assignment)
            objective = _eq5_objective(
                stars, method, sampler, lam, connect_probability
            )
            candidate = Decomposition(stars, pivots, method, objective)
            if best is None or objective > best[0]:
                best = (objective, candidate)
        if best is not None:
            return best[1]
    raise DecompositionError(f"no feasible decomposition for {query!r}")


def _eq5_objective(
    stars: Sequence[StarQuery],
    method: str,
    sampler: Optional[NodeStatisticsSampler],
    lam: float,
    connect_probability: float,
) -> float:
    features = [
        _feature(star, method, sampler, connect_probability) for star in stars
    ]
    deltas = [
        _score_decrement(star, sampler, connect_probability)
        if method == "simdec"
        else 0.0
        for star in stars
    ]
    f_bar = sum(features) / len(features)
    return sum(deltas) - lam * sum(abs(f - f_bar) for f in features)


def _feature(
    star: StarQuery,
    method: str,
    sampler: Optional[NodeStatisticsSampler],
    connect_probability: float,
) -> float:
    if method == "simsize":
        return float(star.num_edges)
    if method == "simtop":
        assert sampler is not None
        top1, _mean, _est = sampler.stats(star.pivot)
        return top1
    # simdec: the feature *is* the decrement (Eq. 5 with f = delta).
    return _score_decrement(star, sampler, connect_probability)


def _score_decrement(
    star: StarQuery,
    sampler: Optional[NodeStatisticsSampler],
    connect_probability: float,
) -> float:
    """SimDec's estimated average score decrement of the star's match list.

    ``delta ~ (F_top1 - F_floor) / n_i`` where the match-list length
    ``n_i`` is estimated as ``prod_v n_v * p^{|E_i*|}`` (sampled candidate
    counts discounted by the probability that candidate pairs connect).
    """
    if sampler is None:  # pragma: no cover - guarded by decompose()
        return 0.0
    top_total = 0.0
    floor_total = 0.0
    est_matches = 1.0
    pivot_top, pivot_mean, pivot_count = sampler.stats(star.pivot)
    top_total += pivot_top
    floor_total += pivot_mean
    est_matches *= pivot_count
    for leaf, _edge in star.leaves:
        top, mean, count = sampler.stats(leaf)
        top_total += top
        floor_total += mean
        est_matches *= count
    est_matches *= connect_probability ** star.num_edges
    spread = max(0.0, top_total - floor_total)
    return spread / max(1.0, est_matches)
