"""Neighborhood sketches: the candidate-pruning accelerator of [2].

Section VII: "We did not employ the graph sketch technique developed in
[2] as it can benefit all the search algorithms."  We build it anyway (as
an optional, off-by-default accelerator) so the claim is testable: a
compact per-node *neighbor Bloom signature* lets a matcher discard a
pivot candidate without scanning its adjacency when some leaf's candidate
set provably has no member among the pivot's neighbors.

Soundness: a Bloom signature sets ``bits_per_element`` bits per member;
if two signatures share no set bit, the underlying sets are provably
disjoint (bits are only ever *added*).  The converse does not hold, so
the sketch can only fail to prune -- it never prunes a real match, and
every matcher using it stays exact.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import GraphError
from repro.graph.knowledge_graph import KnowledgeGraph

_GOLDEN = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def _mix(value: int, salt: int) -> int:
    """Cheap 64-bit integer hash (splitmix-style finalizer)."""
    x = (value * _GOLDEN + salt * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 31
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 29
    return x


class BloomSignature:
    """A fixed-width Bloom signature over integer ids.

    Args:
        num_bits: signature width (power of two recommended).
        bits_per_element: hash functions per inserted id.
    """

    __slots__ = ("num_bits", "bits_per_element", "bits")

    def __init__(self, num_bits: int = 256, bits_per_element: int = 2) -> None:
        if num_bits <= 0 or bits_per_element <= 0:
            raise GraphError(
                f"invalid Bloom parameters ({num_bits}, {bits_per_element})"
            )
        self.num_bits = num_bits
        self.bits_per_element = bits_per_element
        self.bits = 0

    def add(self, element: int) -> None:
        for salt in range(self.bits_per_element):
            self.bits |= 1 << (_mix(element, salt) % self.num_bits)

    def add_all(self, elements: Iterable[int]) -> None:
        for element in elements:
            self.add(element)

    def might_contain(self, element: int) -> bool:
        """False ⇒ definitely absent; True ⇒ possibly present."""
        for salt in range(self.bits_per_element):
            if not self.bits & (1 << (_mix(element, salt) % self.num_bits)):
                return False
        return True

    def disjoint_from(self, other: "BloomSignature") -> bool:
        """True ⇒ the two underlying sets are provably disjoint.

        Only meaningful between signatures with identical parameters.
        """
        return (self.bits & other.bits) == 0

    def saturation(self) -> float:
        """Fraction of set bits (1.0 = useless, everything collides)."""
        return bin(self.bits).count("1") / self.num_bits


class NeighborhoodSketch:
    """Per-node Bloom signatures of 1-hop neighbor ids.

    Build once per graph (O(|E|)); then
    :meth:`pivot_may_match` answers "could this pivot have a neighbor in
    each of these candidate sets?" in O(signature words) instead of
    O(degree * leaves).

    Args:
        graph: the data graph.
        num_bits: signature width (wider = fewer false positives; 256
            bits is ~32 bytes/node).
    """

    def __init__(self, graph: KnowledgeGraph, num_bits: int = 256) -> None:
        self.graph = graph
        self.num_bits = num_bits
        self._graph_version = graph.version
        # Indexed by node id, so cover every *slot*: removed nodes get an
        # empty signature (ids are stable under mutation; live ids may
        # have gaps).
        self._signatures: List[int] = []
        for node in range(graph.num_node_slots):
            sig = BloomSignature(num_bits)
            if node in graph:
                sig.add_all(nbr for nbr, _eid in graph.neighbors(node))
            self._signatures.append(sig.bits)

    def signature_of(self, node: int) -> int:
        """Raw signature bits of *node*'s neighborhood."""
        return self._signatures[node]

    def candidate_signature(self, candidates: Iterable[int]) -> BloomSignature:
        """Signature of a candidate node-id set (one per query leaf)."""
        sig = BloomSignature(self.num_bits)
        sig.add_all(candidates)
        return sig

    def pivot_may_match(
        self, pivot: int, leaf_signatures: Sequence[BloomSignature]
    ) -> bool:
        """False ⇒ some leaf provably has no candidate adjacent to *pivot*.

        The sound pruning test: a star match pivoted at *pivot* needs, for
        every leaf, at least one leaf-candidate among the pivot's
        neighbors; disjoint signatures certify impossibility.
        """
        if self.graph.version != self._graph_version:
            raise GraphError(
                "graph was modified after this sketch was built; rebuild it"
            )
        pivot_bits = self._signatures[pivot]
        for leaf_sig in leaf_signatures:
            if (pivot_bits & leaf_sig.bits) == 0:
                return False
        return True

    def memory_bytes(self) -> int:
        """Approximate sketch footprint."""
        return len(self._signatures) * self.num_bits // 8
