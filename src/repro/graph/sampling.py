"""Graph sampling / expansion for the scalability experiment (Exp-5).

The paper extracts ``G1(10M, 51M)`` from Freebase and "expands it in a BFS
manner (each time randomly pick up a node and add the new edge from
Freebase) to three larger graphs G2, G3, G4".  We reproduce the protocol:
given a *universe* graph, :func:`bfs_sample` extracts a connected seed
graph of a target size, and :func:`bfs_expand` grows a sampled graph by
repeatedly picking a frontier node at random and pulling in one of its
unused universe edges.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DatasetError
from repro.graph.knowledge_graph import KnowledgeGraph


class SampledGraph:
    """A growable subgraph of a fixed universe graph.

    Tracks the mapping from universe node ids to local ids so that repeated
    :func:`bfs_expand` calls produce the nested G1 subset-of G2 subset-of G3
    chain the paper uses.
    """

    def __init__(self, universe: KnowledgeGraph, name: str) -> None:
        self.universe = universe
        self.graph = KnowledgeGraph(name=name, directed=universe.directed)
        self.node_map: Dict[int, int] = {}
        self.used_edges: Set[int] = set()

    def ensure_node(self, universe_id: int) -> int:
        """Add the universe node to the sample (idempotent); return local id."""
        local = self.node_map.get(universe_id)
        if local is None:
            data = self.universe.node(universe_id)
            local = self.graph.add_node(
                data.name, data.type, data.keywords, **data.attrs
            )
            self.node_map[universe_id] = local
        return local

    def add_universe_edge(self, edge_id: int) -> bool:
        """Pull a universe edge (and its endpoints) into the sample.

        Returns False if the edge was already present.
        """
        if edge_id in self.used_edges:
            return False
        src, dst, data = self.universe.edge(edge_id)
        self.graph.add_edge(
            self.ensure_node(src), self.ensure_node(dst), data.relation, **data.attrs
        )
        self.used_edges.add(edge_id)
        return True


def bfs_sample(
    universe: KnowledgeGraph,
    num_edges: int,
    seed: int = 7,
    name: Optional[str] = None,
) -> SampledGraph:
    """Extract a connected seed sample with ~*num_edges* edges by BFS.

    Starts from the highest-degree node (a hub, as Freebase extraction
    would) and absorbs edges in BFS order until the budget is reached.

    Raises:
        DatasetError: if the universe has no edges.
    """
    if universe.num_edges == 0:
        raise DatasetError("cannot sample from an edgeless universe graph")
    rng = random.Random(seed)
    sample = SampledGraph(universe, name or f"{universe.name}-G1")
    start = max(universe.nodes(), key=universe.degree)
    sample.ensure_node(start)
    frontier: List[int] = [start]
    visited: Set[int] = {start}
    while frontier and len(sample.used_edges) < num_edges:
        v = frontier.pop(0)
        nbrs = list(universe.neighbors(v))
        rng.shuffle(nbrs)
        for nbr, eid in nbrs:
            if len(sample.used_edges) >= num_edges:
                break
            sample.add_universe_edge(eid)
            if nbr not in visited:
                visited.add(nbr)
                frontier.append(nbr)
    return sample


def bfs_expand(
    sample: SampledGraph,
    num_new_edges: int,
    seed: int = 7,
    name: Optional[str] = None,
) -> SampledGraph:
    """Grow *sample* by *num_new_edges* universe edges (paper's protocol).

    Each step picks a random already-sampled node and adds one of its
    not-yet-used universe edges; when a node is saturated it is dropped
    from the pick pool.  Returns a new :class:`SampledGraph` sharing the
    universe (the input sample is not mutated).
    """
    universe = sample.universe
    grown = SampledGraph(universe, name or f"{sample.graph.name}+")
    # Copy current sample.
    for universe_id in sample.node_map:
        grown.ensure_node(universe_id)
    for eid in sorted(sample.used_edges):
        grown.add_universe_edge(eid)

    rng = random.Random(seed)
    pool: List[int] = list(grown.node_map.keys())
    added = 0
    while pool and added < num_new_edges:
        idx = rng.randrange(len(pool))
        v = pool[idx]
        candidates = [eid for _nbr, eid in universe.neighbors(v)
                      if eid not in grown.used_edges]
        if not candidates:
            pool[idx] = pool[-1]
            pool.pop()
            continue
        eid = rng.choice(candidates)
        src, dst, _data = universe.edge(eid)
        new_nodes = [u for u in (src, dst) if u not in grown.node_map]
        grown.add_universe_edge(eid)
        pool.extend(new_nodes)
        added += 1
    return grown


def scalability_series(
    universe: KnowledgeGraph,
    sizes: List[int],
    seed: int = 7,
) -> List[KnowledgeGraph]:
    """Build the nested G1..Gn series of Exp-5.

    Args:
        universe: the full Freebase-like graph.
        sizes: target edge counts, strictly increasing (e.g. paper ratios
            51/91/130/180 scaled down).

    Returns:
        One graph per size; each is a supergraph of the previous.
    """
    if sorted(sizes) != sizes or len(set(sizes)) != len(sizes):
        raise DatasetError(f"sizes must be strictly increasing, got {sizes}")
    series: List[KnowledgeGraph] = []
    sample = bfs_sample(universe, sizes[0], seed=seed, name=f"{universe.name}-G1")
    series.append(sample.graph)
    for i, target in enumerate(sizes[1:], start=2):
        sample = bfs_expand(
            sample,
            target - len(sample.used_edges),
            seed=seed + i,
            name=f"{universe.name}-G{i}",
        )
        series.append(sample.graph)
    return series
