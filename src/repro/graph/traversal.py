"""Bounded traversal primitives shared by the matching algorithms.

``stark`` needs 1-hop neighbor scans; ``stard``'s exact per-pivot phase and
the d-bounded ``graphTA`` baseline need "all nodes within d hops with their
hop distance"; the BP baseline needs pairwise bounded distances between
candidate sets.  Centralizing them here keeps every algorithm's traversal
cost accounted identically.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Set, Tuple

from repro.graph.knowledge_graph import KnowledgeGraph


def bounded_bfs_layers(
    graph: KnowledgeGraph, source: int, max_hops: int
) -> List[List[int]]:
    """BFS layers from *source* up to *max_hops*.

    Returns ``layers`` where ``layers[h]`` lists nodes at shortest-path
    distance exactly ``h`` (``layers[0] == [source]``).  Layers beyond the
    reachable frontier are empty lists, so ``len(layers) == max_hops + 1``.
    """
    layers: List[List[int]] = [[source]]
    seen: Set[int] = {source}
    frontier = [source]
    for _hop in range(max_hops):
        nxt: List[int] = []
        for v in frontier:
            for nbr, _eid in graph.neighbors(v):
                if nbr not in seen:
                    seen.add(nbr)
                    nxt.append(nbr)
        layers.append(nxt)
        frontier = nxt
        if not frontier:
            # Pad remaining layers so the shape contract holds.
            layers.extend([] for _ in range(max_hops - _hop - 1))
            break
    return layers


def nodes_within(
    graph: KnowledgeGraph, source: int, max_hops: int
) -> Dict[int, int]:
    """Map each node within *max_hops* of *source* to its hop distance.

    *source* itself maps to 0.
    """
    dist: Dict[int, int] = {source: 0}
    queue = deque([source])
    while queue:
        v = queue.popleft()
        h = dist[v]
        if h == max_hops:
            continue
        for nbr, _eid in graph.neighbors(v):
            if nbr not in dist:
                dist[nbr] = h + 1
                queue.append(nbr)
    return dist


def bounded_distance(
    graph: KnowledgeGraph, source: int, targets: Iterable[int], max_hops: int
) -> Dict[int, int]:
    """Hop distances from *source* to each reachable node of *targets*.

    Stops early once every target is found or *max_hops* is exhausted.
    Unreachable targets are absent from the result.
    """
    remaining = set(targets)
    found: Dict[int, int] = {}
    if source in remaining:
        found[source] = 0
        remaining.discard(source)
    dist: Dict[int, int] = {source: 0}
    queue = deque([source])
    while queue and remaining:
        v = queue.popleft()
        h = dist[v]
        if h == max_hops:
            continue
        for nbr, _eid in graph.neighbors(v):
            if nbr not in dist:
                dist[nbr] = h + 1
                if nbr in remaining:
                    found[nbr] = h + 1
                    remaining.discard(nbr)
                queue.append(nbr)
    return found


def connected_components(graph: KnowledgeGraph) -> List[List[int]]:
    """Undirected connected components (each a list of node ids)."""
    seen: Set[int] = set()
    components: List[List[int]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        comp: List[int] = []
        queue = deque([start])
        seen.add(start)
        while queue:
            v = queue.popleft()
            comp.append(v)
            for nbr, _eid in graph.neighbors(v):
                if nbr not in seen:
                    seen.add(nbr)
                    queue.append(nbr)
        components.append(comp)
    return components
