"""Synthetic knowledge-graph generators.

The paper evaluates on DBpedia (4.2M nodes, 133.4M edges, 359 types, 800
relations), YAGO2 (2.9M, 11M, 6543, 349) and Freebase (40.3M, 180M, 10110,
9101).  Those dumps (40-88 GB) are not available here and would be
intractable in pure Python anyway, so we generate graphs that preserve the
properties the paper's *relative* results depend on:

* **density**: DBpedia-like graphs are an order of magnitude denser than
  YAGO2-like graphs (avg degree ~32 vs ~3.8); Freebase-like sits between;
* **degree skew**: preferential attachment per relation produces the
  heavy-tailed degree distributions of real knowledge graphs, which is
  what makes d-hop traversal expensive and motivates ``stard``;
* **label ambiguity**: small name vocabularies make many entities share
  tokens ("Brad"), producing large online candidate sets with long-tailed
  match-score distributions (Figure 11);
* **heterogeneity**: hundreds-to-thousands of node types and relations in
  the same proportions (scaled) as Table I.

Every generator is deterministic given ``seed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import DatasetError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.vocab import (
    GENRES,
    NameFactory,
    PROFESSION_WORDS,
    generated_relation_names,
    generated_type_names,
)

# Core schema: (type, node share, name kind).  The "kind" selects which
# NameFactory method names nodes of that type.
_CORE_TYPES: Tuple[Tuple[str, float, str], ...] = (
    ("person", 0.16, "person"),
    ("actor", 0.10, "person"),
    ("director", 0.05, "person"),
    ("producer", 0.04, "person"),
    ("writer", 0.04, "person"),
    ("film", 0.18, "film"),
    ("award", 0.03, "award"),
    ("place", 0.10, "place"),
    ("organization", 0.08, "organization"),
    ("genre", 0.02, "generic"),
)
_CORE_SHARE = sum(share for _t, share, _k in _CORE_TYPES)

# Core relation schema: (relation, src type class, dst type class, weight).
# "person*" means any person-like type; "misc" is the generated long tail.
_PERSON_TYPES = ("person", "actor", "director", "producer", "writer")
_CORE_RELATIONS: Tuple[Tuple[str, str, str, float], ...] = (
    ("acted_in", "actor", "film", 6.0),
    ("directed", "director", "film", 3.0),
    ("produced", "producer", "film", 2.0),
    ("wrote", "writer", "film", 2.0),
    ("won", "person*", "award", 2.0),
    ("nominated_for", "person*", "award", 1.5),
    ("film_won", "film", "award", 1.5),
    ("born_in", "person*", "place", 2.0),
    ("located_in", "organization", "place", 1.5),
    ("works_for", "person*", "organization", 2.0),
    ("has_genre", "film", "genre", 2.0),
    ("married_to", "person*", "person*", 1.0),
    ("collaborated_with", "person*", "person*", 1.5),
    ("filmed_in", "film", "place", 1.0),
    ("distributed_by", "film", "organization", 1.0),
)


@dataclass
class GeneratorConfig:
    """Parameters of a synthetic knowledge graph.

    Attributes:
        name: graph name (shows up in reports).
        num_nodes: total node count.
        avg_degree: target average undirected degree; ``num_edges`` is
            ``num_nodes * avg_degree / 2``.
        num_types: total node-type count (core + generated long tail).
        num_relations: total relation-label count.
        seed: RNG seed; equal configs generate identical graphs.
        keyword_rate: probability a node gets extra descriptive keywords.
    """

    name: str
    num_nodes: int
    avg_degree: float
    num_types: int
    num_relations: int
    seed: int = 7
    keyword_rate: float = 0.35

    @property
    def num_edges(self) -> int:
        return int(self.num_nodes * self.avg_degree / 2)


def generate(config: GeneratorConfig) -> KnowledgeGraph:
    """Generate a knowledge graph from *config*.

    Raises:
        DatasetError: if the configuration is infeasible (too few nodes to
            host the core schema, non-positive sizes).
    """
    if config.num_nodes < 50:
        raise DatasetError(f"num_nodes={config.num_nodes} too small (need >= 50)")
    if config.avg_degree <= 0:
        raise DatasetError(f"avg_degree={config.avg_degree} must be positive")
    if config.num_types < len(_CORE_TYPES):
        raise DatasetError(
            f"num_types={config.num_types} smaller than core schema "
            f"({len(_CORE_TYPES)} types)"
        )

    rng = random.Random(config.seed)
    names = NameFactory(rng)
    graph = KnowledgeGraph(name=config.name)

    type_nodes = _populate_nodes(graph, config, rng, names)
    _populate_edges(graph, config, rng, type_nodes)
    return graph


def _populate_nodes(
    graph: KnowledgeGraph,
    config: GeneratorConfig,
    rng: random.Random,
    names: NameFactory,
) -> Dict[str, List[int]]:
    """Create nodes; return type -> node-id lists (incl. a "misc" class)."""
    tail_type_count = config.num_types - len(_CORE_TYPES)
    tail_types = generated_type_names(tail_type_count, rng)
    # The long tail holds whatever share the core schema does not claim.
    tail_share = max(0.0, 1.0 - _CORE_SHARE)

    type_nodes: Dict[str, List[int]] = {t: [] for t, _s, _k in _CORE_TYPES}
    type_nodes["misc"] = []

    plan: List[Tuple[str, str, int]] = []  # (type, kind, count)
    for type_name, share, kind in _CORE_TYPES:
        plan.append((type_name, kind, max(1, int(config.num_nodes * share))))
    if tail_types:
        per_tail = max(1, int(config.num_nodes * tail_share / len(tail_types)))
        for type_name in tail_types:
            plan.append((type_name, "generic", per_tail))

    made = 0
    for type_name, kind, count in plan:
        for _ in range(count):
            if made >= config.num_nodes:
                break
            node_id = _make_node(graph, type_name, kind, config, rng, names)
            bucket = type_name if type_name in type_nodes else "misc"
            type_nodes[bucket].append(node_id)
            made += 1
    # Top up with persons if integer truncation left us short.
    while made < config.num_nodes:
        node_id = _make_node(graph, "person", "person", config, rng, names)
        type_nodes["person"].append(node_id)
        made += 1
    return type_nodes


def _make_node(
    graph: KnowledgeGraph,
    type_name: str,
    kind: str,
    config: GeneratorConfig,
    rng: random.Random,
    names: NameFactory,
) -> int:
    if kind == "person":
        name = names.person()
    elif kind == "film":
        name = names.film()
    elif kind == "place":
        name = names.place()
    elif kind == "organization":
        name = names.organization()
    elif kind == "award":
        name = names.award()
    else:
        name = names.generic(type_name)
    keywords: List[str] = []
    if rng.random() < config.keyword_rate:
        pool = PROFESSION_WORDS if kind == "person" else GENRES
        keywords.append(rng.choice(pool))
        if rng.random() < 0.3:
            keywords.append(rng.choice(GENRES))
    return graph.add_node(name, type_name, keywords)


def _populate_edges(
    graph: KnowledgeGraph,
    config: GeneratorConfig,
    rng: random.Random,
    type_nodes: Dict[str, List[int]],
) -> None:
    """Wire edges via preferential attachment within relation schemas."""
    tail_rel_count = max(0, config.num_relations - len(_CORE_RELATIONS))
    tail_relations = generated_relation_names(tail_rel_count, rng)

    # Relation plan: (relation, src class, dst class, weight).  Long-tail
    # relations connect arbitrary classes with small Zipf-decaying weight.
    classes = [c for c in type_nodes if type_nodes[c]]
    plan: List[Tuple[str, str, str, float]] = [
        r for r in _CORE_RELATIONS if _class_nodes(type_nodes, r[1]) and
        _class_nodes(type_nodes, r[2])
    ]
    for rank, relation in enumerate(tail_relations, start=1):
        src_c = rng.choice(classes)
        dst_c = rng.choice(classes)
        plan.append((relation, src_c, dst_c, 1.0 / rank))
    if not plan:
        raise DatasetError("no feasible relation schema for this configuration")

    weights = [w for _r, _s, _d, w in plan]
    # Preferential-attachment pools: node id appears once initially and once
    # more per incident edge, so endpoint probability ~ (degree + 1).
    pools: Dict[str, List[int]] = {}

    def pool_for(type_class: str) -> List[int]:
        if type_class not in pools:
            pools[type_class] = list(_class_nodes(type_nodes, type_class))
        return pools[type_class]

    target = config.num_edges
    attempts = 0
    made = 0
    max_attempts = target * 10
    while made < target and attempts < max_attempts:
        attempts += 1
        relation, src_c, dst_c, _w = rng.choices(plan, weights=weights, k=1)[0]
        src_pool = pool_for(src_c)
        dst_pool = pool_for(dst_c)
        src = rng.choice(src_pool)
        dst = rng.choice(dst_pool)
        if src == dst:
            continue
        graph.add_edge(src, dst, relation)
        src_pool.append(src)
        dst_pool.append(dst)
        made += 1
    if made < target * 0.5:  # pragma: no cover - defensive
        raise DatasetError(
            f"edge generation stalled: made {made} of {target} edges"
        )


def _class_nodes(type_nodes: Dict[str, List[int]], type_class: str) -> List[int]:
    if type_class == "person*":
        merged: List[int] = []
        for t in _PERSON_TYPES:
            merged.extend(type_nodes.get(t, ()))
        return merged
    return type_nodes.get(type_class, [])


# ----------------------------------------------------------------------
# Dataset presets (Table I, scaled).  ``scale`` multiplies node counts;
# density, type and relation proportions track the paper's Table I.
# ----------------------------------------------------------------------

def dbpedia_like(scale: float = 1.0, seed: int = 7) -> KnowledgeGraph:
    """DBpedia-like graph: dense (avg degree ~32), few types, many relations.

    At ``scale=1.0``: ~4200 nodes / ~67k edges, 60 types, 110 relations --
    a 1/1000 linear scaling of Table I's 4.2M nodes with density preserved.
    """
    config = GeneratorConfig(
        name="dbpedia-like",
        num_nodes=int(4200 * scale),
        avg_degree=32.0,
        num_types=max(len(_CORE_TYPES), int(60 * min(scale, 1.0) + 0.5)),
        num_relations=110,
        seed=seed,
    )
    return generate(config)


def yago2_like(scale: float = 1.0, seed: int = 11) -> KnowledgeGraph:
    """YAGO2-like graph: sparse (avg degree ~3.8), very many types.

    At ``scale=1.0``: ~2900 nodes / ~5.5k edges, 200 types, 50 relations.
    """
    config = GeneratorConfig(
        name="yago2-like",
        num_nodes=int(2900 * scale),
        avg_degree=3.8,
        num_types=max(len(_CORE_TYPES), int(200 * min(scale, 1.0) + 0.5)),
        num_relations=50,
        seed=seed,
    )
    return generate(config)


def freebase_like(scale: float = 1.0, seed: int = 13) -> KnowledgeGraph:
    """Freebase-like graph: large, moderately sparse (avg degree ~4.5).

    At ``scale=1.0``: ~8000 nodes / ~18k edges, 300 types, 300 relations.
    Exp-5 expands this preset with :func:`repro.graph.sampling.bfs_expand`.
    """
    config = GeneratorConfig(
        name="freebase-like",
        num_nodes=int(8000 * scale),
        avg_degree=4.5,
        num_types=max(len(_CORE_TYPES), int(300 * min(scale, 1.0) + 0.5)),
        num_relations=300,
        seed=seed,
    )
    return generate(config)
