"""Graph statistics (reproduces Table I's summary columns).

The paper's Table I reports, per dataset: nodes, edges, node types,
relations, and on-disk size.  We report the same columns (size becomes an
estimated in-memory footprint) plus degree-distribution diagnostics used to
sanity-check the generators' skew.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.knowledge_graph import KnowledgeGraph


@dataclass(frozen=True)
class GraphStatistics:
    """Summary row for one graph (Table I analogue)."""

    name: str
    num_nodes: int
    num_edges: int
    num_types: int
    num_relations: int
    avg_degree: float
    max_degree: int
    est_size_mb: float

    def as_row(self) -> Tuple[str, int, int, int, int, str]:
        """Row in Table I's column order (name, V, E, types, relations, size)."""
        return (
            self.name,
            self.num_nodes,
            self.num_edges,
            self.num_types,
            self.num_relations,
            f"{self.est_size_mb:.1f}MB",
        )


def summarize(graph: KnowledgeGraph) -> GraphStatistics:
    """Compute the Table I summary for *graph*."""
    # Rough in-memory estimate: ~200 bytes per node description and
    # ~60 bytes per directed edge record incl. adjacency entries.
    est_bytes = graph.num_nodes * 200 + graph.num_edges * 60
    avg_degree = (2 * graph.num_edges / graph.num_nodes) if graph.num_nodes else 0.0
    return GraphStatistics(
        name=graph.name or "graph",
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        num_types=len(graph.types()),
        num_relations=len(graph.relations()),
        avg_degree=avg_degree,
        max_degree=graph.max_degree,
        est_size_mb=est_bytes / (1024 * 1024),
    )


def degree_histogram(graph: KnowledgeGraph, bins: int = 10) -> List[Tuple[int, int]]:
    """Log-binned degree histogram ``[(upper_bound, count), ...]``.

    Used by tests to check the generators produce heavy-tailed degrees
    (counts should decay roughly geometrically across log-spaced bins).
    """
    degrees = [graph.degree(v) for v in graph.nodes()]
    if not degrees:
        return []
    max_deg = max(degrees) or 1
    bounds = sorted({int(math.ceil(max_deg ** (i / bins))) for i in range(1, bins + 1)})
    hist: List[Tuple[int, int]] = []
    lo = 0
    for ub in bounds:
        count = sum(1 for d in degrees if lo < d <= ub)
        hist.append((ub, count))
        lo = ub
    return hist


def degree_skew(graph: KnowledgeGraph) -> float:
    """Ratio of the 99th-percentile degree to the median degree.

    A crude but robust heavy-tail indicator: ~1 for regular graphs, large
    for preferential-attachment graphs.
    """
    degrees = sorted(graph.degree(v) for v in graph.nodes())
    if not degrees:
        return 0.0
    median = degrees[len(degrees) // 2] or 1
    p99 = degrees[min(len(degrees) - 1, int(len(degrees) * 0.99))] or 1
    return p99 / median


def relation_counts(graph: KnowledgeGraph) -> Dict[str, int]:
    """Edge count per relation label."""
    counts: Dict[str, int] = {}
    for edge_id, _src, _dst in graph.edges():
        relation = graph.edge(edge_id)[2].relation
        counts[relation] = counts.get(relation, 0) + 1
    return counts


def clustering_coefficient(
    graph: KnowledgeGraph, sample: int = 500, seed: int = 7
) -> float:
    """Average local clustering coefficient (sampled).

    Real knowledge graphs cluster (collaborators share films, etc.);
    tests use this to check the generators don't produce pure random
    graphs.  Parallel edges are collapsed; nodes of degree < 2
    contribute 0.
    """
    import random as _random

    rng = _random.Random(seed)
    nodes = list(graph.nodes())
    if not nodes:
        return 0.0
    if len(nodes) > sample:
        nodes = rng.sample(nodes, sample)
    total = 0.0
    for v in nodes:
        nbrs = {n for n, _e in graph.neighbors(v) if n != v}
        k = len(nbrs)
        if k < 2:
            continue
        links = 0
        for u in nbrs:
            u_nbrs = {n for n, _e in graph.neighbors(u)}
            links += len(u_nbrs & nbrs)
        total += links / (k * (k - 1))  # each triangle edge counted twice
    return total / len(nodes)


def label_selectivity(graph: KnowledgeGraph) -> Dict[str, float]:
    """Summary of how selective description tokens are.

    Returns median/p90/max posting-list sizes as fractions of |V| --
    the ambiguity profile that makes online candidate generation large
    (Section I: "a node Brad may have matches with any person whose
    first or last name is Brad").
    """
    n = max(1, graph.num_nodes)
    sizes = sorted(
        len(graph.nodes_with_token(token)) for token in graph.vocabulary()
    )
    if not sizes:
        return {"median": 0.0, "p90": 0.0, "max": 0.0}
    return {
        "median": sizes[len(sizes) // 2] / n,
        "p90": sizes[min(len(sizes) - 1, int(len(sizes) * 0.9))] / n,
        "max": sizes[-1] / n,
    }


def average_shortest_path(
    graph: KnowledgeGraph, sample_pairs: int = 200, seed: int = 7,
    max_hops: int = 10,
) -> float:
    """Estimated average shortest-path length over sampled reachable pairs.

    Small-world distances are what make the d-bound meaningful: most of
    the graph sits within a few hops, so d-hop traversal explodes.
    Returns 0.0 when no sampled pair is reachable.
    """
    import random as _random

    from repro.graph.traversal import nodes_within

    rng = _random.Random(seed)
    if graph.num_nodes < 2:
        return 0.0
    total = 0
    found = 0
    for _ in range(sample_pairs):
        # Sample over slots and skip tombstones: live ids may have gaps
        # on mutated graphs.  (Identical RNG stream on dense graphs,
        # where slots == nodes.)
        a = rng.randrange(graph.num_node_slots)
        b = rng.randrange(graph.num_node_slots)
        if a == b or a not in graph or b not in graph:
            continue
        dist = nodes_within(graph, a, max_hops).get(b)
        if dist is not None:
            total += dist
            found += 1
    return total / found if found else 0.0
