"""Serialization of knowledge graphs.

A simple line-oriented JSON format (one header line, one line per node,
one line per edge) -- streamable, diff-able, and robust to large graphs.
Used by the benchmark harness to cache generated datasets between runs.
"""

from __future__ import annotations

import json
import os
from typing import Union

from repro.errors import DatasetError
from repro.graph.knowledge_graph import KnowledgeGraph

_FORMAT_VERSION = 1


def save_graph(graph: KnowledgeGraph, path: Union[str, os.PathLike]) -> None:
    """Write *graph* to *path* in the line-JSON format.

    Raises:
        DatasetError: if *graph* has tombstoned (removed) nodes or
            edges.  This format identifies nodes by file position, so a
            graph with id gaps cannot round-trip -- ids would silently
            renumber.  Use :meth:`KnowledgeGraph.save` (the binary
            snapshot format) for mutated graphs.
    """
    if graph.has_tombstones:
        raise DatasetError(
            "cannot save a graph with removed nodes/edges in the "
            "positional line-JSON format (ids would renumber); use "
            "KnowledgeGraph.save / repro.dynamic.save_snapshot instead"
        )
    with open(path, "w", encoding="utf-8") as fh:
        header = {
            "version": _FORMAT_VERSION,
            "name": graph.name,
            "directed": graph.directed,
            "num_nodes": graph.num_nodes,
            "num_edges": graph.num_edges,
        }
        fh.write(json.dumps(header) + "\n")
        for node_id in graph.nodes():
            data = graph.node(node_id)
            record = ["n", data.name, data.type, list(data.keywords), data.attrs]
            fh.write(json.dumps(record) + "\n")
        for edge_id, src, dst in graph.edges():
            data = graph.edge(edge_id)[2]
            record = ["e", src, dst, data.relation, data.attrs]
            fh.write(json.dumps(record) + "\n")


def load_graph(path: Union[str, os.PathLike]) -> KnowledgeGraph:
    """Load a graph previously written by :func:`save_graph`.

    Raises:
        DatasetError: on missing file, bad version, or malformed records.
    """
    if not os.path.exists(path):
        raise DatasetError(f"graph file not found: {path}")
    with open(path, "r", encoding="utf-8") as fh:
        header_line = fh.readline()
        if not header_line:
            raise DatasetError(f"empty graph file: {path}")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as exc:
            raise DatasetError(f"malformed header in {path}: {exc}") from exc
        if header.get("version") != _FORMAT_VERSION:
            raise DatasetError(
                f"unsupported graph format version {header.get('version')!r}"
            )
        graph = KnowledgeGraph(
            name=header.get("name", ""), directed=header.get("directed", True)
        )
        for line_no, line in enumerate(fh, start=2):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                kind = record[0]
                if kind == "n":
                    _k, name, type_, keywords, attrs = record
                    graph.add_node(name, type_, keywords, **attrs)
                elif kind == "e":
                    _k, src, dst, relation, attrs = record
                    graph.add_edge(src, dst, relation, **attrs)
                else:
                    raise ValueError(f"unknown record kind {kind!r}")
            except (ValueError, IndexError, TypeError) as exc:
                raise DatasetError(
                    f"malformed record at {path}:{line_no}: {exc}"
                ) from exc
    expected_nodes = header.get("num_nodes")
    if expected_nodes is not None and graph.num_nodes != expected_nodes:
        raise DatasetError(
            f"node count mismatch in {path}: header says {expected_nodes}, "
            f"file contains {graph.num_nodes}"
        )
    return graph
