"""Vocabularies used by the synthetic knowledge-graph generators.

The generators need realistic-looking entity names, node types and relation
labels so the 46 similarity functions (edit distance, acronym, synonym,
TF-IDF, ...) have real work to do -- matching "Brad" against "Brad Pitt",
"teacher" against "educator", "J.J. Abrams" against "Jeffrey Jacob Abrams"
is the whole point of the paper's online scoring.  Word pools below are
deliberately small enough that names collide (many people share a first
name), producing the large, ambiguous candidate sets Section I describes.
"""

from __future__ import annotations

import random
from typing import List, Sequence, Tuple

FIRST_NAMES: Tuple[str, ...] = (
    "Brad", "Angelina", "George", "Meryl", "Richard", "Steven", "Quentin",
    "Sofia", "Martin", "Kathryn", "James", "Emma", "Daniel", "Kate", "Tom",
    "Nicole", "Leonardo", "Cate", "Samuel", "Julia", "Denzel", "Viola",
    "Ridley", "Ava", "Christopher", "Greta", "Spike", "Jane", "Joel",
    "Ethan", "Wes", "Paul", "Maria", "Jeffrey", "Jacob", "Frances", "Joan",
    "Peter", "Susan", "Robert", "Helen", "Alfred", "Grace", "Orson",
    "Ingrid", "Akira", "Agnes", "Federico", "Sidney", "Billy",
)

LAST_NAMES: Tuple[str, ...] = (
    "Pitt", "Jolie", "Clooney", "Streep", "Linklater", "Spielberg",
    "Tarantino", "Coppola", "Scorsese", "Bigelow", "Cameron", "Stone",
    "Lewis", "Winslet", "Hanks", "Kidman", "DiCaprio", "Blanchett",
    "Jackson", "Roberts", "Washington", "Davis", "Scott", "DuVernay",
    "Nolan", "Gerwig", "Lee", "Campion", "Coen", "Anderson", "Abrams",
    "Kubrick", "Welles", "Bergman", "Kurosawa", "Varda", "Fellini",
    "Lumet", "Wilder", "Hitchcock", "Kelly", "Chaplin", "Keaton",
    "Bogart", "Hepburn", "Brando", "Dean", "Monroe", "Gable", "Garland",
)

TITLE_WORDS: Tuple[str, ...] = (
    "Dark", "Silent", "Golden", "Lost", "Hidden", "Eternal", "Broken",
    "Crimson", "Midnight", "Savage", "Gentle", "Burning", "Frozen",
    "Electric", "Paper", "Glass", "Iron", "Velvet", "Hollow", "Wild",
    "City", "River", "Mountain", "Garden", "Empire", "Kingdom", "Shadow",
    "Summer", "Winter", "Harvest", "Voyage", "Return", "Legacy", "Promise",
    "Secret", "Dream", "Storm", "Horizon", "Mirror", "Echo", "Crown",
)

PLACE_WORDS: Tuple[str, ...] = (
    "Springfield", "Riverton", "Oakdale", "Fairview", "Lakeside",
    "Brookhaven", "Mapleton", "Ashford", "Clearwater", "Ironvale",
    "Santa Barbara", "Pullman", "Cambridge", "Austin", "Portland",
    "Madison", "Boulder", "Savannah", "Telluride", "Venice", "Cannes",
    "Toronto", "Berlin", "Sundance", "Tribeca",
)

ORG_WORDS: Tuple[str, ...] = (
    "Pictures", "Studios", "Films", "Entertainment", "Media", "Productions",
    "Bros", "Animation", "Broadcasting", "Records", "Press", "University",
    "Institute", "Academy", "Guild", "Foundation", "Society", "Network",
)

AWARD_NAMES: Tuple[str, ...] = (
    "Academy Award", "Golden Globe", "BAFTA Award", "Palme d'Or",
    "Golden Lion", "Golden Bear", "Screen Actors Guild Award",
    "Critics Choice Award", "Independent Spirit Award", "Saturn Award",
    "Emmy Award", "Peabody Award", "Directors Guild Award",
    "Writers Guild Award", "National Board Award", "Cesar Award",
)

GENRES: Tuple[str, ...] = (
    "drama", "comedy", "thriller", "western", "noir", "documentary",
    "biopic", "musical", "romance", "war", "mystery", "adventure",
    "fantasy", "animation", "crime", "history",
)

PROFESSION_WORDS: Tuple[str, ...] = (
    "teacher", "educator", "professor", "scientist", "physician", "doctor",
    "lawyer", "attorney", "writer", "author", "singer", "vocalist",
    "producer", "filmmaker", "composer", "musician", "journalist",
    "reporter", "architect", "engineer",
)

TYPE_ADJECTIVES: Tuple[str, ...] = (
    "creative", "classic", "regional", "national", "independent", "annual",
    "historic", "modern", "central", "northern", "southern", "eastern",
    "western", "digital", "public", "private", "royal", "federal",
)

TYPE_DOMAINS: Tuple[str, ...] = (
    "work", "event", "venue", "group", "agent", "artifact", "topic",
    "series", "season", "episode", "album", "track", "book", "paper",
    "team", "league", "match", "district", "region", "species",
)

RELATION_VERBS: Tuple[str, ...] = (
    "created", "founded", "member_of", "part_of", "located_in", "born_in",
    "lived_in", "studied_at", "works_for", "influenced", "adapted_from",
    "preceded_by", "followed_by", "married_to", "sibling_of", "mentor_of",
    "owner_of", "sponsor_of", "performed_at", "featured_in", "derived_from",
    "affiliated_with", "collaborated_with", "nominee_of", "recipient_of",
)


class NameFactory:
    """Deterministic entity-name generator.

    A single :class:`random.Random` instance (owned by the caller) drives
    every choice, so the generated graphs are reproducible given a seed.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._serial = 0

    def _pick(self, pool: Sequence[str]) -> str:
        return self._rng.choice(pool)

    def person(self) -> str:
        """e.g. ``"Brad Pitt"``; occasionally with a middle initial."""
        name = f"{self._pick(FIRST_NAMES)} {self._pick(LAST_NAMES)}"
        if self._rng.random() < 0.12:
            initial = self._pick(FIRST_NAMES)[0]
            first, last = name.split(" ", 1)
            name = f"{first} {initial}. {last}"
        return name

    def film(self) -> str:
        """e.g. ``"The Crimson Horizon"``."""
        a, b = self._pick(TITLE_WORDS), self._pick(TITLE_WORDS)
        pattern = self._rng.random()
        if pattern < 0.4:
            return f"The {a} {b}"
        if pattern < 0.7:
            return f"{a} {b}"
        self._serial += 1
        return f"{a} {b} {1900 + self._serial % 120}"

    def place(self) -> str:
        return self._pick(PLACE_WORDS)

    def organization(self) -> str:
        return f"{self._pick(TITLE_WORDS)} {self._pick(ORG_WORDS)}"

    def award(self) -> str:
        base = self._pick(AWARD_NAMES)
        if self._rng.random() < 0.3:
            return f"{base} for Best {self._pick(TITLE_WORDS)}"
        return base

    def generic(self, type_name: str) -> str:
        """Fallback name for generated long-tail types."""
        self._serial += 1
        return f"{self._pick(TITLE_WORDS)} {type_name.replace('_', ' ')} {self._serial}"


def generated_type_names(count: int, rng: random.Random) -> List[str]:
    """Produce *count* long-tail type names like ``"historic venue"``.

    YAGO2 and Freebase have thousands of types; beyond the hand-written
    core schema we synthesize extra types from adjective x domain pairs
    (suffixed when the pool is exhausted) to match the paper's type counts
    at scale.
    """
    names: List[str] = []
    seen = set()
    while len(names) < count:
        base = f"{rng.choice(TYPE_ADJECTIVES)}_{rng.choice(TYPE_DOMAINS)}"
        if base in seen:
            base = f"{base}_{len(names)}"
        seen.add(base)
        names.append(base)
    return names


def generated_relation_names(count: int, rng: random.Random) -> List[str]:
    """Produce *count* relation labels from the verb pool (suffixed past pool)."""
    names: List[str] = []
    seen = set()
    while len(names) < count:
        base = rng.choice(RELATION_VERBS)
        if base in seen:
            base = f"{base}_{len(names)}"
        seen.add(base)
        names.append(base)
    return names
