"""The core labeled knowledge-graph data structure.

The paper (Section II) models a knowledge graph ``G = (V, E, L)`` where each
node and edge carries a description ``L(v)`` / ``L(e)``: a type, an entity
name, free keywords, or attribute/value pairs.  This module provides that
structure with the access paths every algorithm in the library needs:

* integer node ids with O(1) data access,
* undirected adjacency view (knowledge-graph matching treats relationship
  direction as irrelevant for path matching; a ``directed`` flag preserves
  orientation for callers that want it),
* an inverted token index (name tokens, keywords, type names) used for
  online candidate generation -- the paper computes match scores online and
  uses keyword indices only to shortlist candidates,
* a type index for schema-aware template instantiation.

The graph is *dynamic*: besides ``add_node`` / ``add_edge`` it supports
``remove_edge``, ``remove_node``, ``update_node_attrs`` and
``update_edge``.  Node and edge ids are stable across mutations
(removal tombstones the slot instead of renumbering), every derived
index (token postings, type index, subtype closure, relation set, max
degree) is maintained incrementally, and each mutation appends a
:class:`repro.dynamic.Delta` to the graph's journal recording exactly
what it touched -- the cross-query candidate cache and the scorer memos
use those deltas for fine-grained invalidation instead of discarding
all warm state on every version bump.  Algorithms still never mutate a
graph *while* querying; mutate between searches and call
``ScoringFunction.refresh()``.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro import obs
from repro.dynamic.journal import Delta, DeltaJournal, DeltaSummary
from repro.errors import GraphError
from repro.textutil import tokenize, tokenize_tuple  # re-exported: index and queries share it

_EMPTY: FrozenSet = frozenset()


@dataclass(frozen=True)
class NodeData:
    """Description ``L(v)`` of a graph node.

    Attributes:
        name: entity name, e.g. ``"Brad Pitt"``.
        type: node type, e.g. ``"actor"``; free-form string.
        keywords: extra descriptive keywords attached to the node.
        attrs: arbitrary attribute/value pairs (the "rich content" tier;
            see :class:`repro.graph.attributes.AttributeStore`).
    """

    name: str
    type: str = ""
    keywords: Tuple[str, ...] = ()
    attrs: Dict[str, Any] = field(default_factory=dict)

    def tokens(self) -> FrozenSet[str]:
        """All lowercase tokens describing this node (name, type, keywords).

        Memoized per instance: graph construction indexes these tokens and
        the similarity layer re-derives them when building descriptors, so
        the set is computed once and shared.
        """
        cached = getattr(self, "_tokens", None)
        if cached is None:
            toks: Set[str] = set(tokenize_tuple(self.name))
            if self.type:
                toks.update(tokenize_tuple(self.type))
            for kw in self.keywords:
                toks.update(tokenize_tuple(kw))
            cached = frozenset(toks)
            object.__setattr__(self, "_tokens", cached)  # frozen dataclass
        return cached


@dataclass(frozen=True)
class EdgeData:
    """Description ``L(e)`` of a graph edge.

    Attributes:
        relation: relation label, e.g. ``"acted_in"``.
        attrs: arbitrary attribute/value pairs.
    """

    relation: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)


class KnowledgeGraph:
    """A labeled multi-relational graph with integer node ids.

    Nodes are numbered ``0 .. num_nodes - 1`` in insertion order; edges are
    numbered ``0 .. num_edges - 1``.  Adjacency is exposed both directed
    (``out_neighbors`` / ``in_neighbors``) and undirected (``neighbors``),
    because d-bounded matching in the paper treats an edge as matchable by a
    path regardless of orientation.

    Example:
        >>> g = KnowledgeGraph(name="toy")
        >>> brad = g.add_node("Brad Pitt", "actor")
        >>> movie = g.add_node("Troy", "film")
        >>> eid = g.add_edge(brad, movie, "acted_in")
        >>> sorted(n for n, _ in g.neighbors(movie))
        [0]
    """

    #: Process-wide graph id source; see :attr:`uid`.
    _uid_counter = itertools.count()

    def __init__(self, name: str = "", directed: bool = True,
                 journal_limit: int = 4096) -> None:
        self.name = name
        self.directed = directed
        # Node/edge slots; ``None`` marks a removed (tombstoned) entry,
        # so ids handed out earlier -- including ids inside cached
        # candidate lists -- stay valid names for the surviving elements.
        self._nodes: List[Optional[NodeData]] = []
        self._edges: List[Optional[Tuple[int, int, EdgeData]]] = []
        self._removed_nodes = 0
        self._removed_edges = 0
        # Undirected adjacency: v -> list of (neighbor, edge_id).
        self._adj: List[List[Tuple[int, int]]] = []
        self._out: List[List[Tuple[int, int]]] = []
        self._in: List[List[Tuple[int, int]]] = []
        # token -> sorted-insertion list of node ids (deduplicated via set).
        self._token_index: Dict[str, Set[int]] = {}
        self._type_index: Dict[str, List[int]] = {}
        # Relation label -> live edge count; maintained incrementally by
        # add/remove/update_edge (callers poll relations() inside
        # query-construction loops).
        self._relations: Dict[str, int] = {}
        # query type -> frozenset of subtype-closure node ids, built
        # lazily per queried type and maintained incrementally by the
        # mutation methods (see nodes_of_subtype).
        self._subtype_closure: Dict[str, FrozenSet[int]] = {}
        self._max_degree = 0
        # True when a node removal may have lowered the maximum but the
        # O(V) degree rescan has been deferred (resolved lazily by the
        # ``max_degree`` property and by the edge mutators, whose
        # ``stats_changed`` decisions need the exact value).
        self._max_degree_dirty = False
        #: Structural version: bumped on every mutation so derived
        #: structures (scorers, sketches, caches) can detect staleness.
        self.version = 0
        #: Bounded delta log: what each version bump touched (node ids,
        #: tokens, types, relations, global-stat drift).  Consumers diff
        #: against it via :meth:`delta_since`.
        self.journal = DeltaJournal(limit=journal_limit)
        #: Process-unique graph identity.  ``version`` distinguishes
        #: states of *one* graph; cross-graph caches (the perf layer's
        #: candidate cache) key on ``uid`` so two graphs never collide.
        self.uid = next(KnowledgeGraph._uid_counter)

    # ------------------------------------------------------------------
    # Construction and mutation
    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        nodes: FrozenSet[int] = _EMPTY,
        tokens: FrozenSet[str] = _EMPTY,
        types: FrozenSet[str] = _EMPTY,
        relations: FrozenSet[str] = _EMPTY,
        stats_changed: bool = False,
    ) -> None:
        """Bump the structural version and journal what changed."""
        self.version += 1
        self.journal.append(Delta(
            self.version, kind, nodes=nodes, tokens=tokens, types=types,
            relations=relations, stats_changed=stats_changed,
        ))
        obs.count("dynamic.mutations")
        obs.set_gauge("dynamic.journal.len", float(len(self.journal)))

    def add_node(
        self,
        name: str,
        type: str = "",
        keywords: Iterable[str] = (),
        **attrs: Any,
    ) -> int:
        """Add a node and return its id.

        Args:
            name: entity name.
            type: node type label.
            keywords: additional descriptive keywords.
            **attrs: attribute/value pairs stored on the node.
        """
        data = NodeData(name=name, type=type, keywords=tuple(keywords), attrs=attrs)
        node_id = len(self._nodes)
        self._nodes.append(data)
        self._adj.append([])
        self._out.append([])
        self._in.append([])
        for token in data.tokens():
            self._token_index.setdefault(token, set()).add(node_id)
        if type:
            self._type_index.setdefault(type, []).append(node_id)
            self._closure_add(type, node_id)
        # A new node shifts every IDF denominator (document count), so
        # corpus statistics -- and with them every cached score -- drift.
        self._record(
            "add_node", nodes=frozenset((node_id,)), tokens=data.tokens(),
            types=frozenset((type,)) if type else _EMPTY, stats_changed=True,
        )
        return node_id

    def add_edge(self, src: int, dst: int, relation: str = "", **attrs: Any) -> int:
        """Add a directed edge ``src -> dst`` and return its id.

        Raises:
            GraphError: if either endpoint is not a node of this graph, or
                if ``src == dst`` (self-loops carry no matching semantics in
                the paper and are rejected).
        """
        self._check_node(src)
        self._check_node(dst)
        if src == dst:
            raise GraphError(f"self-loop on node {src} is not allowed")
        self._resolve_max_degree()
        data = EdgeData(relation=relation, attrs=attrs)
        edge_id = len(self._edges)
        if relation:
            self._relations[relation] = self._relations.get(relation, 0) + 1
        self._edges.append((src, dst, data))
        self._adj[src].append((dst, edge_id))
        self._adj[dst].append((src, edge_id))
        self._out[src].append((dst, edge_id))
        self._in[dst].append((src, edge_id))
        new_max = max(len(self._adj[src]), len(self._adj[dst]))
        # Endpoint degrees changed (their descriptors / degree priors are
        # stale); everything else survives unless the max-degree
        # normalizer moved, which shifts degree-prior scores globally.
        stats_changed = new_max > self._max_degree
        if stats_changed:
            self._max_degree = new_max
        self._record(
            "add_edge", nodes=frozenset((src, dst)),
            relations=frozenset((relation,)) if relation else _EMPTY,
            stats_changed=stats_changed,
        )
        return edge_id

    def remove_edge(self, edge_id: int) -> EdgeData:
        """Remove edge *edge_id*; its id is never reused.

        Returns the removed :class:`EdgeData`.

        Raises:
            GraphError: if *edge_id* is unknown or already removed.
        """
        src, dst, data = self.edge(edge_id)
        self._detach_edge(edge_id, src, dst, data)
        stats_changed = self._recheck_max_degree(
            len(self._adj[src]) + 1, len(self._adj[dst]) + 1
        )
        self._record(
            "remove_edge", nodes=frozenset((src, dst)),
            relations=frozenset((data.relation,)) if data.relation else _EMPTY,
            stats_changed=stats_changed,
        )
        return data

    def remove_node(self, node_id: int) -> NodeData:
        """Remove a node and all its incident edges (ids are not reused).

        Returns the removed :class:`NodeData`.  One journal entry covers
        the whole cascade: the removed node plus every former neighbor
        (their degrees changed).  Node removal always flags a global
        statistics change -- the corpus document count backs every IDF
        value.

        Raises:
            GraphError: if *node_id* is unknown or already removed.
        """
        data = self.node(node_id)
        neighbors = {nbr for nbr, _eid in self._adj[node_id]}
        # Defer the O(V) maximum-degree rescan: mark it unverified only
        # when a degree that *was* at the maximum is about to drop.  A
        # removal cascade thus pays at most one rescan, at the next
        # degree-dependent read, instead of one rescan per removed node.
        if not self._max_degree_dirty:
            at_max = self._max_degree
            if (len(self._adj[node_id]) >= at_max and at_max > 0) or any(
                len(self._adj[nbr]) >= at_max for nbr in neighbors
            ):
                self._max_degree_dirty = True
        removed_relations: Set[str] = set()
        for nbr, eid in list(self._adj[node_id]):
            record = self._edges[eid]
            if record is None:  # pragma: no cover - adjacency is in sync
                continue
            esrc, edst, edata = record
            self._detach_edge(eid, esrc, edst, edata)
            if edata.relation:
                removed_relations.add(edata.relation)
        self._adj[node_id] = []
        self._out[node_id] = []
        self._in[node_id] = []
        for token in data.tokens():
            postings = self._token_index.get(token)
            if postings is not None:
                postings.discard(node_id)
                if not postings:
                    del self._token_index[token]
        if data.type:
            members = self._type_index.get(data.type)
            if members is not None and node_id in members:
                members.remove(node_id)
            self._closure_remove(node_id)
        self._nodes[node_id] = None
        self._removed_nodes += 1
        self._record(
            "remove_node", nodes=frozenset(neighbors | {node_id}),
            tokens=data.tokens(),
            types=frozenset((data.type,)) if data.type else _EMPTY,
            relations=frozenset(removed_relations), stats_changed=True,
        )
        return data

    def update_node_attrs(self, node_id: int, **attrs: Any) -> NodeData:
        """Merge *attrs* into a node's attribute map (``None`` deletes).

        Name, type and keywords -- everything the indexes and similarity
        measures consume -- are immutable; only the attribute tier
        changes, so no index maintenance and no global score drift.  The
        node is still journalled as touched, keeping invalidation
        conservative for attribute-aware consumers.
        """
        data = self.node(node_id)
        merged = dict(data.attrs)
        for key, value in attrs.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        self._nodes[node_id] = NodeData(
            name=data.name, type=data.type, keywords=data.keywords,
            attrs=merged,
        )
        self._record("update_node_attrs", nodes=frozenset((node_id,)))
        return self._nodes[node_id]

    def update_edge(
        self, edge_id: int, relation: Optional[str] = None, **attrs: Any
    ) -> EdgeData:
        """Update an edge's relation label and/or attributes in place.

        Args:
            relation: new relation label (``None`` keeps the current one).
            **attrs: merged into the edge attribute map (``None`` deletes).

        Structure and degrees are untouched, so cached candidate lists
        fully survive a relabel; only relation-keyed scorer memos for the
        old/new labels need refreshing (``ScoringFunction.refresh``).
        """
        src, dst, data = self.edge(edge_id)
        new_relation = data.relation if relation is None else relation
        merged = dict(data.attrs)
        for key, value in attrs.items():
            if value is None:
                merged.pop(key, None)
            else:
                merged[key] = value
        touched: Set[str] = set()
        if new_relation != data.relation:
            touched = {r for r in (data.relation, new_relation) if r}
            if data.relation:
                self._relation_decref(data.relation)
            if new_relation:
                self._relations[new_relation] = (
                    self._relations.get(new_relation, 0) + 1
                )
        new_data = EdgeData(relation=new_relation, attrs=merged)
        self._edges[edge_id] = (src, dst, new_data)
        self._record("update_edge", relations=frozenset(touched))
        return new_data

    # -- mutation internals --------------------------------------------
    def _detach_edge(
        self, edge_id: int, src: int, dst: int, data: EdgeData
    ) -> None:
        """Unlink one live edge from every adjacency structure."""
        self._edges[edge_id] = None
        self._removed_edges += 1
        self._adj[src].remove((dst, edge_id))
        self._adj[dst].remove((src, edge_id))
        self._out[src].remove((dst, edge_id))
        self._in[dst].remove((src, edge_id))
        if data.relation:
            self._relation_decref(data.relation)

    def _relation_decref(self, relation: str) -> None:
        count = self._relations.get(relation, 0) - 1
        if count > 0:
            self._relations[relation] = count
        else:
            self._relations.pop(relation, None)

    def _resolve_max_degree(self) -> None:
        """Perform the deferred degree rescan, if one is pending."""
        if self._max_degree_dirty:
            self._max_degree = max(
                (len(entries) for entries in self._adj), default=0
            )
            self._max_degree_dirty = False

    def _recheck_max_degree(self, *former_degrees: int) -> bool:
        """Recompute ``max_degree`` if a removal may have lowered it.

        *former_degrees* are the pre-removal degrees of the touched
        nodes; a rescan is only needed when one of them reached the
        current maximum (or a deferred rescan is pending, which makes
        the stored maximum an unverified upper bound).  Returns True
        when the maximum changed.
        """
        if not self._max_degree_dirty and all(
            d < self._max_degree for d in former_degrees
        ):
            return False
        new_max = max((len(entries) for entries in self._adj), default=0)
        self._max_degree_dirty = False
        if new_max == self._max_degree:
            return False
        self._max_degree = new_max
        return True

    def _closure_add(self, type: str, node_id: int) -> None:
        """Incrementally extend cached subtype closures for a new node."""
        if not self._subtype_closure:
            return
        from repro.similarity import ontology

        for query_type, closure in self._subtype_closure.items():
            if ontology.is_subtype(type, query_type):
                self._subtype_closure[query_type] = closure | {node_id}

    def _closure_remove(self, node_id: int) -> None:
        """Drop a removed node from every cached subtype closure."""
        for query_type, closure in self._subtype_closure.items():
            if node_id in closure:
                self._subtype_closure[query_type] = closure - {node_id}

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes) - self._removed_nodes

    @property
    def num_edges(self) -> int:
        return len(self._edges) - self._removed_edges

    @property
    def num_node_slots(self) -> int:
        """Total node slots ever allocated, including tombstones."""
        return len(self._nodes)

    @property
    def num_edge_slots(self) -> int:
        """Total edge slots ever allocated, including tombstones."""
        return len(self._edges)

    @property
    def has_tombstones(self) -> bool:
        """True if any node or edge has been removed (ids have gaps)."""
        return self._removed_nodes > 0 or self._removed_edges > 0

    @property
    def max_degree(self) -> int:
        """Largest undirected node degree ``m`` (used in complexity bounds)."""
        self._resolve_max_degree()
        return self._max_degree

    def node(self, node_id: int) -> NodeData:
        """Return the :class:`NodeData` for *node_id*.

        Raises:
            GraphError: if *node_id* is out of range or removed.
        """
        return self._nodes[self._check_node(node_id)]

    def edge(self, edge_id: int) -> Tuple[int, int, EdgeData]:
        """Return ``(src, dst, EdgeData)`` for *edge_id*.

        Raises:
            GraphError: if *edge_id* is out of range or removed.
        """
        if not (0 <= edge_id < len(self._edges)):
            raise GraphError(f"unknown edge id {edge_id}")
        record = self._edges[edge_id]
        if record is None:
            raise GraphError(f"unknown edge id {edge_id} (removed)")
        return record

    def neighbors(self, node_id: int) -> List[Tuple[int, int]]:
        """Undirected neighbor list ``[(neighbor_id, edge_id), ...]``."""
        return self._adj[self._check_node(node_id)]

    def out_neighbors(self, node_id: int) -> List[Tuple[int, int]]:
        """Directed out-neighbor list."""
        return self._out[self._check_node(node_id)]

    def in_neighbors(self, node_id: int) -> List[Tuple[int, int]]:
        """Directed in-neighbor list."""
        return self._in[self._check_node(node_id)]

    def degree(self, node_id: int) -> int:
        """Undirected degree of *node_id*."""
        return len(self._adj[self._check_node(node_id)])

    def nodes(self) -> Iterator[int]:
        """Iterate over live node ids (tombstones skipped)."""
        return (
            node_id for node_id, data in enumerate(self._nodes)
            if data is not None
        )

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over live ``(edge_id, src, dst)`` triples."""
        for edge_id, record in enumerate(self._edges):
            if record is not None:
                yield edge_id, record[0], record[1]

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def nodes_with_token(self, token: str) -> FrozenSet[int]:
        """Node ids whose description contains *token* (lowercased)."""
        return frozenset(self._token_index.get(token.lower(), ()))

    def nodes_matching_any(self, tokens: Iterable[str]) -> Set[int]:
        """Union of postings for *tokens* -- the online candidate shortlist."""
        result: Set[int] = set()
        for token in tokens:
            result |= self._token_index.get(token.lower(), set())
        return result

    def nodes_of_type(self, type: str) -> Tuple[int, ...]:
        """Node ids of the given *type* (insertion order).

        Returns an immutable tuple: the underlying type index must never
        be mutated by callers.  (``types()`` already returns a fresh
        list for the same reason.)
        """
        return tuple(self._type_index.get(type, ()))

    def nodes_of_subtype(self, type: str) -> FrozenSet[int]:
        """Node ids whose type is *type* or an ontology subtype of it.

        The subtype closure (union of ``nodes_of_type`` over every graph
        type ``t`` with ``ontology.is_subtype(t, type)``) is precomputed
        lazily, once per queried type, replacing the per-query O(|types|)
        ontology scan candidate shortlisting used to pay.  The mutation
        methods maintain cached closures incrementally (a new node joins
        every closure its type descends into; a removed node leaves every
        closure containing it), so version drift never forces a rebuild.
        """
        if not type:
            return frozenset()
        closure = self._subtype_closure.get(type)
        if closure is None:
            # Local import: ontology is a dependency-free table module,
            # but the similarity package's __init__ imports this module.
            from repro.similarity import ontology

            ids: Set[int] = set(self._type_index.get(type, ()))
            for type_name, members in self._type_index.items():
                if ontology.is_subtype(type_name, type):
                    ids.update(members)
            closure = frozenset(ids)
            self._subtype_closure[type] = closure
        return closure

    def types(self) -> List[str]:
        """Node types with live members, in first-seen order."""
        return [t for t, members in self._type_index.items() if members]

    def relations(self) -> Set[str]:
        """Set of relation labels present on live edges (copy of the
        incrementally refcounted map; callers may mutate it freely)."""
        return set(self._relations)

    def vocabulary(self) -> FrozenSet[str]:
        """All indexed description tokens."""
        return frozenset(self._token_index)

    # ------------------------------------------------------------------
    # Dynamic-update support
    # ------------------------------------------------------------------
    def delta_since(self, version: int) -> Optional[DeltaSummary]:
        """Merged delta of every mutation after *version*.

        ``None`` means the journal no longer covers that span (too many
        mutations since) and the caller must rebuild derived state; an
        empty summary means nothing changed.
        """
        return self.journal.since(version)

    def save(self, path) -> None:
        """Write this graph as a compact binary snapshot (see
        :mod:`repro.dynamic.snapshot`); preserves ids, tombstones,
        indexes, version and the journal tail, so a serving process
        restarts warm."""
        from repro.dynamic.snapshot import save_snapshot

        save_snapshot(self, path)

    @classmethod
    def load(cls, path) -> "KnowledgeGraph":
        """Load a binary snapshot written by :meth:`save`."""
        from repro.dynamic.snapshot import load_snapshot

        return load_snapshot(path)

    @classmethod
    def open_mmap(cls, path, verify: bool = False) -> "KnowledgeGraph":
        """Open an ``RKGS2`` store (see ``repro compact``) zero-copy.

        Returns an :class:`~repro.store.MmapKnowledgeGraph`: a graph
        whose node/edge/adjacency/index state is read from the mmap'd
        file on first touch instead of deserialized up front, so
        opening is O(1) in graph size.  Mutations work through a
        copy-on-write overlay; the file itself is never written.
        """
        from repro.store.lazygraph import open_graph

        return open_graph(path, verify=verify)

    def token_dfs(self) -> Iterator[Tuple[str, int]]:
        """``(token, document frequency)`` for every indexed token.

        The IDF table (:meth:`CorpusContext.from_graph`) needs only the
        posting *sizes*; mmap-backed graphs override this to read sizes
        off the stored offsets without materializing any posting set.
        """
        return ((token, len(members))
                for token, members in self._token_index.items())

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _check_node(self, node_id: int) -> int:
        if (not (0 <= node_id < len(self._nodes))
                or self._nodes[node_id] is None):
            raise GraphError(f"unknown node id {node_id}")
        return node_id

    def __contains__(self, node_id: object) -> bool:
        return (isinstance(node_id, int)
                and 0 <= node_id < len(self._nodes)
                and self._nodes[node_id] is not None)

    def __len__(self) -> int:
        return self.num_nodes

    def __repr__(self) -> str:
        label = self.name or "KnowledgeGraph"
        return f"<{label}: |V|={self.num_nodes} |E|={self.num_edges}>"

    def describe(self, node_id: int) -> str:
        """Human-readable one-line description of a node (for examples/CLI)."""
        data = self.node(node_id)
        parts = [data.name]
        if data.type:
            parts.append(f"[{data.type}]")
        if data.keywords:
            parts.append("{" + ", ".join(data.keywords) + "}")
        return " ".join(parts)


def subgraph_view(graph: KnowledgeGraph, nodes: Iterable[int]) -> KnowledgeGraph:
    """Materialize the induced subgraph on *nodes* as a new graph.

    Node ids are renumbered densely (insertion order follows the sorted
    original ids); used by the Exp-5 sampling protocol and by tests.
    """
    keep = sorted(set(nodes))
    mapping = {}
    out = KnowledgeGraph(name=f"{graph.name}-sub", directed=graph.directed)
    for old_id in keep:
        data = graph.node(old_id)
        mapping[old_id] = out.add_node(
            data.name, data.type, data.keywords, **data.attrs
        )
    keep_set = set(keep)
    for _edge_id, src, dst in graph.edges():
        if src in keep_set and dst in keep_set:
            _s, _d, data = graph.edge(_edge_id)
            out.add_edge(mapping[src], mapping[dst], data.relation, **data.attrs)
    return out
