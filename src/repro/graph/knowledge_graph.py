"""The core labeled knowledge-graph data structure.

The paper (Section II) models a knowledge graph ``G = (V, E, L)`` where each
node and edge carries a description ``L(v)`` / ``L(e)``: a type, an entity
name, free keywords, or attribute/value pairs.  This module provides that
structure with the access paths every algorithm in the library needs:

* integer node ids with O(1) data access,
* undirected adjacency view (knowledge-graph matching treats relationship
  direction as irrelevant for path matching; a ``directed`` flag preserves
  orientation for callers that want it),
* an inverted token index (name tokens, keywords, type names) used for
  online candidate generation -- the paper computes match scores online and
  uses keyword indices only to shortlist candidates,
* a type index for schema-aware template instantiation.

The graph is append-only: algorithms never mutate a graph while querying,
which keeps the adjacency arrays simple Python lists.
"""

from __future__ import annotations

import itertools

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.textutil import tokenize, tokenize_tuple  # re-exported: index and queries share it


@dataclass(frozen=True)
class NodeData:
    """Description ``L(v)`` of a graph node.

    Attributes:
        name: entity name, e.g. ``"Brad Pitt"``.
        type: node type, e.g. ``"actor"``; free-form string.
        keywords: extra descriptive keywords attached to the node.
        attrs: arbitrary attribute/value pairs (the "rich content" tier;
            see :class:`repro.graph.attributes.AttributeStore`).
    """

    name: str
    type: str = ""
    keywords: Tuple[str, ...] = ()
    attrs: Dict[str, Any] = field(default_factory=dict)

    def tokens(self) -> FrozenSet[str]:
        """All lowercase tokens describing this node (name, type, keywords).

        Memoized per instance: graph construction indexes these tokens and
        the similarity layer re-derives them when building descriptors, so
        the set is computed once and shared.
        """
        cached = getattr(self, "_tokens", None)
        if cached is None:
            toks: Set[str] = set(tokenize_tuple(self.name))
            if self.type:
                toks.update(tokenize_tuple(self.type))
            for kw in self.keywords:
                toks.update(tokenize_tuple(kw))
            cached = frozenset(toks)
            object.__setattr__(self, "_tokens", cached)  # frozen dataclass
        return cached


@dataclass(frozen=True)
class EdgeData:
    """Description ``L(e)`` of a graph edge.

    Attributes:
        relation: relation label, e.g. ``"acted_in"``.
        attrs: arbitrary attribute/value pairs.
    """

    relation: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)


class KnowledgeGraph:
    """A labeled multi-relational graph with integer node ids.

    Nodes are numbered ``0 .. num_nodes - 1`` in insertion order; edges are
    numbered ``0 .. num_edges - 1``.  Adjacency is exposed both directed
    (``out_neighbors`` / ``in_neighbors``) and undirected (``neighbors``),
    because d-bounded matching in the paper treats an edge as matchable by a
    path regardless of orientation.

    Example:
        >>> g = KnowledgeGraph(name="toy")
        >>> brad = g.add_node("Brad Pitt", "actor")
        >>> movie = g.add_node("Troy", "film")
        >>> eid = g.add_edge(brad, movie, "acted_in")
        >>> sorted(n for n, _ in g.neighbors(movie))
        [0]
    """

    #: Process-wide graph id source; see :attr:`uid`.
    _uid_counter = itertools.count()

    def __init__(self, name: str = "", directed: bool = True) -> None:
        self.name = name
        self.directed = directed
        self._nodes: List[NodeData] = []
        self._edges: List[Tuple[int, int, EdgeData]] = []
        # Undirected adjacency: v -> list of (neighbor, edge_id).
        self._adj: List[List[Tuple[int, int]]] = []
        self._out: List[List[Tuple[int, int]]] = []
        self._in: List[List[Tuple[int, int]]] = []
        # token -> sorted-insertion list of node ids (deduplicated via set).
        self._token_index: Dict[str, Set[int]] = {}
        self._type_index: Dict[str, List[int]] = {}
        # Relation labels, maintained incrementally by add_edge (callers
        # poll relations() inside query-construction loops).
        self._relations: Set[str] = set()
        # query type -> frozenset of subtype-closure node ids, built
        # lazily per structural version (see nodes_of_subtype).
        self._subtype_closure: Dict[str, FrozenSet[int]] = {}
        self._closure_version = -1
        self._max_degree = 0
        #: Structural version: bumped on every node/edge addition so
        #: derived structures (scorers, sketches) can detect staleness.
        self.version = 0
        #: Process-unique graph identity.  ``version`` distinguishes
        #: states of *one* graph; cross-graph caches (the perf layer's
        #: candidate cache) key on ``(uid, version)`` so two graphs that
        #: happen to share a version never collide.
        self.uid = next(KnowledgeGraph._uid_counter)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(
        self,
        name: str,
        type: str = "",
        keywords: Iterable[str] = (),
        **attrs: Any,
    ) -> int:
        """Add a node and return its id.

        Args:
            name: entity name.
            type: node type label.
            keywords: additional descriptive keywords.
            **attrs: attribute/value pairs stored on the node.
        """
        data = NodeData(name=name, type=type, keywords=tuple(keywords), attrs=attrs)
        node_id = len(self._nodes)
        self._nodes.append(data)
        self._adj.append([])
        self._out.append([])
        self._in.append([])
        for token in data.tokens():
            self._token_index.setdefault(token, set()).add(node_id)
        if type:
            self._type_index.setdefault(type, []).append(node_id)
        self.version += 1
        return node_id

    def add_edge(self, src: int, dst: int, relation: str = "", **attrs: Any) -> int:
        """Add a directed edge ``src -> dst`` and return its id.

        Raises:
            GraphError: if either endpoint is not a node of this graph, or
                if ``src == dst`` (self-loops carry no matching semantics in
                the paper and are rejected).
        """
        n = len(self._nodes)
        if not (0 <= src < n) or not (0 <= dst < n):
            raise GraphError(f"edge endpoints ({src}, {dst}) out of range [0, {n})")
        if src == dst:
            raise GraphError(f"self-loop on node {src} is not allowed")
        data = EdgeData(relation=relation, attrs=attrs)
        edge_id = len(self._edges)
        if relation:
            self._relations.add(relation)
        self._edges.append((src, dst, data))
        self._adj[src].append((dst, edge_id))
        self._adj[dst].append((src, edge_id))
        self._out[src].append((dst, edge_id))
        self._in[dst].append((src, edge_id))
        self._max_degree = max(self._max_degree, len(self._adj[src]), len(self._adj[dst]))
        self.version += 1
        return edge_id

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def max_degree(self) -> int:
        """Largest undirected node degree ``m`` (used in complexity bounds)."""
        return self._max_degree

    def node(self, node_id: int) -> NodeData:
        """Return the :class:`NodeData` for *node_id*.

        Raises:
            GraphError: if *node_id* is out of range.
        """
        try:
            return self._nodes[self._check_node(node_id)]
        except IndexError:  # pragma: no cover - guarded by _check_node
            raise GraphError(f"unknown node id {node_id}")

    def edge(self, edge_id: int) -> Tuple[int, int, EdgeData]:
        """Return ``(src, dst, EdgeData)`` for *edge_id*."""
        if not (0 <= edge_id < len(self._edges)):
            raise GraphError(f"unknown edge id {edge_id}")
        return self._edges[edge_id]

    def neighbors(self, node_id: int) -> List[Tuple[int, int]]:
        """Undirected neighbor list ``[(neighbor_id, edge_id), ...]``."""
        return self._adj[self._check_node(node_id)]

    def out_neighbors(self, node_id: int) -> List[Tuple[int, int]]:
        """Directed out-neighbor list."""
        return self._out[self._check_node(node_id)]

    def in_neighbors(self, node_id: int) -> List[Tuple[int, int]]:
        """Directed in-neighbor list."""
        return self._in[self._check_node(node_id)]

    def degree(self, node_id: int) -> int:
        """Undirected degree of *node_id*."""
        return len(self._adj[self._check_node(node_id)])

    def nodes(self) -> Iterator[int]:
        """Iterate over node ids."""
        return iter(range(len(self._nodes)))

    def edges(self) -> Iterator[Tuple[int, int, int]]:
        """Iterate over ``(edge_id, src, dst)`` triples."""
        for edge_id, (src, dst, _data) in enumerate(self._edges):
            yield edge_id, src, dst

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def nodes_with_token(self, token: str) -> FrozenSet[int]:
        """Node ids whose description contains *token* (lowercased)."""
        return frozenset(self._token_index.get(token.lower(), ()))

    def nodes_matching_any(self, tokens: Iterable[str]) -> Set[int]:
        """Union of postings for *tokens* -- the online candidate shortlist."""
        result: Set[int] = set()
        for token in tokens:
            result |= self._token_index.get(token.lower(), set())
        return result

    def nodes_of_type(self, type: str) -> Tuple[int, ...]:
        """Node ids of the given *type* (insertion order).

        Returns an immutable tuple: the underlying type index must never
        be mutated by callers.  (``types()`` already returns a fresh
        list for the same reason.)
        """
        return tuple(self._type_index.get(type, ()))

    def nodes_of_subtype(self, type: str) -> FrozenSet[int]:
        """Node ids whose type is *type* or an ontology subtype of it.

        The subtype closure (union of ``nodes_of_type`` over every graph
        type ``t`` with ``ontology.is_subtype(t, type)``) is precomputed
        lazily, once per queried type per structural version -- replacing
        the per-query O(|types|) ontology scan candidate shortlisting
        used to pay.  Adding nodes/edges invalidates the whole index.
        """
        if not type:
            return frozenset()
        if self._closure_version != self.version:
            self._subtype_closure.clear()
            self._closure_version = self.version
        closure = self._subtype_closure.get(type)
        if closure is None:
            # Local import: ontology is a dependency-free table module,
            # but the similarity package's __init__ imports this module.
            from repro.similarity import ontology

            ids: Set[int] = set(self._type_index.get(type, ()))
            for type_name, members in self._type_index.items():
                if ontology.is_subtype(type_name, type):
                    ids.update(members)
            closure = frozenset(ids)
            self._subtype_closure[type] = closure
        return closure

    def types(self) -> List[str]:
        """All node types present, in first-seen order."""
        return list(self._type_index)

    def relations(self) -> Set[str]:
        """Set of relation labels present on edges (copy of the
        incrementally maintained set; callers may mutate it freely)."""
        return set(self._relations)

    def vocabulary(self) -> FrozenSet[str]:
        """All indexed description tokens."""
        return frozenset(self._token_index)

    # ------------------------------------------------------------------
    # Misc
    # ------------------------------------------------------------------
    def _check_node(self, node_id: int) -> int:
        if not (0 <= node_id < len(self._nodes)):
            raise GraphError(f"unknown node id {node_id}")
        return node_id

    def __contains__(self, node_id: object) -> bool:
        return isinstance(node_id, int) and 0 <= node_id < len(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        label = self.name or "KnowledgeGraph"
        return f"<{label}: |V|={self.num_nodes} |E|={self.num_edges}>"

    def describe(self, node_id: int) -> str:
        """Human-readable one-line description of a node (for examples/CLI)."""
        data = self.node(node_id)
        parts = [data.name]
        if data.type:
            parts.append(f"[{data.type}]")
        if data.keywords:
            parts.append("{" + ", ".join(data.keywords) + "}")
        return " ".join(parts)


def subgraph_view(graph: KnowledgeGraph, nodes: Iterable[int]) -> KnowledgeGraph:
    """Materialize the induced subgraph on *nodes* as a new graph.

    Node ids are renumbered densely (insertion order follows the sorted
    original ids); used by the Exp-5 sampling protocol and by tests.
    """
    keep = sorted(set(nodes))
    mapping = {}
    out = KnowledgeGraph(name=f"{graph.name}-sub", directed=graph.directed)
    for old_id in keep:
        data = graph.node(old_id)
        mapping[old_id] = out.add_node(
            data.name, data.type, data.keywords, **data.attrs
        )
    keep_set = set(keep)
    for _edge_id, src, dst in graph.edges():
        if src in keep_set and dst in keep_set:
            _s, _d, data = graph.edge(_edge_id)
            out.add_edge(mapping[src], mapping[dst], data.relation, **data.attrs)
    return out
