"""Schema-driven graph generation: define your own synthetic domain.

The preset generators (:mod:`repro.graph.generators`) hard-code a movie
domain calibrated to Table I.  This module exposes the machinery: declare
node types (with share of the graph and a naming style), relation types
(with endpoint types and weight), and generate -- same preferential-
attachment wiring, same determinism guarantees.

Example::

    schema = Schema(name="papers")
    schema.add_node_type("author", share=0.4, name_style="person")
    schema.add_node_type("paper", share=0.5, name_style="title")
    schema.add_node_type("venue", share=0.1, name_style="org")
    schema.add_relation("wrote", "author", "paper", weight=3.0)
    schema.add_relation("published_at", "paper", "venue", weight=1.0)
    schema.add_relation("cites", "paper", "paper", weight=2.0)
    graph = schema.generate(num_nodes=2000, avg_degree=6.0, seed=1)
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import DatasetError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.graph.vocab import GENRES, NameFactory, PROFESSION_WORDS

#: Naming styles map to :class:`NameFactory` methods.
NAME_STYLES = ("person", "title", "place", "org", "award", "generic")


@dataclass(frozen=True)
class NodeTypeSpec:
    """One node type in a schema.

    Attributes:
        name: type label.
        share: fraction of graph nodes of this type (shares are
            normalized at generation time).
        name_style: one of :data:`NAME_STYLES`.
        keywords: optional keyword pool sampled onto nodes.
    """

    name: str
    share: float
    name_style: str = "generic"
    keywords: Tuple[str, ...] = ()


@dataclass(frozen=True)
class RelationSpec:
    """One relation type: label, endpoint types, relative frequency."""

    name: str
    src_type: str
    dst_type: str
    weight: float = 1.0


class Schema:
    """A declarative synthetic-graph schema.

    Raises:
        DatasetError: on duplicate type names, unknown styles or endpoint
            types, non-positive shares/weights (checked on add).
    """

    def __init__(self, name: str = "custom") -> None:
        self.name = name
        self._node_types: Dict[str, NodeTypeSpec] = {}
        self._relations: List[RelationSpec] = []

    # ------------------------------------------------------------------
    def add_node_type(
        self,
        name: str,
        share: float,
        name_style: str = "generic",
        keywords: Sequence[str] = (),
    ) -> "Schema":
        """Declare a node type; returns self for chaining."""
        if name in self._node_types:
            raise DatasetError(f"duplicate node type {name!r}")
        if share <= 0:
            raise DatasetError(f"share for {name!r} must be positive")
        if name_style not in NAME_STYLES:
            raise DatasetError(
                f"unknown name_style {name_style!r}; choose from {NAME_STYLES}"
            )
        self._node_types[name] = NodeTypeSpec(
            name, share, name_style, tuple(keywords)
        )
        return self

    def add_relation(
        self, name: str, src_type: str, dst_type: str, weight: float = 1.0
    ) -> "Schema":
        """Declare a relation type; returns self for chaining."""
        for endpoint in (src_type, dst_type):
            if endpoint not in self._node_types:
                raise DatasetError(
                    f"relation {name!r} references unknown type {endpoint!r}"
                )
        if weight <= 0:
            raise DatasetError(f"weight for {name!r} must be positive")
        self._relations.append(RelationSpec(name, src_type, dst_type, weight))
        return self

    @property
    def node_types(self) -> List[NodeTypeSpec]:
        return list(self._node_types.values())

    @property
    def relations(self) -> List[RelationSpec]:
        return list(self._relations)

    # ------------------------------------------------------------------
    def generate(
        self,
        num_nodes: int,
        avg_degree: float,
        seed: int = 7,
        keyword_rate: float = 0.3,
    ) -> KnowledgeGraph:
        """Generate a graph following this schema.

        Preferential attachment per relation preserves heavy-tailed
        degrees; shares are normalized; determinism follows from *seed*.

        Raises:
            DatasetError: on empty schemas or infeasible sizes.
        """
        if not self._node_types:
            raise DatasetError("schema has no node types")
        if not self._relations:
            raise DatasetError("schema has no relations")
        if num_nodes < len(self._node_types):
            raise DatasetError(
                f"num_nodes={num_nodes} smaller than the type count"
            )
        if avg_degree <= 0:
            raise DatasetError(f"avg_degree={avg_degree} must be positive")

        rng = random.Random(seed)
        names = NameFactory(rng)
        graph = KnowledgeGraph(name=self.name)

        # Nodes, proportional to normalized shares (remainder to largest).
        total_share = sum(t.share for t in self._node_types.values())
        type_nodes: Dict[str, List[int]] = {t: [] for t in self._node_types}
        planned = {
            spec.name: max(1, int(num_nodes * spec.share / total_share))
            for spec in self._node_types.values()
        }
        largest = max(planned, key=planned.get)
        planned[largest] += num_nodes - sum(planned.values())
        for spec in self._node_types.values():
            for _ in range(planned[spec.name]):
                node_id = self._make_node(graph, spec, rng, names, keyword_rate)
                type_nodes[spec.name].append(node_id)

        # Edges via weighted relation choice + preferential attachment.
        pools: Dict[str, List[int]] = {
            t: list(nodes) for t, nodes in type_nodes.items()
        }
        weights = [r.weight for r in self._relations]
        target = int(num_nodes * avg_degree / 2)
        made = attempts = 0
        while made < target and attempts < target * 10:
            attempts += 1
            relation = rng.choices(self._relations, weights=weights, k=1)[0]
            src = rng.choice(pools[relation.src_type])
            dst = rng.choice(pools[relation.dst_type])
            if src == dst:
                continue
            graph.add_edge(src, dst, relation.name)
            pools[relation.src_type].append(src)
            pools[relation.dst_type].append(dst)
            made += 1
        if made < target * 0.5:
            raise DatasetError(
                f"edge generation stalled: {made} of {target} edges "
                "(self-loop-only relation on a singleton type?)"
            )
        return graph

    @staticmethod
    def _make_node(
        graph: KnowledgeGraph,
        spec: NodeTypeSpec,
        rng: random.Random,
        names: NameFactory,
        keyword_rate: float,
    ) -> int:
        maker = {
            "person": names.person,
            "title": names.film,
            "place": names.place,
            "org": names.organization,
            "award": names.award,
        }.get(spec.name_style)
        name = maker() if maker else names.generic(spec.name)
        keywords: List[str] = []
        pool = spec.keywords or (
            PROFESSION_WORDS if spec.name_style == "person" else GENRES
        )
        if pool and rng.random() < keyword_rate:
            keywords.append(rng.choice(list(pool)))
        return graph.add_node(name, spec.name, keywords)
