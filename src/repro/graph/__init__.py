"""Knowledge-graph substrate.

This package implements the labeled, multi-relational knowledge graph the
STAR paper queries (Section II), plus everything needed to *have* such
graphs without the paper's proprietary dumps: deterministic synthetic
generators mimicking DBpedia / YAGO2 / Freebase, the BFS graph-expansion
protocol of Exp-5, statistics for Table I, and serialization.
"""

from repro.graph.attributes import AttributeStore
from repro.graph.generators import (
    GeneratorConfig,
    dbpedia_like,
    freebase_like,
    yago2_like,
)
from repro.graph.io import load_graph, save_graph
from repro.graph.knowledge_graph import EdgeData, KnowledgeGraph, NodeData
from repro.graph.sampling import bfs_expand, bfs_sample
from repro.graph.schema import NodeTypeSpec, RelationSpec, Schema
from repro.graph.sketch import BloomSignature, NeighborhoodSketch
from repro.graph.statistics import GraphStatistics, summarize
from repro.graph.traversal import bounded_bfs_layers, nodes_within

__all__ = [
    "AttributeStore",
    "BloomSignature",
    "EdgeData",
    "GeneratorConfig",
    "GraphStatistics",
    "KnowledgeGraph",
    "NeighborhoodSketch",
    "NodeData",
    "NodeTypeSpec",
    "RelationSpec",
    "Schema",
    "bfs_expand",
    "bfs_sample",
    "bounded_bfs_layers",
    "dbpedia_like",
    "freebase_like",
    "load_graph",
    "nodes_within",
    "save_graph",
    "summarize",
    "yago2_like",
]
