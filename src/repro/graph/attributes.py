"""Attribute-store indirection simulating the paper's MongoDB tier.

The paper stores graph topology in main memory and the "rich content
information attached to each node and edge" in a MongoDB server, reporting
that attribute fetches account for 5-10% of query time.  We keep attributes
in memory but route all access through :class:`AttributeStore`, which

* counts fetches, so the evaluation harness can report the equivalent
  "attribute tier" share of work, and
* lets tests inject artificial latency to verify algorithms degrade
  gracefully when the attribute tier is slow.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Optional

from repro.graph.knowledge_graph import KnowledgeGraph


class AttributeStore:
    """Fetch node/edge attributes with instrumentation.

    Args:
        graph: the graph whose attributes are served.
        latency: optional per-fetch artificial delay in seconds (tests only).
    """

    def __init__(self, graph: KnowledgeGraph, latency: float = 0.0) -> None:
        self._graph = graph
        self._latency = latency
        self.node_fetches = 0
        self.edge_fetches = 0

    def node_attrs(self, node_id: int) -> Dict[str, Any]:
        """Fetch the attribute dict of a node."""
        self.node_fetches += 1
        if self._latency:
            time.sleep(self._latency)
        return self._graph.node(node_id).attrs

    def edge_attrs(self, edge_id: int) -> Dict[str, Any]:
        """Fetch the attribute dict of an edge."""
        self.edge_fetches += 1
        if self._latency:
            time.sleep(self._latency)
        return self._graph.edge(edge_id)[2].attrs

    @property
    def total_fetches(self) -> int:
        """Total number of attribute fetches performed so far."""
        return self.node_fetches + self.edge_fetches

    def reset(self) -> None:
        """Zero the fetch counters."""
        self.node_fetches = 0
        self.edge_fetches = 0
