"""``SemanticTier``: ANN candidate generation + exact rerank.

The token shortlist (``repro.core.candidates``) is exact over surface
vocabulary: a query whose tokens (after synonym/abbreviation expansion)
share nothing with an entity's description simply never sees it.  The
semantic tier is the recall backstop for that failure mode.  It keeps a
hashed-n-gram embedding per node (:mod:`repro.ann.embedding`) under an
LSH band index (:mod:`repro.ann.lsh`); when it engages, nearby vectors
are *probed*, the best by cosine are *reranked* with the real
:class:`~repro.similarity.scoring.ScoringFunction`, and only admissible
scores (>= the node threshold) join the candidate list.  Cosine is
never a score -- it only decides who gets scored -- so every returned
pair is exactly what the linear scan would have produced for that node.

Engagement mirrors ``use_index``:

* ``off``   -- never engages; byte-identical to a detached scorer.
* ``auto``  -- engages only when the token shortlist produced *zero*
  admissible candidates (the out-of-vocabulary case the tier exists
  for).  In-vocabulary queries keep the seed path untouched.
* ``on``    -- engages on every non-wildcard, unscoped call (recall
  benchmarking; the candidate union still dedupes).

Cost control is two-layered: a **percentile skip** reranks only the top
``1 - rerank_percentile`` fraction of probed candidates by cosine
(the rest are counted ``ann.skipped``), and a **time bound** charges
every rerank against the caller's :class:`~repro.runtime.budget.Budget`
or, when the caller passed none, an internal anytime budget of
``time_bound_ms`` -- so an engaged tier can never stall a query past
its deadline.
"""

from __future__ import annotations

from array import array
from typing import FrozenSet, List, Optional, Tuple

from repro import obs
from repro.ann.embedding import DEFAULT_DIM, NgramEmbedder
from repro.ann.lsh import (
    DEFAULT_BAND_BITS,
    DEFAULT_BANDS,
    DEFAULT_SEED,
    BandIndex,
    hyperplanes,
    signatures,
)
from repro.runtime.budget import Budget
from repro.runtime.faults import SUBSTRATE_ERRORS

#: Valid ``use_semantic`` modes (same vocabulary as ``use_index``).
MODES = ("auto", "on", "off")

#: How many ANN neighbors a probe may surface before reranking.
DEFAULT_PROBE_LIMIT = 64

#: Fraction of probed candidates (lowest cosine first) that skip the
#: exact rerank.  0.0 reranks everything; 0.5 reranks the top half.
DEFAULT_RERANK_PERCENTILE = 0.5


def build_columns(graph, dim: int = DEFAULT_DIM, bands: int = DEFAULT_BANDS,
                  band_bits: int = DEFAULT_BAND_BITS,
                  seed: int = DEFAULT_SEED):
    """Embed every live node of *graph* into flat columns.

    Returns ``(vecs, sigs, alive)``: ``array('f')`` of ``slots * dim``
    values, ``array('Q')`` of ``slots * bands`` band signatures, and a
    per-slot liveness bytearray.  Tombstoned slots stay zero.  This is
    the single source of truth for the column layout -- the in-memory
    tier builds through it and the RKGS2 store writer serializes its
    output verbatim, which is what makes mmap-attached probes
    bit-identical to in-memory ones.
    """
    embedder = NgramEmbedder(dim)
    planes = hyperplanes(dim, bands, band_bits, seed)
    slots = graph.num_node_slots
    vecs = array("f", bytes(4 * dim * slots))
    sigs = array("Q", bytes(8 * bands * slots))
    alive = bytearray(slots)
    for nid in graph.nodes():
        data = graph.node(nid)
        vec = embedder.embed(data.name, data.type, data.keywords)
        vecs[nid * dim:(nid + 1) * dim] = vec
        for b, sig in enumerate(signatures(vec, planes, bands, band_bits)):
            sigs[nid * bands + b] = sig
        alive[nid] = 1
    return vecs, sigs, alive


class SemanticTier:
    """Per-graph ANN structure + engagement policy + exact rerank.

    Attached to a scorer (``scorer.semantic_tier``) exactly like the
    candidate cache and the graph index: a detached scorer keeps the
    seed code path.  Construction is cheap -- embedding the graph is
    deferred to the first engagement (:meth:`ensure_built`), so
    attaching the tier to a query that never under-fills costs nothing.
    """

    def __init__(self, graph, mode: str = "auto", dim: int = DEFAULT_DIM,
                 bands: int = DEFAULT_BANDS,
                 band_bits: int = DEFAULT_BAND_BITS,
                 seed: int = DEFAULT_SEED,
                 probe_limit: int = DEFAULT_PROBE_LIMIT,
                 rerank_percentile: float = DEFAULT_RERANK_PERCENTILE,
                 time_bound_ms: Optional[float] = None) -> None:
        if mode not in MODES:
            raise ValueError(
                f"use_semantic mode must be one of {MODES}, got {mode!r}"
            )
        if not 0.0 <= rerank_percentile < 1.0:
            raise ValueError(
                f"rerank_percentile must be in [0, 1), got {rerank_percentile}"
            )
        if probe_limit < 1:
            raise ValueError(f"probe_limit must be >= 1, got {probe_limit}")
        self.graph = graph
        self.mode = mode
        self.embedder = NgramEmbedder(dim)
        self.index = BandIndex(dim, bands=bands, band_bits=band_bits,
                               seed=seed)
        self.probe_limit = probe_limit
        self.rerank_percentile = rerank_percentile
        self.time_bound_ms = time_bound_ms
        self.vecs = array("f")
        self.sigs = array("Q")
        self.alive = bytearray()
        self._built = False
        self._version: Optional[int] = None
        #: Cumulative counters (mirrored as ``ann.*`` obs counters).
        self.probed = 0
        self.reranked = 0
        self.skipped = 0

    # -- construction / maintenance -------------------------------------
    @property
    def built(self) -> bool:
        return self._built

    def ensure_built(self) -> None:
        """Embed the graph on first use (idempotent)."""
        if not self._built:
            self._rebuild()

    def _rebuild(self) -> None:
        self.vecs, self.sigs, self.alive = build_columns(
            self.graph, self.embedder.dim, self.index.bands,
            self.index.band_bits, self.index.seed)
        self.index.bind(self.vecs, self.sigs, self.alive, len(self.alive))
        self._version = self.graph.version
        self._built = True

    def _grow(self, slots: int) -> None:
        if slots > len(self.alive):
            grow = slots - len(self.alive)
            self.vecs.extend(array(
                "f", bytes(4 * grow * self.embedder.dim)))
            self.sigs.extend(array("Q", bytes(8 * grow * self.index.bands)))
            self.alive.extend(bytes(grow))

    def _set_node(self, nid: int, data) -> None:
        dim = self.embedder.dim
        bands = self.index.bands
        vec = self.embedder.embed(data.name, data.type, data.keywords)
        self.vecs[nid * dim:(nid + 1) * dim] = vec
        for b, sig in enumerate(self.index.signatures_of(vec)):
            self.sigs[nid * bands + b] = sig
        self.alive[nid] = 1

    def refresh(self) -> bool:
        """Resynchronize with the graph via the delta journal.

        Same protocol as :meth:`repro.index.GraphIndex.refresh`: added
        nodes are embedded into their slot, removed nodes tombstoned
        via the liveness byte, and a journal gap forces a full rebuild.
        Edge mutations and attribute updates are no-ops -- embeddings
        read only the immutable name/type/keywords description.
        Returns True when anything changed.
        """
        if not self._built:
            return False
        graph = self.graph
        if graph.version == self._version:
            return False
        if graph.delta_since(self._version) is None:
            self._rebuild()
            return True
        changed = False
        for delta in graph.journal.entries():
            if delta.version <= self._version:
                continue
            kind = delta.kind
            if kind == "add_node":
                self._grow(graph.num_node_slots)
                for nid in delta.nodes:
                    if nid in graph:
                        self._set_node(nid, graph.node(nid))
                        changed = True
                    # else: added then removed before this refresh; the
                    # remove_node delta tombstones the slot below.
            elif kind == "remove_node":
                for nid in delta.nodes:
                    if nid not in graph and nid < len(self.alive):
                        if self.alive[nid]:
                            self.alive[nid] = 0
                            changed = True
        self._grow(graph.num_node_slots)
        if changed:
            self.index.invalidate()
        self.index.bind(self.vecs, self.sigs, self.alive, len(self.alive))
        self._version = graph.version
        return changed

    def synced(self) -> bool:
        return self._built and self._version == self.graph.version

    # -- engagement ------------------------------------------------------
    @property
    def cache_token(self) -> Tuple:
        """Hashable identity of this tier's observable configuration.

        Joins the candidate-cache key so entries computed with the tier
        engaged can never serve a differently-configured (or detached)
        scorer, and vice versa.
        """
        return ("ann", self.mode, self.embedder.dim, self.index.bands,
                self.index.band_bits, self.index.seed, self.probe_limit,
                self.rerank_percentile, self.time_bound_ms)

    def should_engage(self, scorer, desc, scored, budget) -> bool:
        """Does this call get a semantic augmentation pass?

        Wildcards never engage (they already scan every node), foreign
        graphs never engage, an exhausted budget never engages (no time
        left to spend), and ``auto`` engages only when the token
        shortlist produced zero admissible candidates.
        """
        if self.mode == "off" or desc.is_wildcard:
            return False
        if scorer.graph is not self.graph:
            return False
        if budget is not None and budget.exhausted:
            return False
        if self.mode == "on":
            return True
        return not scored

    # -- probe + rerank --------------------------------------------------
    def augment(
        self, scorer, qnode, scored: List[Tuple[int, float]],
        budget: Optional[Budget] = None,
        exclude: Optional[FrozenSet[int]] = None,
    ) -> Tuple[List[Tuple[int, float]], FrozenSet[int], bool]:
        """Probe the ANN index and exactly rerank the best neighbors.

        Returns ``(extra, probed_ids, truncated)``:

        * ``extra`` -- admissible ``(node_id, score)`` pairs for nodes
          not already in *scored* (or *exclude*), scored by the real
          scorer under the normal node threshold;
        * ``probed_ids`` -- every node id the probe surfaced, for the
          caller's cache-dependency footprint (a delta touching any of
          them must invalidate the cached union);
        * ``truncated`` -- True when the tier's *internal* time bound
          tripped before all kept candidates were reranked; such
          results are partial and must not be cached.

        Reranks charge the caller's budget when one was passed
        (deadline semantics, strict or anytime, are the caller's);
        otherwise an internal anytime budget of ``time_bound_ms``
        bounds the pass.
        """
        self.ensure_built()
        self.refresh()
        desc = qnode.descriptor
        qvec = self.embedder.embed_descriptor(desc)
        seen = {nid for nid, _ in scored}
        if exclude:
            seen.update(exclude)
        with obs.trace("ann.probe", qnode=qnode.id) as span:
            ranked = self.index.probe(qvec, self.probe_limit)
            probed = [(cos, nid) for cos, nid in ranked if nid not in seen]
            span.annotate(probed=len(probed))
        self.probed += len(probed)
        obs.count("ann.probed", len(probed))
        if not probed:
            return [], frozenset(), False
        probed_ids = frozenset(nid for _, nid in probed)
        keep_n = max(
            1, len(probed) - int(len(probed) * self.rerank_percentile))
        skipped = len(probed) - keep_n
        if skipped:
            self.skipped += skipped
            obs.count("ann.skipped", skipped)
        local = budget
        internal = False
        if local is None and self.time_bound_ms is not None:
            local = Budget(deadline_ms=self.time_bound_ms, anytime=True)
            internal = True
        threshold = scorer.config.node_threshold
        extra: List[Tuple[int, float]] = []
        reranked = 0
        truncated = False
        for cos, nid in probed[:keep_n]:
            if local is not None and local.charge_nodes():
                truncated = internal
                break
            reranked += 1
            if local is not None and local.anytime:
                try:
                    score = scorer.node_score(desc, nid)
                except SUBSTRATE_ERRORS as exc:
                    local.record_fault(f"ann_rerank({nid}): {exc}")
                    continue
            else:
                score = scorer.node_score(desc, nid)
            if score >= threshold:
                extra.append((nid, score))
        self.reranked += reranked
        obs.count("ann.reranked", reranked)
        return extra, probed_ids, truncated

    def __repr__(self) -> str:
        state = "built" if self._built else "lazy"
        return (f"SemanticTier(mode={self.mode!r}, dim={self.embedder.dim}, "
                f"bands={self.index.bands}x{self.index.band_bits}, "
                f"{state}, v{self._version})")


def attach_semantic(scorer, tier: Optional[SemanticTier] = None,
                    mode: str = "auto", **options) -> SemanticTier:
    """Attach a :class:`SemanticTier` to *scorer* and return it.

    Builds a lazy tier over the scorer's graph when none is supplied.
    Like ``attach_cache``/``attach_index``, attaching is an explicit
    opt-in; a detached scorer (``semantic_tier is None``) keeps the
    seed's exact code path.
    """
    if tier is None:
        tier = SemanticTier(scorer.graph, mode=mode, **options)
    scorer.semantic_tier = tier
    return tier


def detach_semantic(scorer) -> Optional[SemanticTier]:
    """Detach and return *scorer*'s tier (restores the seed path)."""
    tier = getattr(scorer, "semantic_tier", None)
    scorer.semantic_tier = None
    return tier
