"""Random-hyperplane LSH over the embedding columns.

Classic SimHash banding (Charikar 2002): each node's vector is reduced
to ``bands`` signatures of ``band_bits`` sign bits; two vectors whose
angle is small agree on at least one whole band with high probability.
Probing hashes the query the same way, gathers every node sharing a
band bucket (plus 1-bit-flip multiprobe neighbors for recall), and
ranks the union by exact cosine against the stored columns.

Everything here is deterministic: hyperplanes come from a seeded
``random.Random``, bucket tables are built by ascending node id, and
probe results sort by ``(-cosine, node_id)``.  The same structure backs
both the in-memory tier and the mmap tier -- the only difference is
where the ``vecs``/``sigs`` flat arrays live (heap ``array`` vs store
``memoryview``), which this module never needs to know.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

#: Default banding: 8 bands x 8 bits keeps per-bucket occupancy tiny on
#: graphs up to ~10^5 nodes while still matching paraphrases whose
#: cosine is well under 1.0 (one agreeing band out of 8 suffices).
DEFAULT_BANDS = 8
DEFAULT_BAND_BITS = 8
DEFAULT_SEED = 0x5EED


def hyperplanes(dim: int, bands: int, band_bits: int,
                seed: int) -> List[List[float]]:
    """The ``bands * band_bits`` Gaussian hyperplanes, seed-determined.

    Builder and mmap reader both call this with the parameters stored in
    the file's meta section, so signatures computed at attach time match
    signatures computed at build time bit for bit.
    """
    rng = random.Random(seed)
    return [
        [rng.gauss(0.0, 1.0) for _ in range(dim)]
        for _ in range(bands * band_bits)
    ]


def signatures(vec: Sequence[float], planes: List[List[float]],
               bands: int, band_bits: int) -> List[int]:
    """Per-band sign-bit signatures of one vector (ints in [0, 2^bits))."""
    sigs: List[int] = []
    p = 0
    for _ in range(bands):
        sig = 0
        for _ in range(band_bits):
            plane = planes[p]
            p += 1
            dot = 0.0
            for i, v in enumerate(vec):
                dot += v * plane[i]
            sig = (sig << 1) | (1 if dot >= 0.0 else 0)
        sigs.append(sig)
    return sigs


def cosine(a: Sequence[float], b: Sequence[float]) -> float:
    """Dot product -- vectors are L2-normalized at embedding time."""
    dot = 0.0
    for i, x in enumerate(a):
        dot += x * b[i]
    return dot


class BandIndex:
    """Bucketed LSH signatures plus exact-cosine probe ranking.

    The index does not own its data: ``vecs`` is any flat float sequence
    of ``slots * dim`` values and ``sigs`` any flat int sequence of
    ``slots * bands`` band signatures (heap arrays or store
    memoryviews).  ``alive`` maps slot -> liveness; dead slots
    (tombstoned nodes) never leave a probe.

    Bucket tables are rebuilt lazily from the flat signature column --
    iterating slots in ascending order -- whenever the owner marks them
    dirty, so bucket list order (and therefore probe order under cosine
    ties) is a pure function of the column contents.
    """

    __slots__ = ("dim", "bands", "band_bits", "seed", "planes",
                 "vecs", "sigs", "alive", "slots", "_tables")

    def __init__(self, dim: int, bands: int = DEFAULT_BANDS,
                 band_bits: int = DEFAULT_BAND_BITS,
                 seed: int = DEFAULT_SEED) -> None:
        if bands < 1 or band_bits < 1 or band_bits > 32:
            raise ValueError(
                f"bad banding: bands={bands} band_bits={band_bits}")
        self.dim = dim
        self.bands = bands
        self.band_bits = band_bits
        self.seed = seed
        self.planes = hyperplanes(dim, bands, band_bits, seed)
        self.vecs: Sequence[float] = ()
        self.sigs: Sequence[int] = ()
        self.alive: Sequence[int] = ()
        self.slots = 0
        self._tables: Optional[List[Dict[int, List[int]]]] = None

    # ------------------------------------------------------------------
    def bind(self, vecs: Sequence[float], sigs: Sequence[int],
             alive: Sequence[int], slots: int) -> None:
        """Point the index at (possibly new) backing columns."""
        self.vecs = vecs
        self.sigs = sigs
        self.alive = alive
        self.slots = slots
        self._tables = None

    def invalidate(self) -> None:
        """Drop bucket tables; they rebuild on the next probe."""
        self._tables = None

    def signatures_of(self, vec: Sequence[float]) -> List[int]:
        return signatures(vec, self.planes, self.bands, self.band_bits)

    def _ensure_tables(self) -> List[Dict[int, List[int]]]:
        tables = self._tables
        if tables is None:
            tables = [dict() for _ in range(self.bands)]
            sigs = self.sigs
            alive = self.alive
            bands = self.bands
            for slot in range(self.slots):
                if not alive[slot]:
                    continue
                base = slot * bands
                for b in range(bands):
                    tables[b].setdefault(sigs[base + b], []).append(slot)
            self._tables = tables
        return tables

    # ------------------------------------------------------------------
    def probe(self, qvec: Sequence[float], limit: int,
              multiprobe: bool = True) -> List[Tuple[float, int]]:
        """Nearest stored slots to *qvec* by exact cosine.

        Gathers every slot sharing a band bucket with the query (and,
        with *multiprobe*, every bucket one sign-bit away -- the
        standard recall boost that costs ``bands * band_bits`` extra
        dict lookups, not a second pass over the data).  Candidates are
        then ranked by exact cosine over the stored columns and
        truncated to *limit*.  Only strictly positive cosines return:
        a non-positive angle carries no paraphrase evidence.

        Returns ``[(cos, slot), ...]`` sorted by ``(-cos, slot)``.
        """
        if self.slots == 0 or limit <= 0:
            return []
        tables = self._ensure_tables()
        qsigs = self.signatures_of(qvec)
        hit_slots: set = set()
        for b, sig in enumerate(qsigs):
            table = tables[b]
            bucket = table.get(sig)
            if bucket:
                hit_slots.update(bucket)
            if multiprobe:
                for bit in range(self.band_bits):
                    bucket = table.get(sig ^ (1 << bit))
                    if bucket:
                        hit_slots.update(bucket)
        if not hit_slots:
            return []
        vecs = self.vecs
        dim = self.dim
        ranked: List[Tuple[float, int]] = []
        for slot in hit_slots:
            base = slot * dim
            dot = 0.0
            for i, q in enumerate(qvec):
                dot += q * vecs[base + i]
            if dot > 0.0:
                ranked.append((dot, slot))
        ranked.sort(key=lambda t: (-t[0], t[1]))
        if len(ranked) > limit:
            ranked = ranked[:limit]
        return ranked

    def __repr__(self) -> str:
        return (f"BandIndex(dim={self.dim}, bands={self.bands}, "
                f"band_bits={self.band_bits}, slots={self.slots})")
