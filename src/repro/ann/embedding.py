"""Hashed character-n-gram embeddings over node descriptions.

The semantic tier needs a vector per node that two paraphrased
descriptions of the same entity land *near*, without any learned model
or external dependency.  Feature hashing over character trigrams plus
word tokens does exactly that: trigrams capture fuzzy surface overlap
("nite" vs "night"), tokens capture shared vocabulary, and hashing them
into a fixed ``dim``-dimensional space keeps every vector a flat
``array('f')`` column the RKGS2 store can lay out verbatim.

Determinism is a hard requirement -- embeddings are written into
byte-compared store files and rebuilt across processes -- so features
hash with :func:`zlib.crc32` (stable across runs, platforms and
``PYTHONHASHSEED``), never Python's randomized ``hash()``.  The sign
trick (feature hashing's variance reducer) takes the hash's top bit,
which is independent of the ``h % dim`` bucket for any ``dim`` well
below 2^31.
"""

from __future__ import annotations

import zlib
from array import array
from typing import List, Sequence

from repro.similarity.strings import ngrams
from repro.textutil import tokenize

#: Default embedding width.  64 float32 lanes keep the whole-graph
#: matrix at 256 bytes/node -- small enough to mmap casually, wide
#: enough that hash collisions stay rare for description-sized inputs.
DEFAULT_DIM = 64

#: Relative feature-family weights: shared whole tokens are stronger
#: paraphrase evidence than any single character trigram.
_TOKEN_WEIGHT = 2.0
_TYPE_WEIGHT = 1.5
_KEYWORD_WEIGHT = 1.0
_GRAM_WEIGHT = 1.0


def _hash(feature: str) -> int:
    return zlib.crc32(feature.encode("utf-8"))


class NgramEmbedder:
    """Deterministic feature-hashing embedder for node descriptions.

    One instance is shared by a :class:`~repro.ann.SemanticTier` for
    both the data side (graph nodes, embedded at build/refresh time)
    and the query side (embedded per probe); both sides must therefore
    use the *same* feature extraction, which :meth:`embed` is.
    """

    __slots__ = ("dim",)

    def __init__(self, dim: int = DEFAULT_DIM) -> None:
        if dim < 8:
            raise ValueError(f"embedding dim must be >= 8, got {dim}")
        self.dim = dim

    # ------------------------------------------------------------------
    def features(
        self, name: str, type: str = "", keywords: Sequence[str] = ()
    ) -> List[tuple]:
        """``(feature-string, weight)`` pairs for one description.

        Families are namespaced by prefix so a name token never
        collides with an equal-spelled type token at the string level
        (they may still collide in the hashed space -- that is the
        point of feature hashing).
        """
        pairs: List[tuple] = []
        name_lower = name.lower().strip()
        for gram in ngrams(name_lower, 3):
            pairs.append(("g:" + gram, _GRAM_WEIGHT))
        for token in tokenize(name):
            pairs.append(("t:" + token, _TOKEN_WEIGHT))
        for token in tokenize(type):
            pairs.append(("y:" + token, _TYPE_WEIGHT))
        for keyword in keywords:
            for token in tokenize(keyword):
                pairs.append(("k:" + token, _KEYWORD_WEIGHT))
        return pairs

    def embed(
        self, name: str, type: str = "", keywords: Sequence[str] = ()
    ) -> array:
        """L2-normalized ``array('f')`` vector for one description.

        Descriptions with no extractable features (empty / pure
        punctuation names) embed to the zero vector; callers treat a
        zero norm as "no semantic signal" and skip the probe.

        Accumulation happens in float64 and rounds to float32 once at
        the end, so an embedding computed here is bit-identical to the
        same embedding read back from a store file's ``ann.vecs``
        column.
        """
        acc = [0.0] * self.dim
        dim = self.dim
        for feature, weight in self.features(name, type, keywords):
            h = _hash(feature)
            if h & 0x80000000:
                acc[h % dim] -= weight
            else:
                acc[h % dim] += weight
        norm = sum(x * x for x in acc) ** 0.5
        if norm > 0.0:
            acc = [x / norm for x in acc]
        return array("f", acc)

    def embed_descriptor(self, desc) -> array:
        """Vector of a :class:`~repro.similarity.descriptors.Descriptor`."""
        return self.embed(desc.name, desc.type, desc.keywords)

    def __repr__(self) -> str:
        return f"NgramEmbedder(dim={self.dim})"
