"""``repro.ann``: the two-stage semantic candidate tier.

Stage one is approximate: hashed character-n-gram embeddings
(:class:`NgramEmbedder`) under a random-hyperplane LSH band index
(:class:`BandIndex`) surface nodes whose descriptions are *near* the
query even when they share no tokens with it.  Stage two is exact:
the surfaced candidates are reranked with the real
:class:`~repro.similarity.scoring.ScoringFunction` before anything
reaches the search algorithms, so the tier changes recall, never
scoring semantics.  :class:`SemanticTier` packages both stages plus
the engagement policy (``use_semantic=auto|on|off``), the delta-journal
refresh, and the response-time bound.
"""

from repro.ann.embedding import DEFAULT_DIM, NgramEmbedder
from repro.ann.lsh import (
    DEFAULT_BAND_BITS,
    DEFAULT_BANDS,
    DEFAULT_SEED,
    BandIndex,
    cosine,
    hyperplanes,
    signatures,
)
from repro.ann.semantic import (
    DEFAULT_PROBE_LIMIT,
    DEFAULT_RERANK_PERCENTILE,
    MODES,
    SemanticTier,
    attach_semantic,
    build_columns,
    detach_semantic,
)

__all__ = [
    "DEFAULT_BAND_BITS",
    "DEFAULT_BANDS",
    "DEFAULT_DIM",
    "DEFAULT_PROBE_LIMIT",
    "DEFAULT_RERANK_PERCENTILE",
    "DEFAULT_SEED",
    "MODES",
    "BandIndex",
    "NgramEmbedder",
    "SemanticTier",
    "attach_semantic",
    "build_columns",
    "cosine",
    "detach_semantic",
    "hyperplanes",
    "signatures",
]
