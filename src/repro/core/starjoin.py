"""Procedure ``starjoin``: top-k rank join over star matches (Section VI-A).

Given a query decomposed into stars ``Q*_1 .. Q*_m`` (an edge partition;
:mod:`repro.query.decomposition`), each star's matcher emits matches in
monotone non-increasing order of its *weighted* score ``F'``.  starjoin
runs an HRJN-style loop (Fig. 9): fetch the next match of each active
star, join it with the other stars' fetched lists, keep the best joins in
a bounded priority pool, and terminate once the k-th best join beats every
star's upper bound.

**Alpha-scheme** (Eq. 4): a joint node shared by several stars would have
its ``F_N`` counted once per star, making Eq. 3's classic HRJN bound
invalid.  Instead each joint node's score is split across its stars --
weight ``alpha`` in the first star containing it, ``(1-alpha)/(t-1)`` in
the remaining ``t-1`` -- so star scores sum exactly to the complete
match's ``F`` and the bounds stay valid for any ``alpha in [0, 1]``.

Each complete match is materialized exactly once: a combination is formed
when its *last-fetched* component arrives (fetch sequence numbers guard
against double counting).

The *total search depth* ``D = sum_i |L_i|`` (how deep each star's stream
was consumed) is the cost metric of Figs. 14(d)/15(b).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro import obs
from repro.core.matches import Match
from repro.core.rankmerge import MonotoneStream, ScoredPool
from repro.core.stard import StarDSearch
from repro.core.stark import StarKSearch
from repro.errors import BudgetExceededError, SearchError
from repro.query.decomposition import Decomposition
from repro.query.model import Query, StarQuery
from repro.runtime.budget import Budget, SearchReport
from repro.similarity.scoring import ScoringFunction


class _AnytimeStop(Exception):
    """Internal control flow: unwind the join once an anytime budget
    trips (never escapes :meth:`StarJoin.join`)."""


def alpha_weights(
    decomposition: Decomposition, alpha: float
) -> List[Dict[int, float]]:
    """Per-star node-weight maps implementing the alpha-scheme.

    A query node appearing in ``t`` stars gets weight *alpha* in the first
    star (decomposition order) and ``(1 - alpha) / (t - 1)`` in each later
    star; exclusive nodes keep weight 1.  Weights per node always sum to 1
    across stars, which is what makes joined scores equal Eq. 2's ``F``.

    Raises:
        SearchError: if *alpha* is outside [0, 1].
    """
    if not (0.0 <= alpha <= 1.0):
        raise SearchError(f"alpha={alpha} must be in [0, 1]")
    membership: Dict[int, List[int]] = {}
    for star_idx, star in enumerate(decomposition.stars):
        for qid in set(star.node_ids()):
            membership.setdefault(qid, []).append(star_idx)
    weights: List[Dict[int, float]] = [dict() for _ in decomposition.stars]
    for qid, star_idxs in membership.items():
        t = len(star_idxs)
        if t == 1:
            weights[star_idxs[0]][qid] = 1.0
            continue
        weights[star_idxs[0]][qid] = alpha
        rest = (1.0 - alpha) / (t - 1)
        for star_idx in star_idxs[1:]:
            weights[star_idx][qid] = rest
    return weights


class _StarStream(MonotoneStream):
    """One star's monotone match stream plus its fetched list ``L_i``.

    The bound bookkeeping (top/last score, exhaustion, drop flag) lives
    in the shared :class:`~repro.core.rankmerge.MonotoneStream`; this
    subclass adds the join-specific fetched list.  Fetched entries carry
    a global sequence number so joins can pair a new match only with
    strictly earlier ones.
    """

    __slots__ = ("star", "fetched")

    def __init__(self, star: StarQuery, iterator: Iterator[Match]) -> None:
        super().__init__(iterator)
        self.star = star
        self.fetched: List[Tuple[int, Match]] = []

    def fetch(self, seq: int) -> Optional[Match]:
        match = self.pull()
        if match is not None:
            self.fetched.append((seq, match))
        return match

    @property
    def depth(self) -> int:
        return len(self.fetched)


class StarJoin:
    """Top-k search for general queries by star decomposition + rank join.

    Args:
        scorer: shared :class:`ScoringFunction`.
        d: search bound (d >= 2 uses ``stard`` streams).
        alpha: the alpha-scheme split parameter.
        injective: enforce one-to-one matching globally.
        candidate_limit: pivot/leaf candidate cutoff passed to the star
            matchers.
    """

    def __init__(
        self,
        scorer: ScoringFunction,
        d: int = 1,
        alpha: float = 0.5,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
        directed: bool = False,
    ) -> None:
        if not (0.0 <= alpha <= 1.0):
            raise SearchError(f"alpha={alpha} must be in [0, 1]")
        if directed and d != 1:
            raise SearchError("directed matching is defined for d == 1 only")
        self.directed = directed
        self.scorer = scorer
        self.d = d
        self.alpha = alpha
        self.injective = injective
        self.candidate_limit = candidate_limit
        # Filled by the last `join` call (Fig. 14(d) metrics).
        self.last_depths: List[int] = []
        self.last_joins_attempted = 0
        self.last_report: Optional[SearchReport] = None

    # ------------------------------------------------------------------
    def _make_stream(
        self,
        star: StarQuery,
        node_weights: Mapping[int, float],
        budget: Optional[Budget] = None,
    ) -> Iterator[Match]:
        if self.d == 1:
            matcher = StarKSearch(
                self.scorer, injective=self.injective,
                candidate_limit=self.candidate_limit,
                directed=self.directed,
            )
            return matcher.stream(star, node_weights, budget=budget)
        matcher = StarDSearch(
            self.scorer, d=self.d, injective=self.injective,
            candidate_limit=self.candidate_limit,
        )
        return matcher.stream(star, node_weights, budget=budget)

    # ------------------------------------------------------------------
    def join(
        self,
        decomposition: Decomposition,
        k: int,
        budget: Optional[Budget] = None,
    ) -> List[Match]:
        """Run the rank join over an existing decomposition.

        Returns the top-k complete matches in decreasing score order.

        The *budget* is shared with every star's stream, so node visits,
        messages and the deadline are accounted across the whole join.
        An anytime trip (in a stream or between join steps) stops
        fetching; the pool built so far is returned, ranked, and
        :attr:`last_report` flags the run as incomplete.

        Raises:
            SearchError: for non-positive k.
            SearchTimeoutError / BudgetExceededError: on a strict-mode
                budget trip.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        budget_on = budget is not None
        stars = decomposition.stars
        try:
            if len(stars) == 1:
                with obs.trace("starjoin.single_star", k=k):
                    stream = self._make_stream(stars[0], {}, budget=budget)
                    results: List[Match] = []
                    for match in stream:
                        results.append(match)
                        if len(results) == k:
                            break
                self.last_depths = [len(results)]
                self.last_joins_attempted = 0
                self.last_report = SearchReport.from_budget(
                    "starjoin", budget, len(results)
                )
                return results

            weights = alpha_weights(decomposition, self.alpha)
            streams = [
                _StarStream(star, self._make_stream(star, w, budget=budget))
                for star, w in zip(stars, weights)
            ]

            # Bounded result pool: the best <= k joins so far, with
            # HRJN's theta threshold (see repro.core.rankmerge).
            pool = ScoredPool(k)
            seq = 0
            self.last_joins_attempted = 0

            def offer(match: Match) -> None:
                pool.offer(match.score, match)

            theta = pool.theta

            try:
                # Prime every stream: a star with zero matches kills all
                # joins.
                primed = True
                with obs.trace("starjoin.prime", stars=len(streams)):
                    for stream in streams:
                        if stream.fetch(seq) is None:
                            primed = False
                            break
                        self._join_new(
                            streams, streams.index(stream), seq, offer, budget
                        )
                        seq += 1
                if not primed:
                    self.last_depths = [s.depth for s in streams]
                    self.last_report = SearchReport.from_budget(
                        "starjoin", budget, 0
                    )
                    return []

                progressed = True
                with obs.trace("starjoin.rank_join", k=k) as join_span:
                    while progressed:
                        if budget_on and budget.check():
                            raise _AnytimeStop
                        progressed = False
                        for idx, stream in enumerate(streams):
                            match = stream.fetch(seq)
                            if match is None:
                                continue
                            seq += 1
                            progressed = True
                            self._join_new(
                                streams, idx, seq - 1, offer, budget
                            )
                            # Per-star upper bound theta_i (Eq. 4
                            # generalized): the just-fetched score plus the
                            # other stars' top scores.
                            bound = match.score + sum(
                                s.top_score
                                for j, s in enumerate(streams) if j != idx
                            )
                            if bound < theta():
                                stream.dropped = True
                        if len(pool) >= k:
                            bounds = [
                                s.last_score + sum(
                                    o.top_score
                                    for j, o in enumerate(streams) if j != i
                                )
                                for i, s in enumerate(streams)
                                if not (s.dropped or s.exhausted)
                            ]
                            if not bounds or max(bounds) <= theta():
                                break
                    join_span.annotate(
                        joins=self.last_joins_attempted,
                        depth=sum(s.depth for s in streams),
                    )
            except _AnytimeStop:
                pass

            self.last_depths = [s.depth for s in streams]
            results = pool.ranked()
            self.last_report = SearchReport.from_budget(
                "starjoin", budget, len(results)
            )
            return results
        except BudgetExceededError as exc:
            self.last_report = SearchReport.from_budget("starjoin", budget, 0)
            if exc.report is None:
                exc.report = self.last_report
            raise

    # ------------------------------------------------------------------
    def _join_new(
        self,
        streams: Sequence[_StarStream],
        new_idx: int,
        new_seq: int,
        offer,
        budget: Optional[Budget] = None,
    ) -> None:
        """Join star *new_idx*'s newest match against the other stars'
        strictly earlier matches (all consistent combinations)."""
        new_match = streams[new_idx].fetched[-1][1]
        others = [i for i in range(len(streams)) if i != new_idx]
        budget_on = budget is not None

        def recurse(pos: int, partial: Match) -> None:
            if pos == len(others):
                offer(partial)
                return
            for cand_seq, candidate in streams[others[pos]].fetched:
                if cand_seq > new_seq:
                    break  # fetched lists are in sequence order
                if budget_on and budget.charge_join_steps():
                    raise _AnytimeStop
                self.last_joins_attempted += 1
                merged = partial.merge(candidate)
                if merged is None:
                    continue
                if self.injective and not merged.is_injective():
                    continue
                recurse(pos + 1, merged)

        recurse(0, new_match)

    # ------------------------------------------------------------------
    @property
    def total_depth(self) -> int:
        """``D = sum_i |L_i|`` of the last join (Fig. 14(d) metric)."""
        return sum(self.last_depths)
