"""Message propagation for ``stard`` (Section V-B).

A message originating at a leaf match ``w`` is the triple
``<(u*, w), F_N(u*, w), h>``: "within ``h`` hops there is a node ``w``
matching leaf ``u*`` with score ``F``".  Propagation keeps, per graph node
and hop count, the **two best** messages with *distinct origins* -- the
paper's fix for the ping-pong effect: when the best origin is the pivot
itself (or must be excluded), the runner-up is still available, so top-1
estimates never silently vanish.

``B[h][v]`` after propagation holds the best (top-2) leaf-match scores
reachable from ``v`` by a walk of exactly ``h`` hops; combined with the
monotone edge-path bound this yields the per-pivot upper bounds stard
sorts by.  Space is ``O(d |V|)`` per distinct leaf constraint, matching
the paper's bound.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.graph.knowledge_graph import KnowledgeGraph
from repro.runtime.budget import Budget


class Top2:
    """The two best (score, origin) pairs with distinct origins."""

    __slots__ = ("s1", "o1", "s2", "o2")

    def __init__(self, score: float, origin: int) -> None:
        self.s1 = score
        self.o1 = origin
        self.s2 = float("-inf")
        self.o2 = -1

    def offer(self, score: float, origin: int) -> None:
        """Merge a candidate message into the top-2."""
        if origin == self.o1:
            if score > self.s1:
                self.s1 = score
            return
        if score > self.s1:
            self.s2, self.o2 = self.s1, self.o1
            self.s1, self.o1 = score, origin
        elif score > self.s2 and origin != self.o1:
            self.s2, self.o2 = score, origin

    def merge(self, other: "Top2") -> None:
        """Merge another node's top-2 (one propagation step)."""
        self.offer(other.s1, other.o1)
        if other.o2 >= 0:
            self.offer(other.s2, other.o2)

    def best_excluding(self, banned: Optional[int]) -> Optional[float]:
        """Best score whose origin differs from *banned* (None = no ban)."""
        if banned is None or self.o1 != banned:
            return self.s1
        if self.o2 >= 0:
            return self.s2
        return None

    def __repr__(self) -> str:
        return f"Top2({self.s1:.3f}@{self.o1}, {self.s2:.3f}@{self.o2})"


def propagate(
    graph: KnowledgeGraph,
    seeds: Mapping[int, float],
    d: int,
    budget: Optional[Budget] = None,
) -> List[Dict[int, Top2]]:
    """Run *d* rounds of message propagation from *seeds*.

    Args:
        seeds: leaf-match node -> ``F_N`` score (already thresholded).
        d: number of rounds (the search bound).
        budget: optional :class:`Budget`; each round charges its message
            count and checks the deadline.  After an anytime trip the
            remaining rounds are returned as *empty* layers (shape is
            preserved), which makes the downstream pivot estimates
            under-estimates -- the stard stream then degrades to a
            flagged best-so-far answer instead of an exact one.

    Returns:
        ``B`` with ``B[h][v]`` = top-2 seed scores reachable from ``v`` by
        a walk of exactly ``h`` hops (``B[0]`` = the seeds themselves).
    """
    layers: List[Dict[int, Top2]] = []
    current: Dict[int, Top2] = {}
    for node, score in seeds.items():
        current[node] = Top2(score, node)
    layers.append(current)
    for _round in range(d):
        if budget is not None and budget.check():
            break
        nxt: Dict[int, Top2] = {}
        for node, top2 in layers[-1].items():
            for nbr, _eid in graph.neighbors(node):
                existing = nxt.get(nbr)
                if existing is None:
                    copy = Top2(top2.s1, top2.o1)
                    copy.s2, copy.o2 = top2.s2, top2.o2
                    nxt[nbr] = copy
                else:
                    existing.merge(top2)
        layers.append(nxt)
        if budget is not None and budget.charge_messages(len(nxt)):
            break
    while len(layers) < d + 1:
        layers.append({})
    return layers


def estimate_leaf_bound(
    layers: List[Dict[int, Top2]],
    pivot: int,
    d: int,
    edge_upper_bound,
    edge_threshold: float,
    exclude_pivot: bool,
) -> Optional[float]:
    """Upper bound on a leaf's (node + edge) contribution at *pivot*.

    ``max over h in 1..d of (best F_N at walk distance h, pivot excluded
    as origin under injective matching) + edge bound for h``.  Hop counts
    whose edge bound already fails the edge threshold are skipped.
    Returns None when the leaf is unreachable within *d* hops.
    """
    banned = pivot if exclude_pivot else None
    best: Optional[float] = None
    for hops in range(1, d + 1):
        bound = edge_upper_bound(hops)
        if bound < edge_threshold:
            continue
        top2 = layers[hops].get(pivot)
        if top2 is None:
            continue
        node_bound = top2.best_excluding(banned)
        if node_bound is None:
            continue
        total = node_bound + bound
        if best is None or total > best:
            best = total
    return best
