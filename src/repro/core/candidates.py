"""Online candidate generation for query nodes.

The paper computes match scores online; indexes are only used to shortlist
candidates (Section V-A: "This can be further optimized with various
indices").  We shortlist through the graph's inverted token index expanded
with synonyms/abbreviations, plus the graph's precomputed subtype-closure
index (ontology subtypes); wildcards fall back to a full scan.  Every
shortlisted node is scored with the full ranking function and kept only
above the node threshold -- so all matchers see identical candidate sets.

When a :class:`repro.ann.SemanticTier` is attached to the scorer, calls
the token shortlist cannot serve (out-of-vocabulary paraphrases, in
``auto`` mode) are augmented with ANN-sourced candidates reranked by the
same scoring function under the same threshold -- recall changes,
scoring semantics never do.  Scoped (sharded) calls skip the tier: the
scoped result must stay a pure filter of the unscoped one.

Both entry points consult the scorer's optional cross-query
:class:`repro.perf.CandidateCache`: repeated query-node constraints (the
norm in template workloads) return memoized scored lists.  Budgeted calls
bypass the scored-list entries -- budget charging is observable behavior,
and anytime-degraded partial lists must never be cached -- but still use
shortlist entries, which are unscored, charge nothing, and preserve
iteration order (see ``repro.perf.cache`` for the contract).
"""

from __future__ import annotations

from typing import AbstractSet, FrozenSet, List, Optional, Set, Tuple

from repro import obs
from repro.query.model import QueryNode
from repro.runtime.budget import Budget
from repro.runtime.faults import SUBSTRATE_ERRORS
from repro.similarity import ontology
from repro.similarity.scoring import ScoringFunction

#: Minimum shortlist prefix scored even after an anytime budget trips, so
#: downstream always has *some* admissible candidates to assemble a
#: best-so-far answer from (the anytime minimum-progress guarantee).
_ANYTIME_FLOOR = 48


def expanded_query_tokens(desc) -> FrozenSet[str]:
    """Synonym/abbreviation-expanded token set of a query descriptor.

    This is the exact token footprint the shortlist probes the inverted
    index with; the candidate cache stores it as a dependency so a graph
    delta touching any of these tokens invalidates the entry.
    """
    tokens: Set[str] = set(desc.name_tokens) | set(desc.keyword_tokens)
    expanded = set(tokens)
    for token in tokens:
        expanded |= ontology.synonyms_of(token)
        long_form = ontology.expand_abbreviation(token)
        if long_form:
            expanded.add(long_form)
    return frozenset(expanded)


def shortlist(scorer: ScoringFunction, qnode: QueryNode) -> Set[int]:
    """Index-based shortlist of possibly-matching node ids (no scoring).

    When a candidate cache is attached, a hit returns the *stored* set
    object, not a copy: anytime budgets truncate work by shortlist
    iteration order, so serving the identical object is what keeps warm
    runs byte-identical to cold ones.  Callers must treat the returned
    set as read-only (every in-tree caller does).
    """
    graph = scorer.graph
    desc = qnode.descriptor
    if desc.is_wildcard and not qnode.type:
        return set(graph.nodes())
    cache = scorer.candidate_cache
    key = None
    if cache is not None:
        key = cache.shortlist_key(scorer, qnode)
        hit = cache.get(key, graph=graph)
        if hit is not None:
            return hit
    candidates: Set[int] = set()
    expanded = expanded_query_tokens(desc)
    candidates |= graph.nodes_matching_any(expanded)
    if qnode.type:
        candidates |= graph.nodes_of_subtype(qnode.type)
    if desc.is_wildcard and not candidates:
        # Typed wildcards whose type matches nothing fall back to a full
        # scan; the fallback is cached like any other shortlist so warm
        # runs return the stored object (the anytime-order contract).
        candidates = set(graph.nodes())
    if key is not None:
        cache.put(key, candidates, graph=graph,
                  deps=(frozenset(candidates), expanded, qnode.type))
    return candidates


def node_candidates(
    scorer: ScoringFunction,
    qnode: QueryNode,
    limit: Optional[int] = None,
    budget: Optional[Budget] = None,
    scope: Optional[AbstractSet[int]] = None,
) -> List[Tuple[int, float]]:
    """Scored, threshold-filtered candidates for *qnode*.

    Returns ``[(node_id, F_N), ...]`` sorted by decreasing score (ties by
    node id, so ordering is deterministic).

    Args:
        limit: optional cutoff keeping only the best *limit* candidates
            ("a cutoff threshold will be applied to retain a few candidate
            nodes", Section V-A).  None keeps everything above threshold.
        budget: optional :class:`Budget`.  Each scored node charges one
            node visit; online scoring is the dominant per-query cost, so
            this is where deadlines usually bind.  After an anytime trip
            the scan still covers a small shortlist prefix
            (minimum-progress) and then stops, returning a partial -- but
            correctly scored and ordered -- candidate list.  Under an
            anytime budget, substrate faults skip the affected node and
            are recorded on the budget.
        scope: optional node-id set restricting the candidate universe
            (the sharded execution layer's ownership/halo restriction).
            Scoped calls never touch the cross-query cache or the index
            routing: the scoped result is ``[(n, s) for n, s in
            unscoped if n in scope]`` by construction, the exactness
            argument shards rely on.  Combining ``scope`` with ``limit``
            changes which nodes survive the cutoff, so callers needing
            global-truncation parity must apply the limit globally and
            filter afterwards (see ``repro.core.stark``).
    """
    scorer.assert_graph_unchanged()
    cache = scorer.candidate_cache
    key = None
    if cache is not None and budget is None and scope is None:
        key = cache.candidate_key(scorer, qnode, limit)
        hit = cache.get(key, graph=scorer.graph)
        if hit is not None:
            return list(hit)
    desc = qnode.descriptor
    index = getattr(scorer, "graph_index", None)
    if index is not None and scope is None and index.eligible(
            scorer, desc, limit, budget):
        # Indexed path: same candidate universe, same memoized scores,
        # evaluated in decreasing upper-bound order with an early cutoff
        # -- provably identical output (see repro.index.graph_index).
        index.refresh()
        with obs.trace("candidates.indexed", qnode=qnode.id) as span:
            indexed, footprint = index.candidates(scorer, qnode, limit)
            span.annotate(admissible=len(indexed))
        tier = getattr(scorer, "semantic_tier", None)
        ann_truncated = False
        if tier is not None and tier.should_engage(
                scorer, desc, indexed, budget):
            extra, probed, ann_truncated = tier.augment(
                scorer, qnode, indexed, budget=budget)
            if extra:
                indexed.extend(extra)
            if probed:
                # Probed nodes join the dependency footprint: a delta
                # touching one must invalidate the cached union even if
                # it never appeared in any posting list.
                footprint = frozenset(footprint) | probed
        indexed.sort(key=lambda t: (-t[1], t[0]))
        if limit is not None and len(indexed) > limit:
            indexed = indexed[:limit]
        if key is not None and not ann_truncated:
            cache.put(key, tuple(indexed), graph=scorer.graph,
                      deps=(footprint, expanded_query_tokens(desc),
                            qnode.type))
        return indexed
    threshold = scorer.config.node_threshold
    scored: List[Tuple[int, float]] = []
    base: Optional[Set[int]] = None
    with obs.trace("candidates.score", qnode=qnode.id) as span:
        if budget is None:
            base = shortlist(scorer, qnode)
            for node_id in base:
                if scope is not None and node_id not in scope:
                    continue
                score = scorer.node_score(desc, node_id)
                if score >= threshold:
                    scored.append((node_id, score))
        else:
            anytime = budget.anytime
            processed = 0
            for node_id in shortlist(scorer, qnode):
                if scope is not None and node_id not in scope:
                    continue
                if budget.charge_nodes() and processed >= _ANYTIME_FLOOR:
                    break
                processed += 1
                if anytime:
                    try:
                        score = scorer.node_score(desc, node_id)
                    except SUBSTRATE_ERRORS as exc:
                        budget.record_fault(f"node_score({node_id}): {exc}")
                        continue
                else:
                    score = scorer.node_score(desc, node_id)
                if score >= threshold:
                    scored.append((node_id, score))
        span.annotate(admissible=len(scored))
    tier = getattr(scorer, "semantic_tier", None)
    ann_probed: FrozenSet[int] = frozenset()
    ann_truncated = False
    if tier is not None and scope is None and tier.should_engage(
            scorer, desc, scored, budget):
        # Semantic augmentation: ANN-probe the embedding index, rerank
        # the best neighbors with the real scorer, and fold admissible
        # extras into the same (-score, node_id) ordering.  The linear
        # path excludes the whole shortlist (every member already got an
        # exact score above); budgeted calls exclude only the scored
        # prefix, since anytime trips leave the shortlist tail unscored.
        extra, ann_probed, ann_truncated = tier.augment(
            scorer, qnode, scored, budget=budget,
            exclude=frozenset(base) if base is not None else None)
        scored.extend(extra)
    scored.sort(key=lambda t: (-t[1], t[0]))
    if limit is not None and len(scored) > limit:
        scored = scored[:limit]
    if key is not None and not ann_truncated:
        # The dependency footprint is the *shortlist* (a superset of the
        # scored list) plus every ANN-probed node: a delta touching a
        # shortlisted node that scored below threshold could push it
        # above, so survival must consider those nodes too.  Results
        # truncated by the tier's internal time bound are partial and
        # never cached.
        cache.put(key, tuple(scored), graph=scorer.graph,
                  deps=(frozenset(base if base is not None else ())
                        | ann_probed,
                        expanded_query_tokens(desc), qnode.type))
    return scored
