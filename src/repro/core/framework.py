"""Framework STAR (Fig. 4): the end-to-end top-k query engine.

Ties the pieces together: star queries go straight to ``stark`` (d = 1) or
``stard`` (d >= 2); general queries are decomposed (Section VI-B) and the
star match streams are rank-joined by ``starjoin`` with the alpha-scheme.
This is the class a library user instantiates::

    from repro import Star
    engine = Star(graph)                      # default scoring
    matches = engine.search(query, k=10)      # top-10, any query shape
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro import obs
from repro.core.hybrid import HybridStarSearch
from repro.core.matches import Match
from repro.core.stard import StarDSearch
from repro.core.stark import StarKSearch
from repro.core.starjoin import StarJoin
from repro.errors import DecompositionError, SearchError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.query.decomposition import Decomposition, METHODS, decompose
from repro.query.model import Query, StarQuery
from repro.runtime.budget import Budget, SearchReport
from repro.similarity.scoring import ScoringConfig, ScoringFunction

#: Star-procedure choices ``Star(algorithm=...)`` accepts.  ``auto`` is
#: the seed routing (stark at d = 1, stard at d >= 2); the explicit names
#: pin one procedure regardless of ``d``.  All three are exact: they
#: produce score-identical rankings (only exact-tie order may vary), so
#: the choice is purely a performance decision, which is why the learned
#: planner may pick it per query.
ALGORITHMS = ("auto", "stark", "stard", "hybrid")

#: Plan modes: ``static`` = fixed knobs (seed behavior, zero overhead);
#: ``auto`` = a :class:`repro.plan.QueryPlanner` explores cold arms and
#: learns online, exploiting once warm; ``learned`` = exploit only --
#: the planner runs the static plan until its model is warm (usually a
#: fitted model loaded via ``plan_model=``).  Every planned knob is
#: result-preserving, so all three modes return identical matches.
PLAN_MODES = ("static", "auto", "learned")


class Star:
    """The STAR top-k knowledge-graph search engine.

    Args:
        graph: the data graph.
        scorer: a shared :class:`ScoringFunction`; built from *config* (or
            defaults) when omitted.
        config: scoring configuration used when *scorer* is omitted.
        d: search bound -- a query edge may match a path of length <= d.
        alpha: alpha-scheme split for rank joins.
        decomposition_method: one of ``rand / maxdeg / simsize / simtop /
            simdec`` (Section VI-B).
        lam: Eq. 5's lambda trade-off for the optimized decompositions.
        injective: enforce one-to-one matching.
        candidate_limit: optional candidate cutoff for large graphs.
        use_index: ``auto`` | ``on`` | ``off`` -- route candidate
            generation through an upper-bound-pruned
            :class:`repro.index.GraphIndex` (results are byte-identical
            to the linear scan).  ``auto`` (default) engages it only for
            calls with a candidate cutoff; ``off`` never builds one.  A
            scorer with an index already attached keeps it regardless.
        use_semantic: ``auto`` | ``on`` | ``off`` -- attach a
            :class:`repro.ann.SemanticTier` adding ANN-sourced,
            exactly-reranked candidates.  ``auto`` (default) engages
            only when the token shortlist yields zero admissible
            candidates (out-of-vocabulary queries), leaving
            in-vocabulary searches byte-identical to the seed; ``on``
            augments every non-wildcard candidate call; ``off`` never
            attaches.  A scorer with a tier already attached keeps it
            regardless (so callers can pre-tune probe limits or time
            bounds via :func:`repro.ann.attach_semantic`).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        scorer: Optional[ScoringFunction] = None,
        config: Optional[ScoringConfig] = None,
        d: int = 1,
        alpha: Optional[float] = None,
        decomposition_method: Optional[str] = None,
        lam: float = 1.0,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
        directed: bool = False,
        use_index: str = "auto",
        use_semantic: str = "auto",
        algorithm: str = "auto",
        plan: str = "static",
        planner=None,
        plan_model: Optional[str] = None,
    ) -> None:
        if d < 1:
            raise SearchError(f"search bound d must be >= 1, got {d}")
        if directed and d != 1:
            raise SearchError("directed matching is defined for d == 1 only")
        # An explicitly passed knob is *pinned*: the planner must never
        # override it (the caller's choice always wins).  ``None`` means
        # "engine default, planner may tune".
        self._alpha_pinned = alpha is not None
        if alpha is None:
            alpha = 0.5
        if not (0.0 <= alpha <= 1.0):
            raise SearchError(f"alpha={alpha} must be in [0, 1]")
        self._method_pinned = decomposition_method is not None
        if decomposition_method is None:
            decomposition_method = "simdec"
        if decomposition_method not in METHODS:
            # Typed, fail-fast validation: without it a bad method name
            # only surfaces on the first *non-star* search, deep inside
            # decompose (and never at all on star-only workloads).
            raise DecompositionError(
                f"unknown decomposition method {decomposition_method!r}; "
                f"choose from {METHODS}"
            )
        if use_index not in ("auto", "on", "off"):
            raise SearchError(
                f"use_index must be auto, on or off, got {use_index!r}"
            )
        if use_semantic not in ("auto", "on", "off"):
            raise SearchError(
                f"use_semantic must be auto, on or off, got {use_semantic!r}"
            )
        if algorithm not in ALGORITHMS:
            raise SearchError(
                f"algorithm must be one of {ALGORITHMS}, got {algorithm!r}"
            )
        if directed and algorithm not in ("auto", "stark"):
            # stard/hybrid do not implement edge orientation; silently
            # ignoring it would change results.
            raise SearchError(
                f"directed matching requires algorithm auto or stark, "
                f"got {algorithm!r}"
            )
        if plan not in PLAN_MODES:
            raise SearchError(
                f"plan must be one of {PLAN_MODES}, got {plan!r}"
            )
        self.directed = directed
        self.graph = graph
        self.scorer = scorer or ScoringFunction(graph, config)
        self.use_index = use_index
        # ``auto`` only ever routes calls that carry a candidate cutoff,
        # so without one there is nothing to build; ``on`` always builds.
        wants_index = use_index == "on" or (
            use_index == "auto" and candidate_limit is not None
        )
        if wants_index and getattr(
                self.scorer, "graph_index", None) is None:
            from repro.index import attach_index

            attach_index(self.scorer, mode=use_index)
        self.use_semantic = use_semantic
        # The tier itself is lazy (the graph embeds on first engagement),
        # so attaching under ``auto``/``on`` costs nothing until a query
        # actually under-fills the token shortlist.
        if use_semantic != "off" and getattr(
                self.scorer, "semantic_tier", None) is None:
            from repro.ann import attach_semantic

            attach_semantic(self.scorer, mode=use_semantic)
        self.d = d
        self.alpha = alpha
        self.decomposition_method = decomposition_method
        self.lam = lam
        self.injective = injective
        self.candidate_limit = candidate_limit
        self.algorithm = algorithm
        self._algorithm_override: Optional[str] = None
        self.plan_mode = plan
        self.planner = planner
        if plan != "static" and self.planner is None:
            from repro.plan import QueryPlanner

            self.planner = QueryPlanner.for_engine(
                mode=plan, model_path=plan_model
            )
        if self.planner is not None and use_index == "auto" and getattr(
                self.scorer, "graph_index", None) is None:
            # The planner's per-query index routing needs an index to
            # route *to*; attach one in ``auto`` mode (inert without a
            # cutoff, so static-default behavior is unchanged).
            from repro.index import attach_index

            attach_index(self.scorer, mode="auto")
        #: The planner's decision for the last search (None under static
        #: planning) -- exposed for tests, tracing and the CLI.
        self.last_plan = None
        self.last_decomposition: Optional[Decomposition] = None
        self.last_join: Optional[StarJoin] = None
        self.last_report: Optional[SearchReport] = None
        #: Unified counter snapshot of the last search under the
        #: :class:`repro.obs.EngineStats` schema -- the *same keys* for
        #: stark, stard and rank-joined general queries (irrelevant
        #: counters stay zero).  The batch API (``repro.perf.search_many``)
        #: merges these across queries by addition.  None before the
        #: first search.
        self.last_stats: Optional[dict] = None
        #: The typed form of :attr:`last_stats` (carries ``algorithm``).
        self.last_engine_stats: Optional[obs.EngineStats] = None

    # ------------------------------------------------------------------
    def _star_matcher(self):
        algorithm = self._algorithm_override or self.algorithm
        if algorithm == "auto":
            algorithm = "stark" if self.d == 1 else "stard"
        if algorithm == "stark":
            return StarKSearch(
                self.scorer, injective=self.injective,
                candidate_limit=self.candidate_limit,
                directed=self.directed, d=self.d,
            )
        if algorithm == "hybrid":
            return HybridStarSearch(
                self.scorer, d=self.d, injective=self.injective,
                candidate_limit=self.candidate_limit,
            )
        return StarDSearch(
            self.scorer, d=self.d, injective=self.injective,
            candidate_limit=self.candidate_limit,
        )

    def _cache_marks(self):
        cache = self.scorer.candidate_cache
        if cache is None:
            return None, 0, 0
        return cache, cache.stats.hits, cache.stats.misses

    def _finish_stats(self, stats: obs.EngineStats, cache, hits0: int,
                      misses0: int) -> None:
        """Publish one search's counters under the unified schema."""
        if cache is not None:
            stats.cache_hits = cache.stats.hits - hits0
            stats.cache_misses = cache.stats.misses - misses0
        self.last_engine_stats = stats
        self.last_stats = stats.as_dict()

    def search_star(
        self, star: StarQuery, k: int, budget: Optional[Budget] = None
    ) -> List[Match]:
        """Top-k matches of a star query (procedures stark / stard)."""
        matcher = self._star_matcher()
        cache, hits0, misses0 = self._cache_marks()
        try:
            return matcher.search(star, k, budget=budget)
        finally:
            self.last_report = matcher.last_report
            counters = getattr(matcher, "stats", None)
            if counters is not None:  # stark / hybrid: SearchStats counters
                stats = obs.EngineStats(
                    algorithm=("hybrid" if isinstance(
                        matcher, HybridStarSearch) else "stark"),
                    **{name: getattr(counters, name)
                       for name in counters.__slots__},
                )
            else:  # stard: lazy-evaluation / propagation counters (its
                # d=1 delegate accumulates the stark-side counters)
                inner = matcher._stark.stats
                stats = obs.EngineStats(
                    algorithm="stard",
                    pivots_considered=inner.pivots_considered,
                    pivots_evaluated=(
                        matcher.pivots_evaluated or inner.pivots_evaluated
                    ),
                    pivots_with_match=(
                        matcher.pivots_with_match or inner.pivots_with_match
                    ),
                    pivots_sketch_pruned=inner.pivots_sketch_pruned,
                    matches_emitted=(
                        matcher.matches_emitted or inner.matches_emitted
                    ),
                    lattice_pops=inner.lattice_pops,
                    nodes_traversed=inner.nodes_traversed,
                    messages_propagated=matcher.messages_propagated,
                )
            self._finish_stats(stats, cache, hits0, misses0)

    def search(
        self,
        query: Union[Query, StarQuery],
        k: int,
        decomposition: Optional[Decomposition] = None,
        budget: Optional[Budget] = None,
    ) -> List[Match]:
        """Top-k matches of *query* (any shape).

        Star-shaped queries skip decomposition entirely; general queries
        are decomposed (unless a prebuilt *decomposition* is supplied) and
        rank-joined.

        Under a non-static :attr:`plan_mode`, a
        :class:`repro.plan.QueryPlanner` first chooses performance knobs
        (star procedure, index routing, decomposition method, alpha) for
        this query; explicitly pinned constructor knobs are never
        overridden, and the guardrail falls back to the static defaults
        whenever the model is cold or its predicted gain is within
        noise.  Planned searches return the same rankings as static ones
        -- every knob the planner may touch is result-preserving.

        With a :class:`Budget` the search runs under the runtime
        contract: a strict-mode trip raises (partial
        :class:`SearchReport` attached to the exception); an anytime trip
        returns the flagged best-so-far top-k, described by
        :attr:`last_report`.

        Raises:
            SearchError: for non-positive k.
            QueryError / DecompositionError: for invalid queries.
            SearchTimeoutError / BudgetExceededError: on a strict-mode
                budget trip.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        planner = self.planner
        if planner is None:
            self.last_plan = None
            return self._search_impl(query, k, decomposition, budget)
        decision = planner.plan(
            self, query, k, budget=budget,
            prebuilt_decomposition=decomposition is not None,
        )
        self.last_plan = decision
        restore = self._apply_decision(decision)
        scorer = self.scorer
        index = getattr(scorer, "graph_index", None)
        node_calls0 = scorer.node_score_calls
        edge_calls0 = scorer.edge_score_calls
        scanned0 = index.postings_scanned if index is not None else 0
        try:
            results = self._search_impl(query, k, decomposition, budget)
        finally:
            for obj, attr, value in reversed(restore):
                setattr(obj, attr, value)
        planner.observe(
            decision, self.last_engine_stats,
            node_score_calls=scorer.node_score_calls - node_calls0,
            edge_score_calls=scorer.edge_score_calls - edge_calls0,
            postings_scanned=(
                index.postings_scanned - scanned0 if index is not None else 0
            ),
        )
        return results

    def _apply_decision(self, decision) -> List[tuple]:
        """Apply a plan decision's knob overrides; return restore ops."""
        restore: List[tuple] = []
        overrides = getattr(decision, "overrides", None) or {}
        for attr in ("alpha", "decomposition_method", "candidate_limit"):
            if attr in overrides:
                restore.append((self, attr, getattr(self, attr)))
                setattr(self, attr, overrides[attr])
        if "algorithm" in overrides:
            restore.append(
                (self, "_algorithm_override", self._algorithm_override)
            )
            self._algorithm_override = overrides["algorithm"]
        if "index_mode" in overrides:
            index = getattr(self.scorer, "graph_index", None)
            if index is not None:
                restore.append((index, "mode", index.mode))
                index.mode = overrides["index_mode"]
        return restore

    def _search_impl(
        self,
        query: Union[Query, StarQuery],
        k: int,
        decomposition: Optional[Decomposition] = None,
        budget: Optional[Budget] = None,
    ) -> List[Match]:
        """The static search body (planner overrides already applied)."""
        if isinstance(query, StarQuery):
            return self.search_star(query, k, budget=budget)
        query.validate()
        if decomposition is None and query.is_star():
            self.last_decomposition = None
            self.last_join = None
            return self.search_star(
                StarQuery.from_query(query), k, budget=budget
            )
        if decomposition is None:
            with obs.trace("framework.decompose",
                           method=self.decomposition_method):
                decomposition = decompose(
                    query,
                    method=self.decomposition_method,
                    scorer=self.scorer,
                    lam=self.lam,
                )
        self.last_decomposition = decomposition
        join = StarJoin(
            self.scorer, d=self.d, alpha=self.alpha,
            injective=self.injective, candidate_limit=self.candidate_limit,
            directed=self.directed,
        )
        self.last_join = join
        cache, hits0, misses0 = self._cache_marks()
        try:
            with obs.trace("starjoin.join",
                           stars=len(decomposition.stars), k=k):
                return join.join(decomposition, k, budget=budget)
        finally:
            self.last_report = join.last_report
            self._finish_stats(
                obs.EngineStats(
                    algorithm="starjoin",
                    joins_attempted=join.last_joins_attempted,
                    join_depth=sum(join.last_depths),
                ),
                cache, hits0, misses0,
            )

    # ------------------------------------------------------------------
    @property
    def total_depth(self) -> Optional[int]:
        """Search depth ``D`` of the last general-query search, if any."""
        return self.last_join.total_depth if self.last_join else None
