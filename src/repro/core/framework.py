"""Framework STAR (Fig. 4): the end-to-end top-k query engine.

Ties the pieces together: star queries go straight to ``stark`` (d = 1) or
``stard`` (d >= 2); general queries are decomposed (Section VI-B) and the
star match streams are rank-joined by ``starjoin`` with the alpha-scheme.
This is the class a library user instantiates::

    from repro import Star
    engine = Star(graph)                      # default scoring
    matches = engine.search(query, k=10)      # top-10, any query shape
"""

from __future__ import annotations

from typing import List, Optional, Union

from repro import obs
from repro.core.matches import Match
from repro.core.stard import StarDSearch
from repro.core.stark import StarKSearch
from repro.core.starjoin import StarJoin
from repro.errors import SearchError
from repro.graph.knowledge_graph import KnowledgeGraph
from repro.query.decomposition import Decomposition, decompose
from repro.query.model import Query, StarQuery
from repro.runtime.budget import Budget, SearchReport
from repro.similarity.scoring import ScoringConfig, ScoringFunction


class Star:
    """The STAR top-k knowledge-graph search engine.

    Args:
        graph: the data graph.
        scorer: a shared :class:`ScoringFunction`; built from *config* (or
            defaults) when omitted.
        config: scoring configuration used when *scorer* is omitted.
        d: search bound -- a query edge may match a path of length <= d.
        alpha: alpha-scheme split for rank joins.
        decomposition_method: one of ``rand / maxdeg / simsize / simtop /
            simdec`` (Section VI-B).
        lam: Eq. 5's lambda trade-off for the optimized decompositions.
        injective: enforce one-to-one matching.
        candidate_limit: optional candidate cutoff for large graphs.
        use_index: ``auto`` | ``on`` | ``off`` -- route candidate
            generation through an upper-bound-pruned
            :class:`repro.index.GraphIndex` (results are byte-identical
            to the linear scan).  ``auto`` (default) engages it only for
            calls with a candidate cutoff; ``off`` never builds one.  A
            scorer with an index already attached keeps it regardless.
        use_semantic: ``auto`` | ``on`` | ``off`` -- attach a
            :class:`repro.ann.SemanticTier` adding ANN-sourced,
            exactly-reranked candidates.  ``auto`` (default) engages
            only when the token shortlist yields zero admissible
            candidates (out-of-vocabulary queries), leaving
            in-vocabulary searches byte-identical to the seed; ``on``
            augments every non-wildcard candidate call; ``off`` never
            attaches.  A scorer with a tier already attached keeps it
            regardless (so callers can pre-tune probe limits or time
            bounds via :func:`repro.ann.attach_semantic`).
    """

    def __init__(
        self,
        graph: KnowledgeGraph,
        scorer: Optional[ScoringFunction] = None,
        config: Optional[ScoringConfig] = None,
        d: int = 1,
        alpha: float = 0.5,
        decomposition_method: str = "simdec",
        lam: float = 1.0,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
        directed: bool = False,
        use_index: str = "auto",
        use_semantic: str = "auto",
    ) -> None:
        if d < 1:
            raise SearchError(f"search bound d must be >= 1, got {d}")
        if directed and d != 1:
            raise SearchError("directed matching is defined for d == 1 only")
        if not (0.0 <= alpha <= 1.0):
            raise SearchError(f"alpha={alpha} must be in [0, 1]")
        if use_index not in ("auto", "on", "off"):
            raise SearchError(
                f"use_index must be auto, on or off, got {use_index!r}"
            )
        if use_semantic not in ("auto", "on", "off"):
            raise SearchError(
                f"use_semantic must be auto, on or off, got {use_semantic!r}"
            )
        self.directed = directed
        self.graph = graph
        self.scorer = scorer or ScoringFunction(graph, config)
        self.use_index = use_index
        # ``auto`` only ever routes calls that carry a candidate cutoff,
        # so without one there is nothing to build; ``on`` always builds.
        wants_index = use_index == "on" or (
            use_index == "auto" and candidate_limit is not None
        )
        if wants_index and getattr(
                self.scorer, "graph_index", None) is None:
            from repro.index import attach_index

            attach_index(self.scorer, mode=use_index)
        self.use_semantic = use_semantic
        # The tier itself is lazy (the graph embeds on first engagement),
        # so attaching under ``auto``/``on`` costs nothing until a query
        # actually under-fills the token shortlist.
        if use_semantic != "off" and getattr(
                self.scorer, "semantic_tier", None) is None:
            from repro.ann import attach_semantic

            attach_semantic(self.scorer, mode=use_semantic)
        self.d = d
        self.alpha = alpha
        self.decomposition_method = decomposition_method
        self.lam = lam
        self.injective = injective
        self.candidate_limit = candidate_limit
        self.last_decomposition: Optional[Decomposition] = None
        self.last_join: Optional[StarJoin] = None
        self.last_report: Optional[SearchReport] = None
        #: Unified counter snapshot of the last search under the
        #: :class:`repro.obs.EngineStats` schema -- the *same keys* for
        #: stark, stard and rank-joined general queries (irrelevant
        #: counters stay zero).  The batch API (``repro.perf.search_many``)
        #: merges these across queries by addition.  None before the
        #: first search.
        self.last_stats: Optional[dict] = None
        #: The typed form of :attr:`last_stats` (carries ``algorithm``).
        self.last_engine_stats: Optional[obs.EngineStats] = None

    # ------------------------------------------------------------------
    def _star_matcher(self):
        if self.d == 1:
            return StarKSearch(
                self.scorer, injective=self.injective,
                candidate_limit=self.candidate_limit,
                directed=self.directed,
            )
        return StarDSearch(
            self.scorer, d=self.d, injective=self.injective,
            candidate_limit=self.candidate_limit,
        )

    def _cache_marks(self):
        cache = self.scorer.candidate_cache
        if cache is None:
            return None, 0, 0
        return cache, cache.stats.hits, cache.stats.misses

    def _finish_stats(self, stats: obs.EngineStats, cache, hits0: int,
                      misses0: int) -> None:
        """Publish one search's counters under the unified schema."""
        if cache is not None:
            stats.cache_hits = cache.stats.hits - hits0
            stats.cache_misses = cache.stats.misses - misses0
        self.last_engine_stats = stats
        self.last_stats = stats.as_dict()

    def search_star(
        self, star: StarQuery, k: int, budget: Optional[Budget] = None
    ) -> List[Match]:
        """Top-k matches of a star query (procedures stark / stard)."""
        matcher = self._star_matcher()
        cache, hits0, misses0 = self._cache_marks()
        try:
            return matcher.search(star, k, budget=budget)
        finally:
            self.last_report = matcher.last_report
            counters = getattr(matcher, "stats", None)
            if counters is not None:  # stark: SearchStats counters
                stats = obs.EngineStats(
                    algorithm="stark",
                    **{name: getattr(counters, name)
                       for name in counters.__slots__},
                )
            else:  # stard: lazy-evaluation / propagation counters (its
                # d=1 delegate accumulates the stark-side counters)
                inner = matcher._stark.stats
                stats = obs.EngineStats(
                    algorithm="stard",
                    pivots_considered=inner.pivots_considered,
                    pivots_evaluated=(
                        matcher.pivots_evaluated or inner.pivots_evaluated
                    ),
                    pivots_with_match=(
                        matcher.pivots_with_match or inner.pivots_with_match
                    ),
                    pivots_sketch_pruned=inner.pivots_sketch_pruned,
                    matches_emitted=(
                        matcher.matches_emitted or inner.matches_emitted
                    ),
                    lattice_pops=inner.lattice_pops,
                    messages_propagated=matcher.messages_propagated,
                )
            self._finish_stats(stats, cache, hits0, misses0)

    def search(
        self,
        query: Union[Query, StarQuery],
        k: int,
        decomposition: Optional[Decomposition] = None,
        budget: Optional[Budget] = None,
    ) -> List[Match]:
        """Top-k matches of *query* (any shape).

        Star-shaped queries skip decomposition entirely; general queries
        are decomposed (unless a prebuilt *decomposition* is supplied) and
        rank-joined.

        With a :class:`Budget` the search runs under the runtime
        contract: a strict-mode trip raises (partial
        :class:`SearchReport` attached to the exception); an anytime trip
        returns the flagged best-so-far top-k, described by
        :attr:`last_report`.

        Raises:
            SearchError: for non-positive k.
            QueryError / DecompositionError: for invalid queries.
            SearchTimeoutError / BudgetExceededError: on a strict-mode
                budget trip.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        if isinstance(query, StarQuery):
            return self.search_star(query, k, budget=budget)
        query.validate()
        if decomposition is None and query.is_star():
            self.last_decomposition = None
            self.last_join = None
            return self.search_star(
                StarQuery.from_query(query), k, budget=budget
            )
        if decomposition is None:
            with obs.trace("framework.decompose",
                           method=self.decomposition_method):
                decomposition = decompose(
                    query,
                    method=self.decomposition_method,
                    scorer=self.scorer,
                    lam=self.lam,
                )
        self.last_decomposition = decomposition
        join = StarJoin(
            self.scorer, d=self.d, alpha=self.alpha,
            injective=self.injective, candidate_limit=self.candidate_limit,
            directed=self.directed,
        )
        self.last_join = join
        cache, hits0, misses0 = self._cache_marks()
        try:
            with obs.trace("starjoin.join",
                           stars=len(decomposition.stars), k=k):
                return join.join(decomposition, k, budget=budget)
        finally:
            self.last_report = join.last_report
            self._finish_stats(
                obs.EngineStats(
                    algorithm="starjoin",
                    joins_attempted=join.last_joins_attempted,
                    join_depth=sum(join.last_depths),
                ),
                cache, hits0, misses0,
            )

    # ------------------------------------------------------------------
    @property
    def total_depth(self) -> Optional[int]:
        """Search depth ``D`` of the last general-query search, if any."""
        return self.last_join.total_depth if self.last_join else None
