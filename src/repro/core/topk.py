"""Selection utilities: Lemma 2 and Proposition 3 of the paper.

* Lemma 2: top-k of an unsorted list in O(n) (O(n + k log k) sorted) --
  :func:`top_k` / :func:`top_k_sorted` wrap ``heapq`` which achieves the
  same bounds for constant k.
* Proposition 3: given ``s`` unsorted lists and the sum aggregation, a set
  ``L~`` of at most ``k + s - 1`` numbers from the union suffices to form
  the top-k sums; it is found in O(sm).  :func:`prop3_prune` constructs the
  per-list keep-sets, which lets ``stark`` retain only ``k + s - 1``
  leaf-candidate entries instead of sorting whole neighbor lists.

The pruning is valid when list entries combine independently -- i.e. the
non-injective matching model the paper analyzes.  Under injective matching
a pruned entry may be needed as a collision replacement, so ``stark``
enables it only when ``injective=False`` (see DESIGN.md Section 4);
:func:`prop3_margin` adds slack for callers that want both.
"""

from __future__ import annotations

import heapq
from typing import Iterable, List, Sequence, Tuple, TypeVar

T = TypeVar("T")


def top_k(values: Iterable[float], k: int) -> List[float]:
    """Top *k* values, unsorted order (Lemma 2's O(n) selection)."""
    if k <= 0:
        return []
    return heapq.nlargest(k, values)


def top_k_sorted(values: Iterable[float], k: int) -> List[float]:
    """Top *k* values in decreasing order (Lemma 2's O(n + k log k))."""
    return sorted(top_k(values, k), reverse=True)


def top_k_items(
    items: Iterable[Tuple[float, T]], k: int
) -> List[Tuple[float, T]]:
    """Top *k* (score, payload) pairs by score, decreasing.

    Ties are broken arbitrarily but deterministically (payload comparison
    is never attempted: a sequence index disambiguates).
    """
    if k <= 0:
        return []
    decorated = (
        (score, idx, payload) for idx, (score, payload) in enumerate(items)
    )
    best = heapq.nlargest(k, decorated, key=lambda t: (t[0], -t[1]))
    return [(score, payload) for score, _idx, payload in best]


def prop3_keep_sets(
    lists: Sequence[Sequence[float]], k: int
) -> List[List[int]]:
    """Proposition 3: indices to keep per list.

    Args:
        lists: ``s`` unsorted numeric lists (each non-empty).
        k: how many top sums are needed.

    Returns:
        Per-list index lists whose union has size <= k + s - 1 and is
        guaranteed to contain every entry participating in a top-k sum of
        ``F = sum_i x_i`` with one ``x_i`` from each list.

    The construction follows the paper's proof: keep each list's maximum,
    then the k - 1 entries with the largest value of ``x - x_i_max``
    (their deficit to their own list's maximum) across the union.

    An *empty* list gets an empty keep-set: no sum ``F`` with one term
    per list exists, so there is nothing to keep anywhere -- but the
    per-list structure is preserved so callers can report "no match"
    for the position instead of crashing (``max()`` over an empty list
    used to raise ``ValueError`` here).
    """
    if k <= 0 or not lists:
        return [[] for _ in lists]
    if any(not values for values in lists):
        return [[] for _ in lists]
    keep: List[List[int]] = []
    max_index: List[int] = []
    for values in lists:
        mi = max(range(len(values)), key=values.__getitem__)
        max_index.append(mi)
        keep.append([mi])
    # Deficit-ranked pool over all non-max entries.
    pool: List[Tuple[float, int, int]] = []  # (deficit, list_idx, value_idx)
    for li, values in enumerate(lists):
        x_max = values[max_index[li]]
        for vi, x in enumerate(values):
            if vi != max_index[li]:
                pool.append((x - x_max, li, vi))
    for _deficit, li, vi in heapq.nlargest(k - 1, pool, key=lambda t: t[0]):
        keep[li].append(vi)
    return keep


def prop3_prune(
    lists: Sequence[Sequence[Tuple[float, T]]], k: int, margin: int = 0
) -> List[List[Tuple[float, T]]]:
    """Prune scored lists per Proposition 3, returning sorted keep-lists.

    Args:
        lists: per-position ``[(score, payload), ...]`` lists.
        k: top-k target.
        margin: keep this many extra entries (collision slack for
            injective matching; see module docstring).

    Returns:
        Per-position lists sorted by decreasing score, jointly containing
        at most ``(k + margin) + s - 1`` entries.
    """
    score_lists = [[score for score, _p in entries] for entries in lists]
    keep_sets = prop3_keep_sets(score_lists, k + margin)
    pruned: List[List[Tuple[float, T]]] = []
    for entries, keep in zip(lists, keep_sets):
        kept = [entries[i] for i in sorted(set(keep))]
        kept.sort(key=lambda t: -t[0])
        pruned.append(kept)
    return pruned


def kth_largest_sum_bound(lists: Sequence[Sequence[float]], k: int) -> float:
    """Exact k-th largest value of ``F = sum_i x_i`` for small inputs.

    Brute-force reference used by tests to validate Proposition 3.

    Raises:
        ValueError: if ``k <= 0`` (``k - 1`` would index ``sums[-1]``
            and silently return the *smallest* sum) or if any list is
            empty (no sums exist).
    """
    import itertools

    if k <= 0:
        raise ValueError(f"k must be >= 1, got {k}")
    sums = sorted(
        (sum(combo) for combo in itertools.product(*lists)), reverse=True
    )
    if not sums:
        raise ValueError("no sums exist: at least one input list is empty")
    return sums[min(k, len(sums)) - 1]
