"""Offline parameter tuning for ``alpha`` and ``lambda`` (Section VI-C).

"Suppose we have a sample query workload W.  Our top-k join algorithm is
assumed as a black-box A with three input alpha, lambda and W.  The output
of A is the aggregated total depth D for the queries in W.  Let alpha in
[0, 1.0] and lambda in [0, 2.0].  By iteratively running A and setting a
small constant, e.g., 0.1, as the adjustment step ... we can derive an
optimal setting of alpha and lambda that minimizes D."

:func:`tune_parameters` is exactly that grid search; the benchmark
``bench_fig14_alpha`` uses a single-axis version to regenerate Fig. 14(a).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.starjoin import StarJoin
from repro.errors import DecompositionError, SearchError
from repro.query.decomposition import METHODS, decompose
from repro.query.model import Query
from repro.similarity.scoring import ScoringFunction


@dataclass(frozen=True)
class TuningResult:
    """Outcome of the grid search.

    Attributes:
        alpha: best alpha found.
        lam: best lambda found.
        total_depth: aggregated depth ``D`` at the optimum.
        grid: full search surface ``{(alpha, lam): D}`` for inspection.
    """

    alpha: float
    lam: float
    total_depth: int
    grid: Dict[Tuple[float, float], int]


def aggregate_depth(
    scorer: ScoringFunction,
    workload: Sequence[Query],
    alpha: float,
    lam: float,
    k: int = 10,
    method: str = "simdec",
    d: int = 1,
    candidate_limit: Optional[int] = None,
) -> int:
    """Total search depth ``D`` of *workload* under one (alpha, lambda)."""
    if method not in METHODS:
        # Fail before any search work: otherwise a typo'd method only
        # surfaces once the first query reaches decompose.
        raise DecompositionError(
            f"unknown decomposition method {method!r}; choose from {METHODS}"
        )
    total = 0
    for query in workload:
        decomposition = decompose(query, method=method, scorer=scorer, lam=lam)
        join = StarJoin(
            scorer, d=d, alpha=alpha, candidate_limit=candidate_limit
        )
        join.join(decomposition, k)
        total += join.total_depth
    return total


def tune_parameters(
    scorer: ScoringFunction,
    workload: Sequence[Query],
    k: int = 10,
    method: str = "simdec",
    d: int = 1,
    alphas: Optional[Sequence[float]] = None,
    lams: Optional[Sequence[float]] = None,
    candidate_limit: Optional[int] = None,
) -> TuningResult:
    """Grid-search (alpha, lambda) minimizing the aggregated depth D.

    Defaults follow the paper: alpha in 0..1 and lambda in 0..2, step 0.1.

    Raises:
        SearchError: on an empty workload or empty grids.
        DecompositionError: for an unknown *method* name (checked before
            any search work starts).
    """
    if method not in METHODS:
        raise DecompositionError(
            f"unknown decomposition method {method!r}; choose from {METHODS}"
        )
    if not workload:
        raise SearchError("tuning requires a non-empty workload")
    alphas = list(alphas) if alphas is not None else [
        round(0.1 * i, 1) for i in range(11)
    ]
    lams = list(lams) if lams is not None else [
        round(0.1 * i, 1) for i in range(21)
    ]
    if not alphas or not lams:
        raise SearchError("tuning grids must be non-empty")
    grid: Dict[Tuple[float, float], int] = {}
    best: Optional[Tuple[int, float, float]] = None
    for lam in lams:
        for alpha in alphas:
            depth = aggregate_depth(
                scorer, workload, alpha, lam, k=k, method=method, d=d,
                candidate_limit=candidate_limit,
            )
            grid[(alpha, lam)] = depth
            if best is None or depth < best[0]:
                best = (depth, alpha, lam)
    assert best is not None
    return TuningResult(alpha=best[1], lam=best[2], total_depth=best[0], grid=grid)
