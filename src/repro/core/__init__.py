"""Core STAR algorithms.

* :class:`StarKSearch` -- procedure ``stark`` (Section V-A).
* :class:`StarDSearch` -- procedure ``stard`` (Section V-B).
* :class:`StarJoin` -- procedure ``starjoin`` + alpha-scheme (Section VI-A).
* :class:`Star` -- the full framework (Fig. 4).
* :class:`HybridStarSearch` -- the Section V-C alternative.
* :func:`tune_parameters` -- Section VI-C's offline grid search.
"""

from repro.core.candidates import node_candidates, shortlist
from repro.core.framework import Star
from repro.core.hybrid import HybridStarSearch
from repro.core.lattice import LeafEntry, PivotMatchGenerator, make_leaf_list
from repro.core.matches import (
    Match,
    distinct_by,
    is_monotone_non_increasing,
    scores_of,
)
from repro.core.stard import StarDSearch
from repro.core.stark import StarKSearch, bounded_leaf_provider
from repro.core.starjoin import StarJoin, alpha_weights
from repro.core.topk import (
    kth_largest_sum_bound,
    prop3_keep_sets,
    prop3_prune,
    top_k,
    top_k_items,
    top_k_sorted,
)
from repro.core.tuning import TuningResult, aggregate_depth, tune_parameters
from repro.core.vertex_centric import (
    PregelEngine,
    StardPropagation,
    VertexProgram,
    propagate_vertex_centric,
)

__all__ = [
    "HybridStarSearch",
    "LeafEntry",
    "Match",
    "PregelEngine",
    "PivotMatchGenerator",
    "Star",
    "StarDSearch",
    "StarJoin",
    "StarKSearch",
    "StardPropagation",
    "TuningResult",
    "VertexProgram",
    "aggregate_depth",
    "alpha_weights",
    "bounded_leaf_provider",
    "distinct_by",
    "is_monotone_non_increasing",
    "kth_largest_sum_bound",
    "make_leaf_list",
    "node_candidates",
    "prop3_keep_sets",
    "prop3_prune",
    "propagate_vertex_centric",
    "scores_of",
    "shortlist",
    "top_k",
    "top_k_items",
    "top_k_sorted",
    "tune_parameters",
]
