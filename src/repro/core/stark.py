"""Procedure ``stark``: exact top-k search for star queries (Section V-A).

Steps (Fig. 5):

1. identify candidate pivot matches online (scored + thresholded);
2. find the top-1 match pivoted at each candidate by scanning its
   neighbors and assembling the best leaf assignments;
3. keep the matches in a priority queue; repeatedly pop the global best,
   emit it, and generate the next-best match for that pivot via the
   cursor lattice (:mod:`repro.core.lattice`).

The stream of emitted matches is monotone non-increasing in score -- the
property ``starjoin`` relies on (Section VI).  Proposition 3 pruning is
applied to the leaf lists in the non-injective matching model (see
:mod:`repro.core.topk`).

Leaf node scores can be *weighted* (the alpha-scheme of Section VI-A):
``node_weights`` maps query-node ids to multipliers applied to their
``F_N`` contribution; thresholds always apply to raw scores.
"""

from __future__ import annotations

import heapq
import time
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro import obs
from repro.core.candidates import node_candidates, shortlist
from repro.core.lattice import LeafEntry, PivotMatchGenerator, make_leaf_list
from repro.core.matches import Match
from repro.core.topk import prop3_prune
from repro.errors import BudgetExceededError, SearchError
from repro.query.model import StarQuery
from repro.runtime.budget import Budget, SearchReport
from repro.runtime.faults import SUBSTRATE_ERRORS
from repro.similarity.scoring import ScoringFunction

#: Type of a per-pivot leaf-candidate provider: given the pivot data node,
#: return one raw-entry list per leaf position.
LeafProvider = Callable[[int], List[List[Tuple[float, int, float, float, int]]]]

#: After an anytime budget trips mid-scan, keep trying pivots (sorted by
#: score, so the most promising come first) until one match exists or this
#: many have been attempted -- the anytime minimum-progress guarantee.
_MIN_PIVOTS_AFTER_TRIP = 8

#: Scoring calls the last-resort rescue pass may spend.  Index-only
#: viability checks are free; this caps the expensive part so the rescue
#: adds a bounded, small latency on top of an already-tripped deadline.
_RESCUE_WORK_CAP = 400


class SearchStats:
    """Counters a search run exposes for the evaluation harness.

    ``repro.core.framework`` re-publishes these under the unified
    :class:`repro.obs.EngineStats` schema; the names match field-for-field.
    """

    __slots__ = ("pivots_considered", "pivots_evaluated", "pivots_with_match",
                 "matches_emitted", "lattice_pops", "pivots_sketch_pruned",
                 "nodes_traversed")

    def __init__(self) -> None:
        self.pivots_considered = 0
        self.pivots_evaluated = 0
        self.pivots_with_match = 0
        self.matches_emitted = 0
        self.lattice_pops = 0
        self.pivots_sketch_pruned = 0
        self.nodes_traversed = 0


class StarKSearch:
    """The ``stark`` procedure bound to a graph + scoring function.

    Args:
        scorer: shared :class:`ScoringFunction`.
        injective: enforce one-to-one matching (DESIGN.md Section 4).
        candidate_limit: optional pivot-candidate cutoff (Section V-A's
            "cutoff threshold ... to retain a few candidate nodes").
        prop3: apply Proposition 3 pruning to leaf lists when safe
            (non-injective mode); None = auto (on iff not injective).
        d: search bound; for ``d >= 2`` every pivot candidate pays an
            eager d-hop traversal, which is exactly the expensive regime
            Exp-1 shows ``stard`` avoiding (Section V-B's motivation).
        sketch: a prebuilt :class:`repro.graph.sketch.NeighborhoodSketch`,
            or True to build one -- prunes pivots whose neighborhood
            provably contains no candidate for some leaf ([2]'s graph
            sketch accelerator; only consulted at d = 1, where leaf
            matches must be direct neighbors).  Results never change.
        directed: enforce query-edge orientation (RDF/SPARQL-style);
            requires ``d == 1`` (see ``edge_match``).
        pivot_scope: optional node-id set the pivot may match within --
            the sharded execution layer's ownership restriction.  Without
            a ``candidate_limit`` the scope is pushed into candidate
            generation; with one, candidates are generated globally (so
            the cutoff keeps its global meaning) and filtered afterwards.
        leaf_scope: optional node-id set leaves may match within.  For a
            shard this is the *halo* -- owned nodes plus everything
            within d hops of them -- so every match pivoted at an owned
            node sees exactly the leaf candidates the unscoped run would.
    """

    def __init__(
        self,
        scorer: ScoringFunction,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
        prop3: Optional[bool] = None,
        d: int = 1,
        sketch=None,
        directed: bool = False,
        pivot_scope: Optional[AbstractSet[int]] = None,
        leaf_scope: Optional[AbstractSet[int]] = None,
    ) -> None:
        if d < 1:
            raise SearchError(f"search bound d must be >= 1, got {d}")
        if directed and d != 1:
            raise SearchError("directed matching is defined for d == 1 only")
        self.scorer = scorer
        self.graph = scorer.graph
        self.injective = injective
        self.candidate_limit = candidate_limit
        self.prop3 = (not injective) if prop3 is None else prop3
        self.d = d
        self.directed = directed
        if sketch is True:
            from repro.graph.sketch import NeighborhoodSketch

            sketch = NeighborhoodSketch(scorer.graph)
        self.sketch = sketch
        self.pivot_scope = pivot_scope
        self.leaf_scope = leaf_scope
        self.stats = SearchStats()
        self.last_report: Optional[SearchReport] = None

    # ------------------------------------------------------------------
    def _pivot_candidates(
        self, star: StarQuery, budget: Optional[Budget] = None
    ) -> List[Tuple[int, float]]:
        """Scored pivot candidates, honoring the optional pivot scope.

        With a ``candidate_limit`` the cutoff is applied over the
        *global* candidate list first and the scope filter second, so a
        scoped run selects exactly the owned slice of the global
        truncation (shard parity with single-shard execution).
        """
        scope = self.pivot_scope
        if scope is not None and self.candidate_limit is None:
            return node_candidates(
                self.scorer, star.pivot, budget=budget, scope=scope
            )
        cands = node_candidates(
            self.scorer, star.pivot, limit=self.candidate_limit,
            budget=budget,
        )
        if scope is not None:
            cands = [(n, s) for n, s in cands if n in scope]
        return cands

    # ------------------------------------------------------------------
    # Leaf candidate collection (d = 1: direct neighbors)
    # ------------------------------------------------------------------
    def _leaf_provider(
        self,
        star: StarQuery,
        node_weights: Mapping[int, float],
        leaf_maps: Optional[List[Dict[int, float]]] = None,
        budget: Optional[Budget] = None,
    ) -> LeafProvider:
        if leaf_maps is None:
            leaf_maps = leaf_candidate_maps(
                self.scorer, star, budget=budget, scope=self.leaf_scope
            )
        if self.d > 1:
            return bounded_leaf_provider(
                self.scorer, star, node_weights, self.d, self.injective,
                leaf_maps=leaf_maps, traversal_stats=self.stats,
            )
        scorer = self.scorer
        graph = self.graph
        edge_threshold = scorer.config.edge_threshold
        index = getattr(scorer, "graph_index", None)
        if index is not None and index.mode == "off":
            index = None
        # Per-leaf direction: +1 = edge points pivot -> leaf, -1 = leaf ->
        # pivot, 0 = orientation ignored (undirected matching).
        leaf_info = [
            (
                leaf_scores,
                edge.descriptor,
                node_weights.get(leaf.id, 1.0),
                (0 if not self.directed
                 else (1 if edge.src == star.pivot.id else -1)),
            )
            for (leaf, edge), leaf_scores in zip(star.leaves, leaf_maps)
        ]

        def provide(pivot_node: int) -> List[List[Tuple[float, int, float, float, int]]]:
            # Group parallel edges per orientation: nbr -> relation labels.
            if index is not None and index.synced():
                # Packed CSR row; entries in graph.neighbors() order, so
                # the maps match the live-graph path byte-for-byte.
                grouped, out_grouped, in_grouped = (
                    index.csr.grouped_relations(
                        graph, pivot_node, self.directed
                    )
                )
                if self.injective:
                    grouped.pop(pivot_node, None)
            else:
                grouped = {}
                out_grouped = {}
                in_grouped = {}
                for nbr, eid in graph.neighbors(pivot_node):
                    if self.injective and nbr == pivot_node:
                        continue
                    grouped.setdefault(nbr, []).append(
                        graph.edge(eid)[2].relation
                    )
                if self.directed:
                    for nbr, eid in graph.out_neighbors(pivot_node):
                        out_grouped.setdefault(nbr, []).append(
                            graph.edge(eid)[2].relation
                        )
                    for nbr, eid in graph.in_neighbors(pivot_node):
                        in_grouped.setdefault(nbr, []).append(
                            graph.edge(eid)[2].relation
                        )
            lists: List[List[Tuple[float, int, float, float, int]]] = []
            for leaf_scores, edge_desc, weight, orientation in leaf_info:
                if orientation == 1:
                    pool = out_grouped
                elif orientation == -1:
                    pool = in_grouped
                else:
                    pool = grouped
                entries: List[Tuple[float, int, float, float, int]] = []
                for nbr, relations in pool.items():
                    node_score = leaf_scores.get(nbr)
                    if node_score is None:
                        continue
                    edge_score = max(
                        scorer.relation_score(edge_desc, rel) for rel in relations
                    )
                    if edge_score < edge_threshold:
                        continue
                    combined = weight * node_score + edge_score
                    entries.append((combined, nbr, node_score, edge_score, 1))
                lists.append(entries)
            return lists

        return provide

    # ------------------------------------------------------------------
    def _anytime_rescue(
        self,
        star: StarQuery,
        node_weights: Mapping[int, float],
        pivot_cands: List[Tuple[int, float]],
        prune_k: Optional[int],
        budget: Budget,
    ) -> Optional[Tuple[Match, "PivotMatchGenerator"]]:
        """Last-resort anytime progress when a trip left the queue empty.

        Truncated shortlists can miss every viable pivot, so no generator
        could be built from the global maps.  This pass walks the *full*
        pivot index shortlist (already-scored candidates first, best
        score first), filters pivots by an index-only viability check --
        every leaf position must have at least one d-hop neighbor in that
        leaf's index shortlist, no scoring involved -- and only then
        scores the pivot and its neighborhood directly (exact scoring,
        same thresholds) to assemble one genuine best-so-far match.
        Deliberately ignores the (already-tripped) budget; scoring calls
        are capped at ``_RESCUE_WORK_CAP`` instead.
        """
        from repro.graph.traversal import bounded_bfs_layers

        scorer = self.scorer
        graph = self.graph
        threshold = scorer.config.node_threshold
        pivot_desc = star.pivot.descriptor

        # Index-only candidate sets per distinct leaf constraint (keyed by
        # the canonical pre-hashed descriptor key).
        by_key_set: Dict[object, Set[int]] = {}
        leaf_sets: List[Set[int]] = []
        for leaf, _edge in star.leaves:
            key = leaf.descriptor.cache_key
            cands = by_key_set.get(key)
            if cands is None:
                cands = shortlist(scorer, leaf)
                by_key_set[key] = cands
            leaf_sets.append(cands)
        distinct_sets = list(by_key_set.values())

        # A few best already-scored pivots first (free to score, highest
        # quality), then the raw index shortlist: the truncated scored
        # prefix may contain no viable pivot at all, so most of the work
        # cap is reserved for the full scan.
        scored = dict(pivot_cands)
        candidates = [n for n, _s in pivot_cands[:2 * _MIN_PIVOTS_AFTER_TRIP]]
        head = set(candidates)
        candidates.extend(
            n for n in shortlist(scorer, star.pivot) if n not in head
        )

        work = 0
        for pivot_node in candidates:
            if work >= _RESCUE_WORK_CAP:
                break
            if self.d == 1:
                nearby = {nbr for nbr, _eid in graph.neighbors(pivot_node)}
            else:
                layers = bounded_bfs_layers(graph, pivot_node, self.d)
                nearby = set()
                for layer in layers[1:]:
                    nearby.update(layer)
            if self.injective:
                nearby.discard(pivot_node)
            if not nearby:
                continue
            if not all(not nearby.isdisjoint(s) for s in distinct_sets):
                continue
            pivot_score = scored.get(pivot_node)
            if pivot_score is None:
                try:
                    pivot_score = scorer.node_score(pivot_desc, pivot_node)
                except SUBSTRATE_ERRORS as exc:
                    budget.record_fault(
                        f"rescue node_score({pivot_node}): {exc}"
                    )
                    continue
                work += 1
                if pivot_score < threshold:
                    continue
            by_key_map: Dict[object, Dict[int, float]] = {}
            starved = False
            for (leaf, _edge), cand_set in zip(star.leaves, leaf_sets):
                key = leaf.descriptor.cache_key
                cached = by_key_map.get(key)
                if cached is None:
                    cached = {}
                    desc = leaf.descriptor
                    for nbr in nearby:
                        if nbr not in cand_set:
                            continue
                        try:
                            score = scorer.node_score(desc, nbr)
                        except SUBSTRATE_ERRORS as exc:
                            budget.record_fault(
                                f"rescue node_score({nbr}): {exc}"
                            )
                            continue
                        work += 1
                        if score >= threshold:
                            cached[nbr] = score
                    by_key_map[key] = cached
                if not cached:
                    starved = True
                    break  # some leaf has no admissible neighbor: no match
            if starved:
                continue
            local_maps = [
                by_key_map[leaf.descriptor.cache_key]
                for leaf, _edge in star.leaves
            ]
            provider = self._leaf_provider(star, node_weights, leaf_maps=local_maps)
            try:
                gen = self.build_generator(
                    star, pivot_node, pivot_score, node_weights, provider,
                    prune_k,
                )
            except SUBSTRATE_ERRORS as exc:
                budget.record_fault(f"rescue pivot {pivot_node}: {exc}")
                continue
            if gen is None:
                continue
            first = gen.next_match()
            if first is not None:
                return first, gen
        return None

    # ------------------------------------------------------------------
    # Generator assembly (shared with stard's exact phase)
    # ------------------------------------------------------------------
    def build_generator(
        self,
        star: StarQuery,
        pivot_node: int,
        pivot_raw_score: float,
        node_weights: Mapping[int, float],
        leaf_provider: LeafProvider,
        prune_k: Optional[int] = None,
    ) -> Optional[PivotMatchGenerator]:
        """Build the lattice generator for one pivot; None if unmatchable."""
        raw_lists = leaf_provider(pivot_node)
        if any(not entries for entries in raw_lists):
            return None
        if self.prop3 and prune_k is not None:
            scored = [
                [(c, (c, n, ns, es, h)) for c, n, ns, es, h in entries]
                for entries in raw_lists
            ]
            pruned = prop3_prune(scored, prune_k)
            raw_lists = [[payload for _s, payload in entries] for entries in pruned]
        leaf_lists = [make_leaf_list(entries) for entries in raw_lists]
        pivot_weight = node_weights.get(star.pivot.id, 1.0)
        positions = [(leaf.id, edge.id) for leaf, edge in star.leaves]
        return PivotMatchGenerator(
            star.pivot.id,
            pivot_node,
            pivot_weight * pivot_raw_score,
            pivot_raw_score,
            positions,
            leaf_lists,
            injective=self.injective,
        )

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def stream(
        self,
        star: StarQuery,
        node_weights: Optional[Mapping[int, float]] = None,
        prune_k: Optional[int] = None,
        budget: Optional[Budget] = None,
    ) -> Iterator[Match]:
        """Yield matches of *star* in non-increasing score order.

        Lemma 1 realized as a lazy scheme: every candidate pivot
        contributes its top-1 match to a priority queue; popping the global
        best and replacing it with that pivot's next-best match yields the
        exact ranking.

        With an anytime *budget*, a trip stops scanning new pivots (after
        the minimum-progress floor) and the queue is drained as-is: the
        remaining emissions stay monotone non-increasing, but the stream
        is best-so-far rather than exact -- the caller's
        :class:`SearchReport` flags it.
        """
        weights = node_weights or {}
        stats = self.stats = SearchStats()
        budget_on = budget is not None
        anytime = budget_on and budget.anytime
        if anytime:
            try:
                with obs.trace("stark.candidates"):
                    pivot_cands = self._pivot_candidates(star, budget=budget)
                with obs.trace("stark.leaf_fetch", leaves=len(star.leaves)):
                    leaf_maps = leaf_candidate_maps(
                        self.scorer, star, budget=budget,
                        scope=self.leaf_scope,
                    )
            except SUBSTRATE_ERRORS as exc:
                budget.record_fault(f"stark candidate setup: {exc}")
                return
        else:
            with obs.trace("stark.candidates"):
                pivot_cands = self._pivot_candidates(star, budget=budget)
            with obs.trace("stark.leaf_fetch", leaves=len(star.leaves)):
                leaf_maps = leaf_candidate_maps(
                    self.scorer, star, budget=budget, scope=self.leaf_scope
                )
        stats.pivots_considered = len(pivot_cands)
        provider = self._leaf_provider(star, weights, leaf_maps)
        leaf_signatures = None
        if self.sketch is not None and self.d == 1:
            leaf_signatures = [
                self.sketch.candidate_signature(leaf_scores)
                for leaf_scores in leaf_maps
            ]

        queue: List[Tuple[float, int, Match, PivotMatchGenerator]] = []
        serial = 0
        tripped = False
        attempted = 0
        with obs.trace("stark.pivot_search",
                       pivots=len(pivot_cands)) as pivot_span:
            for pivot_node, pivot_score in pivot_cands:
                if budget_on and budget.charge_nodes() and (
                    queue or attempted >= _MIN_PIVOTS_AFTER_TRIP
                ):
                    tripped = True
                    break
                attempted += 1
                stats.pivots_evaluated += 1
                if leaf_signatures is not None and not self.sketch.pivot_may_match(
                    pivot_node, leaf_signatures
                ):
                    stats.pivots_sketch_pruned += 1
                    continue
                if anytime:
                    try:
                        gen = self.build_generator(
                            star, pivot_node, pivot_score, weights, provider,
                            prune_k,
                        )
                    except SUBSTRATE_ERRORS as exc:
                        budget.record_fault(f"pivot {pivot_node}: {exc}")
                        continue
                else:
                    gen = self.build_generator(
                        star, pivot_node, pivot_score, weights, provider, prune_k
                    )
                if gen is None:
                    continue
                first = gen.next_match()
                if first is None:
                    continue
                stats.pivots_with_match += 1
                heapq.heappush(queue, (-first.score, serial, first, gen))
                serial += 1
            pivot_span.annotate(evaluated=stats.pivots_evaluated,
                                with_match=stats.pivots_with_match)

        # The loop can end without setting the flag (candidates exhausted
        # before the floor); budget.check() is sticky, so ask it directly.
        if not tripped and anytime and budget.check():
            tripped = True
        if tripped and anytime and not queue:
            with obs.trace("stark.anytime_rescue"):
                rescued = self._anytime_rescue(
                    star, weights, pivot_cands, prune_k, budget
                )
            if rescued is not None:
                first, gen = rescued
                stats.pivots_with_match += 1
                heapq.heappush(queue, (-first.score, serial, first, gen))
                serial += 1

        while queue:
            if not tripped and budget_on and budget.check():
                tripped = True
            _neg, _serial, match, gen = heapq.heappop(queue)
            stats.matches_emitted += 1
            stats.lattice_pops += gen.pops
            gen.pops = 0
            yield match
            if tripped:
                continue  # drain: emit queued bests, generate nothing new
            # No span here: generators must not hold spans across yields.
            # Lattice expansion cost is aggregated into a histogram instead.
            if obs.is_enabled():
                t0 = time.perf_counter()
                nxt = gen.next_match()
                obs.observe("stark.lattice_next_ms",
                            (time.perf_counter() - t0) * 1000.0)
            else:
                nxt = gen.next_match()
            if nxt is not None:
                heapq.heappush(queue, (-nxt.score, serial, nxt, gen))
                serial += 1

    def search(
        self, star: StarQuery, k: int, budget: Optional[Budget] = None
    ) -> List[Match]:
        """Top-k matches of *star* in decreasing score order.

        With an anytime *budget*, returns the flagged best-so-far list on
        a trip; :attr:`last_report` describes the run either way.

        Raises:
            SearchError: for non-positive k.
            SearchTimeoutError / BudgetExceededError: on a strict-mode
                budget trip (the partial report rides on the exception).
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        results: List[Match] = []
        with obs.trace("stark.search", k=k, d=self.d):
            try:
                for match in self.stream(star, prune_k=k, budget=budget):
                    results.append(match)
                    if len(results) == k:
                        break
            except BudgetExceededError as exc:
                self.last_report = SearchReport.from_budget(
                    "stark", budget, len(results)
                )
                if exc.report is None:
                    exc.report = self.last_report
                raise
        self.last_report = SearchReport.from_budget("stark", budget, len(results))
        return results


def leaf_candidate_maps(
    scorer: ScoringFunction,
    star: StarQuery,
    budget: Optional[Budget] = None,
    scope: Optional[AbstractSet[int]] = None,
) -> List[Dict[int, float]]:
    """Admissible candidates (node -> ``F_N``) per leaf position.

    The *same* candidate definition every matcher uses (index shortlist +
    threshold, :func:`repro.core.candidates.node_candidates`), so stark,
    stard, graphTA, BP and the brute-force oracle agree on which node may
    match which leaf.  Leaves with identical constraints share one map.

    ``scope`` restricts the maps to a node subset (a shard's halo);
    because leaf maps carry no cutoff, the scoped map is exactly the
    unscoped map restricted to the scope.
    """
    by_constraint: Dict[object, Dict[int, float]] = {}
    maps: List[Dict[int, float]] = []
    for leaf, _edge in star.leaves:
        key = leaf.descriptor.cache_key
        cached = by_constraint.get(key)
        if cached is None:
            cached = dict(
                node_candidates(scorer, leaf, budget=budget, scope=scope)
            )
            by_constraint[key] = cached
        maps.append(cached)
    return maps


def bounded_leaf_provider(
    scorer: ScoringFunction,
    star: StarQuery,
    node_weights: Mapping[int, float],
    d: int,
    injective: bool,
    leaf_maps: Optional[List[Dict[int, float]]] = None,
    traversal_stats=None,
) -> LeafProvider:
    """Leaf candidates within *d* hops of a pivot (d-bounded matching).

    An edge matches the *shortest* qualifying path: a candidate ``w`` at
    BFS distance ``h`` scores relation-aware ``F_E`` at ``h == 1`` and the
    pure decay ``lambda^(h-1)`` otherwise (see
    :mod:`repro.similarity.path_score`).  Shared by ``stark`` with
    ``d >= 2`` (eager traversal per pivot) and by ``stard``'s exact
    per-pivot phase (lazy, estimate-ordered).
    """
    from repro.graph.traversal import bounded_bfs_layers

    graph = scorer.graph
    edge_threshold = scorer.config.edge_threshold
    if leaf_maps is None:
        leaf_maps = leaf_candidate_maps(scorer, star)
    leaf_info = [
        (leaf_scores, edge.descriptor, node_weights.get(leaf.id, 1.0))
        for (leaf, edge), leaf_scores in zip(star.leaves, leaf_maps)
    ]

    def provide(pivot_node: int) -> List[List[Tuple[float, int, float, float, int]]]:
        layers = bounded_bfs_layers(graph, pivot_node, d)
        if traversal_stats is not None:
            # The eager d-hop traversal is this path's dominant cost and
            # produces no scorer calls (leaf scores are map lookups), so
            # it must be accounted separately for cost attribution.
            traversal_stats.nodes_traversed += sum(
                len(layer) for layer in layers
            )
        direct_relations: Dict[int, List[str]] = {}
        for nbr, eid in graph.neighbors(pivot_node):
            direct_relations.setdefault(nbr, []).append(
                graph.edge(eid)[2].relation
            )
        lists: List[List[Tuple[float, int, float, float, int]]] = []
        for leaf_scores, edge_desc, weight in leaf_info:
            entries: List[Tuple[float, int, float, float, int]] = []
            for hops in range(1, d + 1):
                decay = scorer.path.decay(hops)
                for w in layers[hops]:
                    if injective and w == pivot_node:
                        continue  # pragma: no cover - BFS never revisits
                    node_score = leaf_scores.get(w)
                    if node_score is None:
                        continue
                    if hops == 1:
                        edge_score = max(
                            scorer.relation_score(edge_desc, rel)
                            for rel in direct_relations[w]
                        )
                    else:
                        edge_score = decay
                    if edge_score < edge_threshold:
                        continue
                    combined = weight * node_score + edge_score
                    entries.append((combined, w, node_score, edge_score, hops))
            lists.append(entries)
        return lists

    return provide
