"""Match objects: the results every matcher returns.

A :class:`Match` carries the matching function ``phi`` (query node id ->
data node id), the per-element score breakdown, and the aggregate score.
Star matchers produce star matches; ``starjoin`` merges them into complete
matches of the original query.  All matchers (STAR, graphTA, BP, the
brute-force oracle) return the same type, so tests compare them directly.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple


class Match:
    """One match of a (sub)query in the data graph.

    Attributes:
        score: aggregate score -- for star matches under the alpha-scheme
            this is the *weighted* score ``F'``; for standalone searches
            weights are 1.0 and it equals Eq. 2's ``F``.
        assignment: query node id -> data node id.
        node_scores: query node id -> unweighted ``F_N`` contribution.
        edge_scores: query edge id -> ``F_E`` contribution.
        edge_hops: query edge id -> matched path length (1 = direct edge).
    """

    __slots__ = ("score", "assignment", "node_scores", "edge_scores", "edge_hops")

    def __init__(
        self,
        score: float,
        assignment: Dict[int, int],
        node_scores: Dict[int, float],
        edge_scores: Dict[int, float],
        edge_hops: Dict[int, int],
    ) -> None:
        self.score = score
        self.assignment = assignment
        self.node_scores = node_scores
        self.edge_scores = edge_scores
        self.edge_hops = edge_hops

    def is_injective(self) -> bool:
        """True if distinct query nodes map to distinct data nodes."""
        values = list(self.assignment.values())
        return len(values) == len(set(values))

    def key(self) -> Tuple[Tuple[int, int], ...]:
        """Canonical hashable identity of the matching function."""
        return tuple(sorted(self.assignment.items()))

    def merge(self, other: "Match") -> Optional["Match"]:
        """Join two star matches into one (starjoin's combine step).

        Returns None if the matches disagree on a shared query node.
        Scores add up; under the alpha-scheme the shared-node weights sum
        to 1 across stars, so the sum is the complete match's ``F``.
        Unweighted per-element breakdowns are merged (shared elements keep
        one copy; they are equal by construction).
        """
        merged_assignment = dict(self.assignment)
        for qid, data_node in other.assignment.items():
            existing = merged_assignment.get(qid)
            if existing is not None and existing != data_node:
                return None
            merged_assignment[qid] = data_node
        node_scores = dict(self.node_scores)
        node_scores.update(other.node_scores)
        edge_scores = dict(self.edge_scores)
        edge_scores.update(other.edge_scores)
        edge_hops = dict(self.edge_hops)
        edge_hops.update(other.edge_hops)
        return Match(
            self.score + other.score,
            merged_assignment,
            node_scores,
            edge_scores,
            edge_hops,
        )

    def __repr__(self) -> str:
        pairs = ", ".join(f"{q}->{v}" for q, v in sorted(self.assignment.items()))
        return f"<Match {self.score:.3f} {{{pairs}}}>"


def scores_of(matches: Iterable[Match]) -> List[float]:
    """Score list of *matches* (test helper: compare score multisets)."""
    return [m.score for m in matches]


def is_monotone_non_increasing(matches: Iterable[Match], tol: float = 1e-9) -> bool:
    """True if match scores never increase along the sequence."""
    prev: Optional[float] = None
    for match in matches:
        if prev is not None and match.score > prev + tol:
            return False
        prev = match.score
    return True


def distinct_by(matches: Iterable[Match], query_node: int) -> Iterable[Match]:
    """Keep only the first (best) match per assignment of *query_node*.

    Star-query top-k lists are often dominated by one strong pivot with
    many leaf variations; filtering a monotone stream through
    ``distinct_by(stream, star.pivot.id)`` yields "top-k distinct
    pivots" -- each surviving match is exactly that entity's best match.

    >>> from repro.core.matches import Match
    >>> ms = [Match(3.0, {0: 7, 1: 1}, {}, {}, {}),
    ...       Match(2.5, {0: 7, 1: 2}, {}, {}, {}),
    ...       Match(2.0, {0: 8, 1: 1}, {}, {}, {})]
    >>> [m.score for m in distinct_by(ms, 0)]
    [3.0, 2.0]
    """
    seen = set()
    for match in matches:
        value = match.assignment.get(query_node)
        if value in seen:
            continue
        seen.add(value)
        yield match
