"""Vertex-centric execution of the stard message propagation.

Section V-B, Remark: "The implementation of stard allows multi-level of
parallelism.  In an extreme case of vertex-centric programming [20], each
node can exchange messages between their neighbors in parallel, which can
complete all message propagation in at most d rounds of communication."

This module provides that formulation: a small Pregel-style engine
(supersteps, per-vertex compute, message combining, halting) plus the
stard propagation written as a vertex program.  Execution here is
sequential -- the point is the *program structure*: the engine partitions
vertices across simulated workers and accounts cross-partition message
traffic, so the communication volume a distributed deployment would pay
is measurable.  ``propagate_vertex_centric`` is verified equivalent to
the direct propagation in :mod:`repro.core.messages`.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Hashable, List, Mapping, Optional, Tuple, TypeVar

from repro.core.messages import Top2
from repro.errors import SearchError
from repro.graph.knowledge_graph import KnowledgeGraph

Message = TypeVar("Message")
State = TypeVar("State")


class VertexProgram(Generic[State, Message]):
    """A Pregel-style vertex program.

    Subclasses define per-vertex state, how incoming messages update it,
    and what gets sent to neighbors next superstep.  A vertex halts by
    sending nothing; the engine stops when no messages are in flight.
    """

    def initial_messages(
        self, graph: KnowledgeGraph
    ) -> Dict[int, List[Message]]:
        """Messages delivered at superstep 0 (seeding)."""
        raise NotImplementedError

    def compute(
        self,
        vertex: int,
        state: Optional[State],
        incoming: List[Message],
        superstep: int,
    ) -> Tuple[Optional[State], List[Message]]:
        """Process *incoming*; return (new state, messages to neighbors).

        Returned messages are broadcast to every neighbor of *vertex*.
        """
        raise NotImplementedError

    def combine(self, messages: List[Message]) -> List[Message]:
        """Optional combiner: reduce a vertex's inbox before compute.

        Default keeps the inbox as-is; override to implement Pregel
        combiners (stard's Top2 merge, sums, max, ...).
        """
        return messages


class PregelEngine:
    """Superstep executor with simulated worker partitions.

    Args:
        graph: data graph (undirected adjacency = communication topology).
        num_workers: simulated partition count; vertices are assigned
            round-robin.  Only accounting changes with this value, never
            results.

    Attributes populated by :meth:`run`:
        supersteps_run: rounds executed.
        messages_sent: total messages emitted.
        cross_partition_messages: messages whose endpoints live on
            different workers (the distributed deployment's network cost).
    """

    def __init__(self, graph: KnowledgeGraph, num_workers: int = 4) -> None:
        if num_workers < 1:
            raise SearchError(f"num_workers must be >= 1, got {num_workers}")
        self.graph = graph
        self.num_workers = num_workers
        self.supersteps_run = 0
        self.messages_sent = 0
        self.cross_partition_messages = 0

    def _worker_of(self, vertex: int) -> int:
        return vertex % self.num_workers

    def run(
        self,
        program: VertexProgram,
        max_supersteps: int,
    ) -> Dict[int, object]:
        """Execute *program* for at most *max_supersteps* rounds.

        Returns the final per-vertex states (vertices that never received
        a message are absent).

        Raises:
            SearchError: for non-positive *max_supersteps*.
        """
        if max_supersteps <= 0:
            raise SearchError(
                f"max_supersteps must be positive, got {max_supersteps}"
            )
        self.supersteps_run = 0
        self.messages_sent = 0
        self.cross_partition_messages = 0

        states: Dict[int, object] = {}
        inboxes: Dict[int, List[object]] = {
            v: msgs for v, msgs in program.initial_messages(self.graph).items()
            if msgs
        }
        for superstep in range(max_supersteps):
            if not inboxes:
                break
            self.supersteps_run += 1
            outboxes: Dict[int, List[object]] = {}
            for vertex, inbox in inboxes.items():
                combined = program.combine(inbox)
                new_state, outgoing = program.compute(
                    vertex, states.get(vertex), combined, superstep
                )
                if new_state is not None:
                    states[vertex] = new_state
                if not outgoing:
                    continue
                src_worker = self._worker_of(vertex)
                for nbr, _eid in self.graph.neighbors(vertex):
                    for message in outgoing:
                        outboxes.setdefault(nbr, []).append(message)
                        self.messages_sent += 1
                        if self._worker_of(nbr) != src_worker:
                            self.cross_partition_messages += 1
            inboxes = outboxes
        return states


class StardPropagation(VertexProgram):
    """The stard leaf-score propagation as a vertex program.

    State: per-hop :class:`Top2` tables ``{hop: Top2}`` -- the vertex's
    best (two, distinct-origin) leaf scores per walk distance.  Messages:
    ``(score, origin)`` pairs; the combiner merges an inbox into a single
    Top2 so each vertex processes O(1) data per superstep, the property
    that makes the d-round communication bound of the Remark real.
    """

    def __init__(self, seeds: Mapping[int, float], d: int) -> None:
        if d < 1:
            raise SearchError(f"propagation depth d must be >= 1, got {d}")
        self.seeds = dict(seeds)
        self.d = d

    def initial_messages(self, graph) -> Dict[int, List[Tuple[float, int]]]:
        return {v: [(score, v)] for v, score in self.seeds.items()}

    def combine(self, messages):
        if not messages:
            return messages
        top2 = Top2(messages[0][0], messages[0][1])
        for score, origin in messages[1:]:
            top2.offer(score, origin)
        out = [(top2.s1, top2.o1)]
        if top2.o2 >= 0:
            out.append((top2.s2, top2.o2))
        return out

    def compute(self, vertex, state, incoming, superstep):
        # Superstep s delivers walk-distance-s information (s=0: seeds).
        table: Dict[int, Top2] = dict(state) if state else {}
        merged: Optional[Top2] = None
        for score, origin in incoming:
            if merged is None:
                merged = Top2(score, origin)
            else:
                merged.offer(score, origin)
        if merged is not None:
            table[superstep] = merged
        # Keep propagating until hop d has been delivered everywhere.
        if superstep >= self.d:
            return table, []
        return table, list(incoming)


def propagate_vertex_centric(
    graph: KnowledgeGraph,
    seeds: Mapping[int, float],
    d: int,
    num_workers: int = 4,
) -> Tuple[List[Dict[int, Top2]], PregelEngine]:
    """Run stard's propagation on the Pregel engine.

    Returns ``(layers, engine)`` where ``layers[h][v]`` matches
    :func:`repro.core.messages.propagate` exactly, and *engine* carries
    the communication accounting.
    """
    engine = PregelEngine(graph, num_workers=num_workers)
    program = StardPropagation(seeds, d)
    states = engine.run(program, max_supersteps=d + 1)
    layers: List[Dict[int, Top2]] = [dict() for _ in range(d + 1)]
    for vertex, table in states.items():
        for hop, top2 in table.items():
            layers[hop][vertex] = top2
    return layers, engine
