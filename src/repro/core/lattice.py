"""Cursor-lattice enumeration of per-pivot matches in score order.

Section V-A, step (2): for a pivot node ``v`` with sorted leaf candidate
lists ``L_1 .. L_s``, matches pivoted at ``v`` form a lattice of cursor
tuples ``(l_1, .., l_s)`` whose aggregate score is monotone non-increasing
along every lattice edge.  ``stark`` pops the best cursor from a priority
queue and pushes its ``s`` successors -- exactly the scheme analyzed in
the paper (cost ``s log k`` per pop).

Injective matching is enforced here: a popped cursor whose leaf
assignments collide (or touch the pivot -- excluded at list-construction
time) is *skipped but still expanded*, which preserves completeness
because scores only decrease along the lattice.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.matches import Match


class LeafEntry:
    """One leaf candidate: a data node with its score breakdown."""

    __slots__ = ("combined", "node", "node_score", "edge_score", "hops")

    def __init__(
        self, combined: float, node: int, node_score: float,
        edge_score: float, hops: int,
    ) -> None:
        self.combined = combined
        self.node = node
        self.node_score = node_score
        self.edge_score = edge_score
        self.hops = hops


def make_leaf_list(
    entries: Sequence[Tuple[float, int, float, float, int]]
) -> List[LeafEntry]:
    """Build a sorted leaf list from raw ``(combined, node, node_score,
    edge_score, hops)`` tuples (decreasing combined score, ties by node)."""
    leaf = [LeafEntry(*raw) for raw in entries]
    leaf.sort(key=lambda e: (-e.combined, e.node))
    return leaf


class PivotMatchGenerator:
    """Generates matches pivoted at one data node in non-increasing order.

    Args:
        pivot_qid: pivot query-node id.
        pivot_node: the data node matched to the pivot.
        pivot_score: (weighted) ``F_N`` of the pivot match.
        pivot_raw_score: unweighted pivot ``F_N`` (for breakdowns).
        leaf_positions: ``[(leaf_qid, edge_qid), ...]`` parallel to
            *leaf_lists*.
        leaf_lists: per-position sorted :class:`LeafEntry` lists.
        injective: enforce one-to-one assignments.
    """

    __slots__ = (
        "pivot_qid", "pivot_node", "pivot_score", "pivot_raw_score",
        "leaf_positions", "leaf_lists", "injective", "_heap", "_visited",
        "_exhausted", "pops",
    )

    def __init__(
        self,
        pivot_qid: int,
        pivot_node: int,
        pivot_score: float,
        pivot_raw_score: float,
        leaf_positions: Sequence[Tuple[int, int]],
        leaf_lists: Sequence[List[LeafEntry]],
        injective: bool = True,
    ) -> None:
        self.pivot_qid = pivot_qid
        self.pivot_node = pivot_node
        self.pivot_score = pivot_score
        self.pivot_raw_score = pivot_raw_score
        self.leaf_positions = list(leaf_positions)
        self.leaf_lists = list(leaf_lists)
        self.injective = injective
        self._heap: List[Tuple[float, Tuple[int, ...]]] = []
        self._visited = set()
        self._exhausted = not all(self.leaf_lists)
        self.pops = 0
        if not self._exhausted:
            start = tuple([0] * len(self.leaf_lists))
            self._push(start)

    # ------------------------------------------------------------------
    def _cursor_score(self, cursor: Tuple[int, ...]) -> float:
        total = self.pivot_score
        for pos, idx in enumerate(cursor):
            total += self.leaf_lists[pos][idx].combined
        return total

    def _push(self, cursor: Tuple[int, ...]) -> None:
        if cursor in self._visited:
            return
        self._visited.add(cursor)
        heapq.heappush(self._heap, (-self._cursor_score(cursor), cursor))

    def _expand(self, cursor: Tuple[int, ...]) -> None:
        for pos in range(len(cursor)):
            if cursor[pos] + 1 < len(self.leaf_lists[pos]):
                successor = cursor[:pos] + (cursor[pos] + 1,) + cursor[pos + 1:]
                self._push(successor)

    def _valid(self, cursor: Tuple[int, ...]) -> bool:
        if not self.injective:
            return True
        seen = {self.pivot_node}
        for pos, idx in enumerate(cursor):
            node = self.leaf_lists[pos][idx].node
            if node in seen:
                return False
            seen.add(node)
        return True

    def _materialize(self, cursor: Tuple[int, ...], score: float) -> Match:
        assignment: Dict[int, int] = {self.pivot_qid: self.pivot_node}
        node_scores: Dict[int, float] = {self.pivot_qid: self.pivot_raw_score}
        edge_scores: Dict[int, float] = {}
        edge_hops: Dict[int, int] = {}
        for pos, idx in enumerate(cursor):
            leaf_qid, edge_qid = self.leaf_positions[pos]
            entry = self.leaf_lists[pos][idx]
            assignment[leaf_qid] = entry.node
            node_scores[leaf_qid] = entry.node_score
            edge_scores[edge_qid] = entry.edge_score
            edge_hops[edge_qid] = entry.hops
        return Match(score, assignment, node_scores, edge_scores, edge_hops)

    # ------------------------------------------------------------------
    def peek_score(self) -> Optional[float]:
        """Upper bound on the next match's score (None when exhausted).

        This is the best *cursor* score in the queue; the next valid match
        scores at most this much.
        """
        if self._exhausted or not self._heap:
            return None
        return -self._heap[0][0]

    def next_match(self) -> Optional[Match]:
        """The next-best match pivoted here, or None when exhausted."""
        while self._heap:
            neg_score, cursor = heapq.heappop(self._heap)
            self.pops += 1
            self._expand(cursor)
            if self._valid(cursor):
                return self._materialize(cursor, -neg_score)
        self._exhausted = True
        return None

    def __iter__(self) -> Iterator[Match]:
        while True:
            match = self.next_match()
            if match is None:
                return
            yield match
