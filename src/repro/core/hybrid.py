"""Section V-C alternative: TA-guided two-stage star search.

The paper sketches (and leaves to "future study" -- implemented here as an
ablation) a strategy combining graphTA's sorted access with stark's
pivot-wise search:

* **Stage 1**: scan pivot candidates in decreasing node-score order,
  computing each pivot's top-1 match; maintain the pseudo top-k set.  An
  upper bound for every *unseen* pivot is its node score (the next list
  entry) plus the global best possible leaf contributions; once that bound
  falls below the current k-th best top-1, no unseen pivot can enter the
  pivot set ``V_P`` (Lemma 1), so scanning stops.
* **Stage 2**: exactly stark's lattice phase over the evaluated pivots.

Compared to ``stark`` it avoids evaluating low-score pivots when node
scores correlate with match scores; compared to ``stard`` its bound is
global rather than per-pivot, so it scans more pivots on d-bounded
queries.  The ablation benchmark quantifies both effects.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.core.candidates import node_candidates
from repro.core.matches import Match
from repro.core.stark import (
    _MIN_PIVOTS_AFTER_TRIP,
    SearchStats,
    StarKSearch,
    bounded_leaf_provider,
)
from repro.errors import BudgetExceededError, SearchError
from repro.query.model import StarQuery
from repro.runtime.budget import Budget, SearchReport
from repro.runtime.faults import SUBSTRATE_ERRORS
from repro.similarity.scoring import ScoringFunction


class HybridStarSearch:
    """The Section V-C two-stage alternative.

    Args:
        scorer: shared :class:`ScoringFunction`.
        d: search bound.
        injective: enforce one-to-one matching.
        candidate_limit: optional candidate cutoff.
    """

    def __init__(
        self,
        scorer: ScoringFunction,
        d: int = 1,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
    ) -> None:
        if d < 1:
            raise SearchError(f"search bound d must be >= 1, got {d}")
        self.scorer = scorer
        self.d = d
        self.injective = injective
        self.candidate_limit = candidate_limit
        self._stark = StarKSearch(
            scorer, injective=injective, candidate_limit=candidate_limit,
            prop3=False, d=d,
        )
        self.pivots_evaluated = 0
        #: Counters under the same shape as stark's, so the framework
        #: publishes hybrid runs through the unified stats path.
        self.stats = SearchStats()
        self.last_report: Optional[SearchReport] = None

    # ------------------------------------------------------------------
    def _global_leaf_bound(self, star: StarQuery) -> Optional[float]:
        """Best possible total leaf contribution across any pivot.

        Per leaf: its best candidate node score anywhere in the graph,
        plus the best achievable edge score (1.0 caps relation scores; a
        direct edge always beats the decay).  None when some leaf has no
        admissible candidate at all.
        """
        total = 0.0
        for leaf, _edge in star.leaves:
            cands = node_candidates(self.scorer, leaf, limit=1)
            if not cands:
                return None
            total += cands[0][1] + 1.0
        return total

    # ------------------------------------------------------------------
    def search(
        self, star: StarQuery, k: int, budget: Optional[Budget] = None
    ) -> List[Match]:
        """Top-k matches of *star* in decreasing score order.

        With an anytime *budget*, a trip ends stage 1 early (after the
        minimum-progress floor) and stage 2 drains the evaluated pivots'
        current bests -- a flagged best-so-far answer.

        Raises:
            SearchError: for non-positive k.
            SearchTimeoutError / BudgetExceededError: on a strict-mode
                budget trip.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        try:
            results = self._search(star, k, budget)
        except BudgetExceededError as exc:
            self.last_report = SearchReport.from_budget("hybrid", budget, 0)
            if exc.report is None:
                exc.report = self.last_report
            raise
        self.last_report = SearchReport.from_budget(
            "hybrid", budget, len(results)
        )
        return results

    def _search(
        self, star: StarQuery, k: int, budget: Optional[Budget]
    ) -> List[Match]:
        self.pivots_evaluated = 0
        stats = self.stats = SearchStats()
        budget_on = budget is not None
        anytime = budget_on and budget.anytime
        weights: dict = {}
        pivot_cands = node_candidates(
            self.scorer, star.pivot, limit=self.candidate_limit, budget=budget
        )
        if not pivot_cands:
            return []
        leaf_bound = self._global_leaf_bound(star)
        if leaf_bound is None:
            return []
        stats.pivots_considered = len(pivot_cands)
        if self.d == 1:
            provider = self._stark._leaf_provider(star, weights, budget=budget)
        else:
            provider = bounded_leaf_provider(
                self.scorer, star, weights, self.d, self.injective,
                traversal_stats=stats,
            )

        # Stage 1: sorted scan with early cutoff.
        gen_entries: List[Tuple[float, int, Match, object]] = []
        top1_scores: List[float] = []  # max-heap via sorted inserts not needed
        serial = 0
        tripped = False
        for pivot_node, pivot_score in pivot_cands:  # decreasing score
            if budget_on and budget.charge_nodes() and (
                gen_entries or self.pivots_evaluated >= _MIN_PIVOTS_AFTER_TRIP
            ):
                tripped = True
                break
            if len(top1_scores) == k:
                # top1_scores is a size-k min-heap: [0] is the k-th best.
                if pivot_score + leaf_bound <= top1_scores[0]:
                    break  # no unseen pivot can reach the pivot set V_P
            self.pivots_evaluated += 1
            stats.pivots_evaluated += 1
            if anytime:
                try:
                    gen = self._stark.build_generator(
                        star, pivot_node, pivot_score, weights, provider
                    )
                except SUBSTRATE_ERRORS as exc:
                    budget.record_fault(f"pivot {pivot_node}: {exc}")
                    continue
            else:
                gen = self._stark.build_generator(
                    star, pivot_node, pivot_score, weights, provider
                )
            if gen is None:
                continue
            first = gen.next_match()
            if first is None:
                continue
            serial += 1
            stats.pivots_with_match += 1
            heapq.heappush(gen_entries, (-first.score, serial, first, gen))
            if len(top1_scores) < k:
                heapq.heappush(top1_scores, first.score)
            elif first.score > top1_scores[0]:
                heapq.heapreplace(top1_scores, first.score)

        # The scan can end without setting the flag (candidates exhausted
        # before the floor); budget.check() is sticky, so ask it directly.
        if not tripped and anytime and budget.check():
            tripped = True
        if tripped and anytime and not gen_entries:
            # Truncated leaf shortlists starved every scanned pivot; score
            # a few top pivots' neighborhoods directly for one genuine
            # best-so-far match.
            rescued = self._stark._anytime_rescue(
                star, weights, pivot_cands, None, budget
            )
            if rescued is not None:
                first, gen = rescued
                serial += 1
                heapq.heappush(gen_entries, (-first.score, serial, first, gen))

        # Stage 2: stark's lattice phase over the evaluated pivots.
        results: List[Match] = []
        while gen_entries and len(results) < k:
            if not tripped and budget_on and budget.check():
                tripped = True
            _neg, _s, match, gen = heapq.heappop(gen_entries)
            results.append(match)
            stats.matches_emitted += 1
            stats.lattice_pops += gen.pops
            gen.pops = 0
            if tripped:
                continue  # drain current bests, generate nothing new
            nxt = gen.next_match()
            if nxt is not None:
                serial += 1
                heapq.heappush(gen_entries, (-nxt.score, serial, nxt, gen))
        return results
