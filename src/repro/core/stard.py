"""Procedure ``stard``: d-bounded top-k star search by message passing.

Section V-B.  The bottleneck of d-bounded search is finding the top-1
match of *every* pivot candidate -- an eager d-hop traversal per pivot
(what ``stark`` with ``d >= 2`` does).  ``stard`` avoids it:

1. **Message passing** (:mod:`repro.core.messages`): every leaf match
   seeds a message carrying its ``F_N``; ``d`` propagation rounds give,
   per node and hop count, the best (top-2, to survive the ping-pong
   effect) leaf scores reachable by a walk of that length.
2. **Pivot estimates**: combining the propagated scores with the monotone
   edge-path bound yields an *upper bound* on each pivot's top-1 match.
3. **Lazy exact phase**: pivots are evaluated in decreasing estimate
   order with an exact bounded-BFS traversal; a pivot is only traversed
   when its estimate beats every already-generated match, so the stream
   stays exact (Lemma 1) while traversing only the pivots that matter.

At ``d == 1`` stard degrades to ``stark`` (same runtime), as in Fig. 12.
"""

from __future__ import annotations

import heapq
from typing import AbstractSet, Dict, Iterator, List, Mapping, Optional, Tuple

from repro import obs
from repro.core.candidates import node_candidates
from repro.core.matches import Match
from repro.core.messages import Top2, estimate_leaf_bound, propagate
from repro.core.stark import (
    _MIN_PIVOTS_AFTER_TRIP,
    StarKSearch,
    bounded_leaf_provider,
    leaf_candidate_maps,
)
from repro.errors import BudgetExceededError, SearchError
from repro.query.model import StarQuery
from repro.runtime.budget import Budget, SearchReport
from repro.runtime.faults import SUBSTRATE_ERRORS
from repro.similarity.descriptors import Descriptor
from repro.similarity.scoring import ScoringFunction


class StarDSearch:
    """The ``stard`` procedure bound to a graph + scoring function.

    Args:
        scorer: shared :class:`ScoringFunction`.
        d: search bound (>= 1); 1 delegates to ``stark``.
        injective: enforce one-to-one matching.
        candidate_limit: optional pivot/leaf candidate cutoff.
        engine: propagation backend -- ``"direct"`` (default, the
            sequential loop of :mod:`repro.core.messages`) or
            ``"vertex"`` (the Pregel-style formulation of the Section V-B
            Remark, :mod:`repro.core.vertex_centric`).  Results are
            identical; the vertex engine additionally accounts the
            communication a distributed deployment would pay.
        pivot_scope / leaf_scope: optional node-id restrictions for
            sharded execution, with the same semantics as
            :class:`~repro.core.stark.StarKSearch`: the pivot scope is a
            shard's owned set, the leaf scope its d-hop halo.  Scoped
            propagation seeds are exact for owned pivots because a seed
            outside the halo is more than d hops from every owned node
            and its messages can never reach them; when a
            ``candidate_limit`` is set, seeds keep their *global*
            truncation (and stay unscoped) so the cutoff means the same
            thing in every shard.
    """

    def __init__(
        self,
        scorer: ScoringFunction,
        d: int = 2,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
        engine: str = "direct",
        pivot_scope: Optional[AbstractSet[int]] = None,
        leaf_scope: Optional[AbstractSet[int]] = None,
    ) -> None:
        if d < 1:
            raise SearchError(f"search bound d must be >= 1, got {d}")
        if engine not in ("direct", "vertex"):
            raise SearchError(
                f"unknown propagation engine {engine!r} "
                "(expected 'direct' or 'vertex')"
            )
        self.engine = engine
        self.scorer = scorer
        self.graph = scorer.graph
        self.d = d
        self.injective = injective
        self.candidate_limit = candidate_limit
        self.pivot_scope = pivot_scope
        self.leaf_scope = leaf_scope
        # Shares generator assembly (and the d=1 path) with stark.
        self._stark = StarKSearch(
            scorer, injective=injective, candidate_limit=candidate_limit,
            prop3=False, d=1, pivot_scope=pivot_scope, leaf_scope=leaf_scope,
        )
        self.pivots_evaluated = 0
        self.pivots_with_match = 0
        self.matches_emitted = 0
        self.messages_propagated = 0
        self.last_report: Optional[SearchReport] = None

    # ------------------------------------------------------------------
    def _propagate_leaves(
        self, star: StarQuery, budget: Optional[Budget] = None
    ) -> Dict[object, List[Dict[int, Top2]]]:
        """Phase 1: one propagation per *distinct* leaf constraint.

        Distinctness is by canonical descriptor content
        (``Descriptor.cache_key``), so two leaves carrying the same
        constraint -- common in template queries -- share one
        propagation instead of paying it twice.

        Under an anytime budget, a substrate fault during one leaf's
        propagation leaves that leaf with empty layers (its pivot
        estimates vanish) and the run continues, flagged.
        """
        anytime = budget is not None and budget.anytime
        results: Dict[object, List[Dict[int, Top2]]] = {}
        for leaf, _edge in star.leaves:
            desc = leaf.descriptor.cache_key
            if desc in results:
                continue
            before = self.messages_propagated
            with obs.trace("stard.propagate", leaf=leaf.id,
                           rounds=self.d) as span:
                try:
                    # Scoped seeds stay exact for owned pivots (see class
                    # doc); a global cutoff forces global seeds.
                    seed_scope = (self.leaf_scope
                                  if self.candidate_limit is None else None)
                    seeds = dict(
                        node_candidates(
                            self.scorer, leaf, limit=self.candidate_limit,
                            budget=budget, scope=seed_scope,
                        )
                    )
                    if self.engine == "vertex":
                        from repro.core.vertex_centric import (
                            propagate_vertex_centric,
                        )

                        layers, engine = propagate_vertex_centric(
                            self.graph, seeds, self.d
                        )
                        self.messages_propagated += engine.messages_sent
                        if budget is not None:
                            budget.charge_messages(engine.messages_sent)
                    else:
                        layers = propagate(self.graph, seeds, self.d,
                                           budget=budget)
                        self.messages_propagated += sum(
                            len(layer) for layer in layers
                        )
                except SUBSTRATE_ERRORS as exc:
                    if not anytime:
                        raise
                    budget.record_fault(
                        f"propagation for leaf {leaf.id}: {exc}"
                    )
                    layers = [{} for _ in range(self.d + 1)]
                span.annotate(messages=self.messages_propagated - before)
            results[desc] = layers
        return results

    def _pivot_estimate(
        self,
        star: StarQuery,
        pivot_node: int,
        pivot_score: float,
        node_weights: Mapping[int, float],
        leaf_layers: Dict[object, List[Dict[int, Top2]]],
    ) -> Optional[float]:
        """Upper bound on the best match pivoted at *pivot_node*."""
        scorer = self.scorer
        total = node_weights.get(star.pivot.id, 1.0) * pivot_score
        for leaf, _edge in star.leaves:
            bound = estimate_leaf_bound(
                leaf_layers[leaf.descriptor.cache_key],
                pivot_node,
                self.d,
                scorer.edge_upper_bound,
                scorer.config.edge_threshold,
                exclude_pivot=self.injective,
            )
            if bound is None:
                return None
            weight = node_weights.get(leaf.id, 1.0)
            # bound = node_part + edge_part with node weight 1; reweigh the
            # node part conservatively: weight <= 1 shrinks, > 1 grows.
            if weight != 1.0:
                # node part is at most the whole bound; scaling the whole
                # bound by max(weight, 1) keeps it an upper bound.
                bound = bound * max(weight, 1.0)
            total += bound
        return total

    # ------------------------------------------------------------------
    def stream(
        self,
        star: StarQuery,
        node_weights: Optional[Mapping[int, float]] = None,
        budget: Optional[Budget] = None,
    ) -> Iterator[Match]:
        """Yield matches of *star* in non-increasing score order.

        With an anytime *budget*, a trip stops evaluating new pivots
        (after the minimum-progress floor) and drains the already-built
        generators' current bests, keeping the emitted suffix monotone --
        a flagged best-so-far stream.
        """
        if self.d == 1:
            yield from self._stark.stream(star, node_weights, budget=budget)
            return
        weights = node_weights or {}
        budget_on = budget is not None
        anytime = budget_on and budget.anytime
        self.pivots_evaluated = 0
        self.pivots_with_match = 0
        self.matches_emitted = 0
        self.messages_propagated = 0
        self._stark.stats.nodes_traversed = 0

        if anytime:
            try:
                leaf_layers = self._propagate_leaves(star, budget=budget)
                pivot_cands = self._stark._pivot_candidates(
                    star, budget=budget
                )
            except SUBSTRATE_ERRORS as exc:
                budget.record_fault(f"stard candidate setup: {exc}")
                return
        else:
            leaf_layers = self._propagate_leaves(star, budget=budget)
            pivot_cands = self._stark._pivot_candidates(star, budget=budget)
        scoped_maps = (
            leaf_candidate_maps(self.scorer, star, scope=self.leaf_scope)
            if self.leaf_scope is not None else None
        )
        provider = bounded_leaf_provider(
            self.scorer, star, weights, self.d, self.injective,
            leaf_maps=scoped_maps, traversal_stats=self._stark.stats,
        )

        est_heap: List[Tuple[float, int, int, float]] = []
        with obs.trace("stard.estimates", pivots=len(pivot_cands)) as span:
            for serial, (pivot_node, pivot_score) in enumerate(pivot_cands):
                estimate = self._pivot_estimate(
                    star, pivot_node, pivot_score, weights, leaf_layers
                )
                if estimate is not None:
                    heapq.heappush(
                        est_heap, (-estimate, serial, pivot_node, pivot_score)
                    )
            span.annotate(viable=len(est_heap))

        gen_heap: List[Tuple[float, int, Match, object]] = []
        serial = len(pivot_cands)
        tripped = False
        emitted = False
        while est_heap or gen_heap:
            # Evaluate pivots whose upper bound beats every generated match.
            while not tripped and est_heap and (
                not gen_heap or -est_heap[0][0] > -gen_heap[0][0] + 1e-12
            ):
                if budget_on and budget.charge_nodes() and (
                    gen_heap or self.pivots_evaluated >= _MIN_PIVOTS_AFTER_TRIP
                ):
                    tripped = True
                    break
                _neg_est, _s, pivot_node, pivot_score = heapq.heappop(est_heap)
                self.pivots_evaluated += 1
                with obs.trace("stard.pivot_eval", pivot=pivot_node):
                    if anytime:
                        try:
                            gen = self._stark.build_generator(
                                star, pivot_node, pivot_score, weights,
                                provider,
                            )
                        except SUBSTRATE_ERRORS as exc:
                            budget.record_fault(f"pivot {pivot_node}: {exc}")
                            continue
                    else:
                        gen = self._stark.build_generator(
                            star, pivot_node, pivot_score, weights, provider
                        )
                    if gen is None:
                        continue
                    first = gen.next_match()
                    if first is None:
                        continue
                    self.pivots_with_match += 1
                    serial += 1
                    heapq.heappush(
                        gen_heap, (-first.score, serial, first, gen)
                    )
            if not tripped and budget_on and budget.check():
                tripped = True
            if not gen_heap:
                if tripped and anytime and not emitted:
                    # Truncated shortlists starved every pivot; score a few
                    # top pivots' neighborhoods directly (d=1 matches are
                    # valid d-bounded matches).
                    with obs.trace("stark.anytime_rescue"):
                        rescued = self._stark._anytime_rescue(
                            star, weights, pivot_cands, None, budget
                        )
                    if rescued is not None:
                        self.matches_emitted += 1
                        yield rescued[0]
                return
            _neg, _s, match, gen = heapq.heappop(gen_heap)
            emitted = True
            self.matches_emitted += 1
            yield match
            if tripped:
                continue  # drain already-built generators' current bests
            nxt = gen.next_match()
            if nxt is not None:
                serial += 1
                heapq.heappush(gen_heap, (-nxt.score, serial, nxt, gen))
        # Both heaps empty from the start (estimates starved by a trip
        # during setup): budget.check() is sticky, so ask it directly.
        if anytime and not emitted and budget.check():
            with obs.trace("stark.anytime_rescue"):
                rescued = self._stark._anytime_rescue(
                    star, weights, pivot_cands, None, budget
                )
            if rescued is not None:
                self.matches_emitted += 1
                yield rescued[0]

    def search(
        self, star: StarQuery, k: int, budget: Optional[Budget] = None
    ) -> List[Match]:
        """Top-k matches of *star* in decreasing score order.

        With an anytime *budget*, returns the flagged best-so-far list on
        a trip; :attr:`last_report` describes the run either way.

        Raises:
            SearchError: for non-positive k.
            SearchTimeoutError / BudgetExceededError: on a strict-mode
                budget trip.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        results: List[Match] = []
        with obs.trace("stard.search", k=k, d=self.d):
            try:
                for match in self.stream(star, budget=budget):
                    results.append(match)
                    if len(results) == k:
                        break
            except BudgetExceededError as exc:
                self.last_report = SearchReport.from_budget(
                    "stard", budget, len(results)
                )
                if exc.report is None:
                    exc.report = self.last_report
                raise
        self.last_report = SearchReport.from_budget("stard", budget, len(results))
        return results
