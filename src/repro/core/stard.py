"""Procedure ``stard``: d-bounded top-k star search by message passing.

Section V-B.  The bottleneck of d-bounded search is finding the top-1
match of *every* pivot candidate -- an eager d-hop traversal per pivot
(what ``stark`` with ``d >= 2`` does).  ``stard`` avoids it:

1. **Message passing** (:mod:`repro.core.messages`): every leaf match
   seeds a message carrying its ``F_N``; ``d`` propagation rounds give,
   per node and hop count, the best (top-2, to survive the ping-pong
   effect) leaf scores reachable by a walk of that length.
2. **Pivot estimates**: combining the propagated scores with the monotone
   edge-path bound yields an *upper bound* on each pivot's top-1 match.
3. **Lazy exact phase**: pivots are evaluated in decreasing estimate
   order with an exact bounded-BFS traversal; a pivot is only traversed
   when its estimate beats every already-generated match, so the stream
   stays exact (Lemma 1) while traversing only the pivots that matter.

At ``d == 1`` stard degrades to ``stark`` (same runtime), as in Fig. 12.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.core.candidates import node_candidates
from repro.core.matches import Match
from repro.core.messages import Top2, estimate_leaf_bound, propagate
from repro.core.stark import StarKSearch, bounded_leaf_provider
from repro.errors import SearchError
from repro.query.model import StarQuery
from repro.similarity.descriptors import Descriptor
from repro.similarity.scoring import ScoringFunction


class StarDSearch:
    """The ``stard`` procedure bound to a graph + scoring function.

    Args:
        scorer: shared :class:`ScoringFunction`.
        d: search bound (>= 1); 1 delegates to ``stark``.
        injective: enforce one-to-one matching.
        candidate_limit: optional pivot/leaf candidate cutoff.
        engine: propagation backend -- ``"direct"`` (default, the
            sequential loop of :mod:`repro.core.messages`) or
            ``"vertex"`` (the Pregel-style formulation of the Section V-B
            Remark, :mod:`repro.core.vertex_centric`).  Results are
            identical; the vertex engine additionally accounts the
            communication a distributed deployment would pay.
    """

    def __init__(
        self,
        scorer: ScoringFunction,
        d: int = 2,
        injective: bool = True,
        candidate_limit: Optional[int] = None,
        engine: str = "direct",
    ) -> None:
        if d < 1:
            raise SearchError(f"search bound d must be >= 1, got {d}")
        if engine not in ("direct", "vertex"):
            raise SearchError(
                f"unknown propagation engine {engine!r} "
                "(expected 'direct' or 'vertex')"
            )
        self.engine = engine
        self.scorer = scorer
        self.graph = scorer.graph
        self.d = d
        self.injective = injective
        self.candidate_limit = candidate_limit
        # Shares generator assembly (and the d=1 path) with stark.
        self._stark = StarKSearch(
            scorer, injective=injective, candidate_limit=candidate_limit,
            prop3=False, d=1,
        )
        self.pivots_evaluated = 0
        self.messages_propagated = 0

    # ------------------------------------------------------------------
    def _propagate_leaves(
        self, star: StarQuery
    ) -> Dict[Descriptor, List[Dict[int, Top2]]]:
        """Phase 1: one propagation per *distinct* leaf constraint."""
        results: Dict[Descriptor, List[Dict[int, Top2]]] = {}
        for leaf, _edge in star.leaves:
            desc = leaf.descriptor
            if desc in results:
                continue
            seeds = dict(
                node_candidates(self.scorer, leaf, limit=self.candidate_limit)
            )
            if self.engine == "vertex":
                from repro.core.vertex_centric import propagate_vertex_centric

                layers, engine = propagate_vertex_centric(
                    self.graph, seeds, self.d
                )
                self.messages_propagated += engine.messages_sent
            else:
                layers = propagate(self.graph, seeds, self.d)
                self.messages_propagated += sum(len(layer) for layer in layers)
            results[desc] = layers
        return results

    def _pivot_estimate(
        self,
        star: StarQuery,
        pivot_node: int,
        pivot_score: float,
        node_weights: Mapping[int, float],
        leaf_layers: Dict[Descriptor, List[Dict[int, Top2]]],
    ) -> Optional[float]:
        """Upper bound on the best match pivoted at *pivot_node*."""
        scorer = self.scorer
        total = node_weights.get(star.pivot.id, 1.0) * pivot_score
        for leaf, _edge in star.leaves:
            bound = estimate_leaf_bound(
                leaf_layers[leaf.descriptor],
                pivot_node,
                self.d,
                scorer.edge_upper_bound,
                scorer.config.edge_threshold,
                exclude_pivot=self.injective,
            )
            if bound is None:
                return None
            weight = node_weights.get(leaf.id, 1.0)
            # bound = node_part + edge_part with node weight 1; reweigh the
            # node part conservatively: weight <= 1 shrinks, > 1 grows.
            if weight != 1.0:
                # node part is at most the whole bound; scaling the whole
                # bound by max(weight, 1) keeps it an upper bound.
                bound = bound * max(weight, 1.0)
            total += bound
        return total

    # ------------------------------------------------------------------
    def stream(
        self,
        star: StarQuery,
        node_weights: Optional[Mapping[int, float]] = None,
    ) -> Iterator[Match]:
        """Yield matches of *star* in non-increasing score order."""
        if self.d == 1:
            yield from self._stark.stream(star, node_weights)
            return
        weights = node_weights or {}
        self.pivots_evaluated = 0
        self.messages_propagated = 0

        leaf_layers = self._propagate_leaves(star)
        provider = bounded_leaf_provider(
            self.scorer, star, weights, self.d, self.injective
        )

        pivot_cands = node_candidates(
            self.scorer, star.pivot, limit=self.candidate_limit
        )
        est_heap: List[Tuple[float, int, int, float]] = []
        for serial, (pivot_node, pivot_score) in enumerate(pivot_cands):
            estimate = self._pivot_estimate(
                star, pivot_node, pivot_score, weights, leaf_layers
            )
            if estimate is not None:
                heapq.heappush(
                    est_heap, (-estimate, serial, pivot_node, pivot_score)
                )

        gen_heap: List[Tuple[float, int, Match, object]] = []
        serial = len(pivot_cands)
        while est_heap or gen_heap:
            # Evaluate pivots whose upper bound beats every generated match.
            while est_heap and (
                not gen_heap or -est_heap[0][0] > -gen_heap[0][0] + 1e-12
            ):
                _neg_est, _s, pivot_node, pivot_score = heapq.heappop(est_heap)
                gen = self._stark.build_generator(
                    star, pivot_node, pivot_score, weights, provider
                )
                self.pivots_evaluated += 1
                if gen is None:
                    continue
                first = gen.next_match()
                if first is None:
                    continue
                serial += 1
                heapq.heappush(gen_heap, (-first.score, serial, first, gen))
            if not gen_heap:
                return
            _neg, _s, match, gen = heapq.heappop(gen_heap)
            yield match
            nxt = gen.next_match()
            if nxt is not None:
                serial += 1
                heapq.heappush(gen_heap, (-nxt.score, serial, nxt, gen))

    def search(self, star: StarQuery, k: int) -> List[Match]:
        """Top-k matches of *star* in decreasing score order.

        Raises:
            SearchError: for non-positive k.
        """
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        results: List[Match] = []
        for match in self.stream(star):
            results.append(match)
            if len(results) == k:
                break
        return results
