"""Reusable rank-merge machinery: bounded pools + HRJN-style merging.

Two consumers share this module:

* :mod:`repro.core.starjoin` -- the paper's HRJN rank join over star
  streams (Section VI-A).  It keeps its candidate joins in a
  :class:`ScoredPool` and terminates on the classic threshold test:
  the k-th pooled score beats every live stream's upper bound.
* :mod:`repro.shard` -- the sharded execution layer.  Each shard's
  ``stark``/``stard`` stream is monotone non-increasing, so the union
  of per-shard streams is a degenerate (single-input) rank join per
  stream: a shard's *bound* is simply the score of the last match it
  delivered, and the global merge may stop pulling from a shard as
  soon as the k-th global score beats that bound.  The
  :class:`RankMerger` implements that merge with canonical
  ``(-score, match.key())`` tie-breaking -- which makes the merged
  top-k invariant under the number of shards and the partition
  strategy -- plus duplicate suppression for matches that more than
  one shard can produce (overlapping scopes / replicated cut regions).

:class:`MonotoneStream` is the shared bookkeeping for one monotone
match stream (top score, last score, exhaustion, drop flag); the join's
``_StarStream`` extends it with the fetched list ``L_i``.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Optional, Tuple

from repro.core.matches import Match
from repro.errors import SearchError

__all__ = ["MonotoneStream", "RankMerger", "ScoredPool"]


class MonotoneStream:
    """Bookkeeping for one monotone non-increasing match stream.

    Tracks the first (``top_score``) and most recent (``last_score``)
    delivered scores -- the two ingredients of every HRJN-style bound --
    plus exhaustion and the rank join's per-stream drop flag.
    """

    __slots__ = ("iterator", "top_score", "last_score", "exhausted",
                 "dropped")

    def __init__(self, iterator: Iterator[Match]) -> None:
        self.iterator = iterator
        self.top_score: Optional[float] = None
        self.last_score: Optional[float] = None
        self.exhausted = False
        self.dropped = False

    def pull(self) -> Optional[Match]:
        """Next match of the stream, or None once exhausted/dropped."""
        if self.exhausted or self.dropped:
            return None
        match = next(self.iterator, None)
        if match is None:
            self.exhausted = True
            return None
        if self.top_score is None:
            self.top_score = match.score
        self.last_score = match.score
        return match

    @property
    def live(self) -> bool:
        """True while the stream can still deliver matches."""
        return not (self.exhausted or self.dropped)


class ScoredPool:
    """Bounded top-k pool with arrival-order tie-breaking.

    A min-heap of the best ``<= k`` offered items.  Every offer consumes
    a serial number whether or not the item is admitted, and ties at
    equal score keep the *earlier* arrival -- exactly the behavior the
    rank join's bounded pool always had, now shared.
    """

    __slots__ = ("k", "_heap", "_serial")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        self.k = k
        self._heap: List[Tuple[float, int, Any]] = []
        self._serial = 0

    def __len__(self) -> int:
        return len(self._heap)

    def offer(self, score: float, item: Any) -> None:
        """Consider ``item`` for the pool (kept only if top-k so far)."""
        self._serial += 1
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, (score, self._serial, item))
        elif score > self._heap[0][0]:
            heapq.heapreplace(self._heap, (score, self._serial, item))

    def theta(self) -> float:
        """The k-th best score so far; ``-inf`` while underfull.

        This is HRJN's termination threshold: a stream whose upper
        bound falls to or below ``theta`` cannot improve the top-k.
        """
        if len(self._heap) < self.k:
            return float("-inf")
        return self._heap[0][0]

    def ranked(self) -> List[Any]:
        """Pool contents in decreasing score order (ties: arrival order)."""
        ordered = sorted(self._heap, key=lambda t: (-t[0], t[1]))
        return [item for _score, _serial, item in ordered]


class RankMerger:
    """Merge deduplicated matches from monotone streams into a top-k.

    Unlike :class:`ScoredPool` this keeps *every* distinct offered match
    and resolves ties canonically by ``(-score, match.key())``, so the
    final ranking is a pure function of the offered match *set* -- the
    property that makes sharded results byte-identical regardless of
    shard count, partition strategy or stream arrival order.  The
    bounded memory argument still holds: callers stop offering from a
    stream once :meth:`wants` rejects its bound, so at most
    ``O(k + ties)`` matches per stream are ever gathered.
    """

    __slots__ = ("k", "_by_key", "_scores", "offered", "dedup_hits")

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise SearchError(f"k must be positive, got {k}")
        self.k = k
        self._by_key: dict = {}
        #: Min-heap of the k best scores (for the theta threshold only;
        #: score ties never move theta, so dedup order is irrelevant).
        self._scores: List[float] = []
        self.offered = 0
        self.dedup_hits = 0

    def __len__(self) -> int:
        return len(self._by_key)

    def offer(self, match: Match) -> bool:
        """Add *match*; False (and no effect) if its key was seen before."""
        self.offered += 1
        key = match.key()
        if key in self._by_key:
            self.dedup_hits += 1
            return False
        self._by_key[key] = match
        score = match.score
        if len(self._scores) < self.k:
            heapq.heappush(self._scores, score)
        elif score > self._scores[0]:
            heapq.heapreplace(self._scores, score)
        return True

    def theta(self) -> float:
        """The k-th best distinct score so far; ``-inf`` while underfull."""
        if len(self._scores) < self.k:
            return float("-inf")
        return self._scores[0]

    def wants(self, bound: Optional[float]) -> bool:
        """Can a stream whose next score is ``<= bound`` still contribute?

        True while the pool is underfull, or while ``bound >= theta`` --
        the ``>=`` keeps pulling through score ties at the threshold, so
        every boundary tie is gathered and the canonical tie-break sees
        all contenders (shard-count invariance depends on this).
        A ``None`` bound means the stream has not delivered yet, which
        always warrants a pull.
        """
        if bound is None or len(self._scores) < self.k:
            return True
        return bound >= self._scores[0]

    def results(self) -> List[Match]:
        """Final top-k in decreasing score, ties by ascending match key."""
        ordered = sorted(
            self._by_key.items(), key=lambda kv: (-kv[1].score, kv[0])
        )
        return [match for _key, match in ordered[:self.k]]
