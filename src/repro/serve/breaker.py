"""Per-tenant circuit breaker: closed -> open -> half-open -> closed.

A tenant whose requests keep failing with substrate faults
(:class:`~repro.errors.InjectedFaultError`,
:class:`~repro.errors.DataCorruptionError`,
:class:`~repro.errors.WorkerCrashError`, ...) stops being admitted at
all for a cooldown -- failing fast protects pool capacity for healthy
tenants and stops a poisoned workload from grinding workers.  After the
cooldown a limited number of half-open probes test the waters; one
success recloses the breaker, one failure reopens it.

Deterministic: time is an injectable clock, state transitions are pure
counter arithmetic.  The breaker itself never sleeps or spawns tasks.
"""

from __future__ import annotations

import time
from typing import Callable, Dict

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    Args:
        failure_threshold: consecutive recorded failures that open the
            breaker from closed.
        cooldown_s: how long an open breaker rejects before allowing
            half-open probes.
        half_open_probes: concurrent probe allowance while half-open.
        clock: monotonic time source.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probes_inflight = 0
        self.opened_total = 0
        self.reclosed_total = 0
        self.rejected_total = 0

    @property
    def state(self) -> str:
        """Current state, applying the open -> half-open timeout lazily."""
        if self._state == OPEN and \
                self._clock() - self._opened_at >= self.cooldown_s:
            self._state = HALF_OPEN
            self._probes_inflight = 0
        return self._state

    def allow(self) -> bool:
        """May a request for this tenant proceed right now?

        While half-open, at most ``half_open_probes`` callers that
        received True are in flight; their outcome must be reported via
        :meth:`record_success` / :meth:`record_failure`.
        """
        state = self.state
        if state == CLOSED:
            return True
        if state == HALF_OPEN and \
                self._probes_inflight < self.half_open_probes:
            self._probes_inflight += 1
            return True
        self.rejected_total += 1
        return False

    def retry_after_s(self) -> float:
        """Seconds until the breaker will next allow a probe."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    def record_success(self) -> None:
        """A request for this tenant completed without a substrate fault."""
        if self.state == HALF_OPEN:
            self._state = CLOSED
            self.reclosed_total += 1
        self._consecutive_failures = 0
        self._probes_inflight = 0

    def abandon_probe(self) -> None:
        """An allowed request exited before executing (shed downstream,
        budget derivation failed, cancelled in the queue): return its
        half-open probe slot without recording an outcome, so the
        breaker does not stick half-open with all probes consumed.
        """
        if self._state == HALF_OPEN and self._probes_inflight > 0:
            self._probes_inflight -= 1

    def record_failure(self) -> None:
        """A request failed with a fault-class error."""
        if self.state == HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probes_inflight = 0
        self.opened_total += 1

    def as_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/statz``."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "opened_total": self.opened_total,
            "reclosed_total": self.reclosed_total,
            "rejected_total": self.rejected_total,
        }

    def __repr__(self) -> str:
        return (f"CircuitBreaker(state={self.state!r}, "
                f"failures={self._consecutive_failures}, "
                f"opened={self.opened_total})")
