"""Blocking HTTP client for the query service (stdlib ``http.client``).

Used by the CLI (``repro client``), the chaos harness and the overload
benchmark.  Deliberately synchronous -- load generators run one client
per thread, which keeps the arrival process honest (a slow server
back-pressures the generator unless the generator is open-loop).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.serve.protocol import QueryRequest, QueryResponse


class ServeClient:
    """One keep-alive connection to a serve endpoint.

    Not thread-safe: use one client per thread.
    """

    def __init__(self, host: str, port: int,
                 timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[bytes] = None) -> tuple:
        """One round-trip; transparently reconnects a dropped keep-alive."""
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=body,
                             headers={"Content-Type": "application/json"})
                resp = conn.getresponse()
                data = resp.read()
                return resp.status, dict(resp.getheaders()), data
            except (http.client.HTTPException, ConnectionError, OSError):
                self.close()
                if attempt == 1:
                    raise
        raise ReproError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    def search(self, request: QueryRequest) -> QueryResponse:
        """POST one request to ``/search``."""
        body = json.dumps(request.as_dict()).encode()
        status, headers, data = self._request("POST", "/search", body)
        response = QueryResponse.from_dict(json.loads(data))
        if response.retry_after_s is None and "Retry-After" in headers:
            response.retry_after_s = float(headers["Retry-After"])
        del status  # authoritative state is in the body
        return response

    def batch(self, requests: List[QueryRequest]) -> List[QueryResponse]:
        """POST many requests to ``/batch`` (JSONL), order preserved."""
        body = ("\n".join(json.dumps(r.as_dict()) for r in requests)
                + "\n").encode()
        _status, _headers, data = self._request("POST", "/batch", body)
        return [QueryResponse.from_dict(json.loads(line))
                for line in data.decode().splitlines() if line.strip()]

    def healthz(self) -> Dict[str, Any]:
        _status, _headers, data = self._request("GET", "/healthz")
        return json.loads(data)

    def statz(self) -> Dict[str, Any]:
        _status, _headers, data = self._request("GET", "/statz")
        return json.loads(data)
