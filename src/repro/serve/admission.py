"""Admission control: rate limits, tenant slots, degrade-before-shed.

The controller answers one question per request -- *admit at which
degrade level, or shed?* -- from three signals:

* a per-tenant token bucket (sustained rate + burst);
* per-tenant outstanding-request slots (queued + executing), isolating
  a noisy tenant from the shared queue;
* global queue pressure ``depth / max_queue_depth``, the load-shedding
  state machine::

      pressure   0 ......... W1 ........ W2 ........ W3 ...... SHED .. HARD
      level 0    | level 1   | level 2   | level 3   |  shed   | shed
      (full      | (budgets  | (budgets  | (budgets  |  rank>0 | all
       budgets)  |  x 0.5)   |  x 0.25)  |  x 0.125) |         |

  Lower-priority classes see *shifted* pressure (``+ rank * class_bias``)
  so bronze degrades and sheds before silver, silver before gold; the
  top class is only shed past the hard watermark (queue physically
  full).  Degradation -- anytime mode with shrinking budgets, see
  :func:`repro.runtime.slo.derive_budget_spec` -- always precedes
  rejection: that is the paper's anytime property doing load shedding.

Pure and deterministic: time comes from an injectable clock, decisions
from arithmetic on counters, so every transition is unit-testable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence

from repro.runtime.slo import MAX_DEGRADE_LEVEL


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` cap."""

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock")

    def __init__(self, rate: float, burst: float,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._clock = clock
        self._stamp = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._stamp) * self.rate)
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; False (no partial take) if not."""
        self._refill()
        if self._tokens >= n:
            self._tokens -= n
            return True
        return False

    def retry_after_s(self, n: float = 1.0) -> float:
        """Seconds until *n* tokens will have accumulated."""
        self._refill()
        deficit = n - self._tokens
        if deficit <= 0 or self.rate <= 0:
            return 0.0
        return deficit / self.rate


@dataclass
class Decision:
    """Outcome of one admission check."""

    action: str  # "admit" | "shed"
    degrade_level: int = 0
    reason: Optional[str] = None
    retry_after_s: Optional[float] = None

    @property
    def admitted(self) -> bool:
        return self.action == "admit"


class AdmissionController:
    """Decides admit/degrade/shed; tracks per-tenant outstanding work.

    Args:
        max_queue_depth: admitted-but-waiting requests at which pressure
            reads 1.0.  The top class may overshoot to ``hard_factor *
            max_queue_depth`` before it too is shed.
        degrade_watermarks: ascending pressure thresholds; crossing the
            i-th raises the degrade level to i+1 (capped at
            :data:`MAX_DEGRADE_LEVEL`).
        shed_watermark: pressure at which classes with rank > 0 shed.
        class_bias: pressure shift per priority rank -- lower classes
            hit every watermark earlier.
        tenant_rate / tenant_burst: per-tenant token bucket (None
            disables rate limiting).
        tenant_slots: cap on one tenant's outstanding (queued +
            executing) requests (None disables).  The top class gets
            2x slots: tenant isolation should not starve its own
            interactive traffic behind its batch traffic.
        clock: monotonic time source (injected in tests).
    """

    def __init__(
        self,
        max_queue_depth: int = 64,
        degrade_watermarks: Sequence[float] = (0.25, 0.5, 0.75),
        shed_watermark: float = 0.9,
        hard_factor: float = 1.5,
        class_bias: float = 0.1,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        tenant_slots: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_queue_depth < 1:
            raise ValueError(f"max_queue_depth must be >= 1, "
                             f"got {max_queue_depth}")
        if list(degrade_watermarks) != sorted(degrade_watermarks):
            raise ValueError("degrade_watermarks must be ascending")
        self.max_queue_depth = max_queue_depth
        self.degrade_watermarks = tuple(degrade_watermarks)
        self.shed_watermark = shed_watermark
        self.hard_factor = hard_factor
        self.class_bias = class_bias
        self.tenant_rate = tenant_rate
        self.tenant_burst = (tenant_burst if tenant_burst is not None
                             else (tenant_rate or 0) * 2)
        self.tenant_slots = tenant_slots
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._outstanding: Dict[str, int] = {}
        self.counters: Dict[str, int] = {
            "admitted": 0,
            "degraded": 0,
            "shed_rate_limited": 0,
            "shed_tenant_slots": 0,
            "shed_overload": 0,
        }

    # -- tenant accounting (called by the scheduler around a request) --
    def begin(self, tenant: str) -> None:
        self._outstanding[tenant] = self._outstanding.get(tenant, 0) + 1

    def end(self, tenant: str) -> None:
        left = self._outstanding.get(tenant, 0) - 1
        if left > 0:
            self._outstanding[tenant] = left
        else:
            self._outstanding.pop(tenant, None)

    def outstanding(self, tenant: str) -> int:
        return self._outstanding.get(tenant, 0)

    # -- the decision ---------------------------------------------------
    def pressure(self, queue_depth: int) -> float:
        return queue_depth / self.max_queue_depth

    def degrade_level_for(self, pressure: float, rank: int) -> int:
        """Degrade level for *pressure* seen by a class of *rank*."""
        effective = pressure + rank * self.class_bias
        level = 0
        for mark in self.degrade_watermarks:
            if effective >= mark:
                level += 1
        return min(level, MAX_DEGRADE_LEVEL)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.tenant_rate, self.tenant_burst, clock=self._clock
            )
        return bucket

    def decide(self, tenant: str, rank: int, queue_depth: int) -> Decision:
        """Admit (with a degrade level) or shed one request.

        Evaluation order matters: rate limit first (cheapest signal,
        and a rate-limited tenant must not observe queue state), then
        tenant slots, then global pressure.
        """
        if self.tenant_rate is not None:
            bucket = self._bucket(tenant)
            if not bucket.try_acquire():
                self.counters["shed_rate_limited"] += 1
                return Decision(
                    "shed", reason="rate_limited",
                    retry_after_s=bucket.retry_after_s(),
                )
        if self.tenant_slots is not None:
            slots = self.tenant_slots * (2 if rank == 0 else 1)
            if self.outstanding(tenant) >= slots:
                self.counters["shed_tenant_slots"] += 1
                return Decision("shed", reason="tenant_slots",
                                retry_after_s=0.05)
        pressure = self.pressure(queue_depth)
        effective = pressure + rank * self.class_bias
        hard_full = queue_depth >= self.max_queue_depth * self.hard_factor
        if (effective >= self.shed_watermark and rank > 0) or hard_full:
            self.counters["shed_overload"] += 1
            return Decision("shed", reason="overload",
                            retry_after_s=self._drain_estimate(queue_depth))
        level = self.degrade_level_for(pressure, rank)
        self.counters["admitted"] += 1
        if level > 0:
            self.counters["degraded"] += 1
        return Decision("admit", degrade_level=level)

    def _drain_estimate(self, queue_depth: int) -> float:
        """Crude Retry-After: proportional to the backlog, capped."""
        return min(5.0, 0.1 + queue_depth * 0.01)

    def state(self) -> Dict[str, object]:
        """JSON-safe snapshot for ``/statz``."""
        return {
            "max_queue_depth": self.max_queue_depth,
            "degrade_watermarks": list(self.degrade_watermarks),
            "shed_watermark": self.shed_watermark,
            "counters": dict(self.counters),
            "outstanding": dict(sorted(self._outstanding.items())),
        }
