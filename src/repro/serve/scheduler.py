"""Async scheduling: priority-ordered capacity gate, retries, hedging.

Between admission and the worker pool sits this layer:

* :class:`PriorityGate` -- a counting gate over pool capacity whose
  waiters wake in (rank, arrival) order: gold jumps the queue, FIFO
  within a class.  Its waiter count *is* the queue depth that admission
  reads as pressure.
* :class:`RequestScheduler` -- runs one admitted request to completion:
  per-attempt timeout backstop, exponential-backoff-with-jitter retries
  for fault-class failures (transient fault specs stripped on retry),
  and *hedging* for the top class: if the primary attempt has not
  answered within ``hedge_ms``, a duplicate is raced against it and the
  first valid answer wins.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
from typing import Any, Callable, Dict, Optional

from repro.errors import ReproError, WorkerCrashError
from repro.runtime.slo import SLOClass
from repro.serve.retry import (
    BackoffPolicy,
    is_retryable,
    strip_transient_faults,
)


class PriorityGate:
    """``capacity`` concurrent holders; waiters wake by (rank, seq).

    Not thread-safe -- single event loop only, like all of asyncio.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._active = 0
        self._waiters: list = []  # heap of (rank, seq, future)
        self._seq = itertools.count()

    @property
    def queue_depth(self) -> int:
        """Admitted requests waiting for a slot (= admission pressure)."""
        return sum(1 for _, _, f in self._waiters if not f.done())

    @property
    def active(self) -> int:
        return self._active

    async def acquire(self, rank: int) -> None:
        if self._active < self.capacity and not self._waiters:
            self._active += 1
            return
        future = asyncio.get_running_loop().create_future()
        heapq.heappush(self._waiters, (rank, next(self._seq), future))
        try:
            await future
        except asyncio.CancelledError:
            # Woken and cancelled in the same tick: pass the slot on.
            if future.done() and not future.cancelled():
                self._release_slot()
            raise

    def release(self) -> None:
        self._release_slot()

    def _release_slot(self) -> None:
        self._active -= 1
        while self._waiters:
            _rank, _seq, future = heapq.heappop(self._waiters)
            if not future.done():
                self._active += 1
                future.set_result(None)
                return


class RequestScheduler:
    """Drives one admitted request through the pool with resilience.

    Args:
        pool: a supervised worker pool (``submit(payload) -> Future``).
        backoff: retry backoff policy (deterministic rng injectable).
        timeout_slack_s: added to the doubled budget deadline for the
            per-attempt wall-clock backstop.
        on_retry / on_hedge / on_hedge_win: metric hooks (callables,
            may be None).
    """

    def __init__(
        self,
        pool,
        backoff: Optional[BackoffPolicy] = None,
        timeout_slack_s: float = 1.0,
        on_retry: Optional[Callable[[], None]] = None,
        on_hedge: Optional[Callable[[], None]] = None,
        on_hedge_win: Optional[Callable[[], None]] = None,
    ) -> None:
        self.pool = pool
        self.backoff = backoff if backoff is not None else BackoffPolicy()
        self.timeout_slack_s = timeout_slack_s
        self._on_retry = on_retry
        self._on_hedge = on_hedge
        self._on_hedge_win = on_hedge_win

    # ------------------------------------------------------------------
    def _attempt_timeout_s(self, payload: Dict[str, Any]) -> float:
        spec = payload.get("budget_spec") or {}
        deadline_ms = spec.get("deadline_ms") or 1000.0
        return (deadline_ms / 1000.0) * 2.0 + self.timeout_slack_s

    async def _one_attempt(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One pool round-trip, normalized to a result dict."""
        future = asyncio.wrap_future(self.pool.submit(payload))
        try:
            return await asyncio.wait_for(
                future, timeout=self._attempt_timeout_s(payload))
        except asyncio.TimeoutError:
            return {"ok": False, "error_kind": "Timeout",
                    "error": "attempt exceeded its wall-clock backstop"}
        except WorkerCrashError as exc:
            return {"ok": False, "error_kind": "WorkerCrashError",
                    "error": str(exc)}
        except ReproError as exc:
            return {"ok": False, "error_kind": type(exc).__name__,
                    "error": str(exc)}

    async def _hedged_attempt(
        self, payload: Dict[str, Any], hedge_ms: float,
    ) -> "tuple[Dict[str, Any], bool]":
        """Race a late duplicate against a slow primary attempt.

        Returns ``(result, hedged)`` where ``hedged`` is True only when
        the secondary was actually launched (primary missed the hedge
        window), so the response flag matches ``serve_hedges_total``.
        """
        primary = asyncio.ensure_future(self._one_attempt(payload))
        done, _ = await asyncio.wait({primary}, timeout=hedge_ms / 1000.0)
        if done:
            return primary.result(), False
        if self._on_hedge is not None:
            self._on_hedge()
        secondary = asyncio.ensure_future(self._one_attempt(payload))
        pending = {primary, secondary}
        result: Optional[Dict[str, Any]] = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                outcome = task.result()
                if outcome.get("ok"):
                    if task is secondary and self._on_hedge_win is not None:
                        self._on_hedge_win()
                    for straggler in pending:
                        straggler.cancel()
                    return outcome, True
                result = outcome
        return (result if result is not None else {
            "ok": False, "error_kind": "Unhandled",
            "error": "hedged attempt produced no outcome",
        }), True

    async def execute(self, payload: Dict[str, Any],
                      slo: SLOClass) -> Dict[str, Any]:
        """Run *payload* with the class's retry/hedge policy.

        Returns the final result dict, augmented with ``attempts`` and
        ``hedged`` bookkeeping fields.
        """
        attempts = 0
        hedged = False
        current = payload
        while True:
            attempts += 1
            if slo.hedge_ms is not None:
                result, launched = await self._hedged_attempt(
                    current, slo.hedge_ms)
                hedged = hedged or launched
            else:
                result = await self._one_attempt(current)
            if result.get("ok") or attempts > slo.max_retries or \
                    not is_retryable(result.get("error_kind", "")):
                result = dict(result)
                result["attempts"] = attempts
                result["hedged"] = hedged
                return result
            if self._on_retry is not None:
                self._on_retry()
            # Retries probe a clean path: transient faults are stripped,
            # persistent (repeat=True) faults survive and keep failing.
            current = strip_transient_faults(current)
            delay_ms = self.backoff.delay_ms(attempts - 1)
            if delay_ms > 0:
                await asyncio.sleep(delay_ms / 1000.0)
