"""Supervised worker pools: fork processes that may die, and recover.

The serving layer cannot trust a worker to stay alive: a poisoned
request, an OOM kill or a plain bug can take a process down mid-search.
This module supervises a pool of fork workers end to end:

* each worker owns a private duplex :func:`multiprocessing.Pipe`; the
  dispatcher thread multiplexes all of them (plus a wake socket) with
  :func:`multiprocessing.connection.wait`;
* a worker death is *detected* (its pipe reaches EOF), the task it was
  running is **re-queued once** to a survivor -- with transient fault
  specs stripped (see :func:`repro.serve.retry.strip_transient_faults`),
  so one crashing request cannot serially kill the fleet -- and the pool
  is **replenished** with a freshly forked replacement;
* a task that outlives ``max_requeues`` crashes fails with the typed
  :class:`~repro.errors.WorkerCrashError`.

Work execution inside a worker is the same code path as everywhere
else: parse the query, instantiate the per-request
:class:`~repro.runtime.Budget` from its spec, optionally wrap the
scorer with :func:`repro.runtime.faulty`, run
:meth:`repro.core.framework.Star.search`, and ship back matches plus
the :class:`~repro.runtime.SearchReport` as plain dicts.

On platforms without the fork start method a :class:`ThreadWorkerPool`
offers the same interface (no crash isolation -- a ``crash`` fault
would kill the whole process; documented, not defended).
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import socket
import threading
import traceback
from collections import deque
from concurrent.futures import Future
from multiprocessing import connection
from typing import Any, Dict, List, Optional

from repro.core.framework import Star
from repro.errors import ReproError, WorkerCrashError
from repro.perf.parallel import fork_available
from repro.runtime.budget import Budget
from repro.runtime.faults import FaultSpec, faulty
from repro.serve.retry import strip_transient_faults
from repro.similarity.scoring import ScoringFunction


class EngineContext:
    """Per-process (or per-thread) engine state for payload execution.

    ``engine_opts`` may carry sharding keys (``shards``, ``partition``,
    ``shard_backend``) in addition to :class:`Star` kwargs: with
    ``shards`` set, the context builds a
    :class:`~repro.shard.ShardedEngine` instead.  The shard backend
    defaults to ``serial`` here -- serve workers are already one process
    per slot, so per-payload shard scoping (smaller pivot scans) is the
    win, not nested process pools.
    """

    def __init__(self, graph, config=None,
                 engine_opts: Optional[Dict[str, Any]] = None) -> None:
        self.graph = graph
        self.config = config
        self.engine_opts = dict(engine_opts or {})
        self.scorer = ScoringFunction(graph, config)
        # ``mmap_store``: attach the RKGS2 store's index columns to this
        # worker's scorer (post-fork, so every worker maps the same file
        # instead of copying index pages through fork CoW).
        mmap_store = self.engine_opts.pop("mmap_store", None)
        if mmap_store is not None \
                and self.engine_opts.get("use_index") != "off":
            from repro.store.attach import attach_mmap_index

            self.scorer.graph_index = attach_mmap_index(
                mmap_store, graph,
                mode=self.engine_opts.get("use_index", "auto"))
        if mmap_store is not None \
                and self.engine_opts.get("use_semantic", "auto") != "off":
            from repro.store.attach import attach_mmap_semantic

            self.scorer.semantic_tier = attach_mmap_semantic(
                mmap_store, graph,
                mode=self.engine_opts.get("use_semantic", "auto"))
        shards = self.engine_opts.pop("shards", None)
        self.shard_opts: Optional[Dict[str, Any]] = None
        if shards is not None:
            self.shard_opts = {
                "shards": shards,
                "partition": self.engine_opts.pop("partition", "hash"),
                "backend": self.engine_opts.pop("shard_backend", "serial"),
            }
            from repro.shard import ShardedEngine

            self.engine = ShardedEngine(
                graph, scorer=self.scorer, **self.shard_opts,
                **self.engine_opts,
            )
        else:
            self.engine = Star(graph, scorer=self.scorer,
                               **self.engine_opts)

    def engine_for(self, fault_specs: Optional[List[dict]]) -> Star:
        """The shared engine, or a faulty-wrapped one for chaos requests.

        Chaos requests always run on a plain single-process engine:
        fault injection wraps the scorer, and a sharded engine's fork
        workers would not see the wrapper.
        """
        if not fault_specs:
            return self.engine
        specs = [FaultSpec.from_dict(s) for s in fault_specs]
        return Star(self.graph, scorer=faulty(self.scorer, specs=specs),
                    **self.engine_opts)


def execute_payload(ctx: EngineContext, payload: Dict[str, Any]) \
        -> Dict[str, Any]:
    """Run one task payload; always returns a structured result dict.

    Payload keys: ``query`` (edge-pattern text), ``k``, optional
    ``budget_spec`` (Budget kwargs) and ``fault_specs`` (list of
    :meth:`FaultSpec.as_dict` dicts).  A ``"crash"`` fault spec kills
    the process here -- that is the supervised failure the pool exists
    to recover from.
    """
    from repro.query.parser import parse_query

    try:
        engine = ctx.engine_for(payload.get("fault_specs"))
        query = parse_query(payload["query"].replace(";", "\n"),
                            name=payload.get("name", "serve"))
        budget_spec = payload.get("budget_spec")
        budget = Budget(**budget_spec) if budget_spec else None
        matches = engine.search(query, payload.get("k", 5), budget=budget)
        report = engine.last_report
        return {
            "ok": True,
            "matches": [
                {"assignment": {str(q): v
                                for q, v in sorted(m.assignment.items())},
                 "score": m.score}
                for m in matches
            ],
            "report": (dataclasses.asdict(report)
                       if report is not None else None),
            "degraded": bool(report is not None and report.degraded),
        }
    except ReproError as exc:
        return {"ok": False, "error_kind": type(exc).__name__,
                "error": str(exc)}
    except Exception as exc:  # never let a raw exception cross unlabeled
        return {"ok": False, "error_kind": "Unhandled",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=8)}


def _worker_main(conn, graph, config, engine_opts) -> None:
    """Fork-worker loop: recv task, execute, send result, repeat."""
    ctx = EngineContext(graph, config, engine_opts)
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        task_id, payload = msg
        result = execute_payload(ctx, payload)
        try:
            conn.send((task_id, result))
        except (BrokenPipeError, OSError):
            break


class _Task:
    __slots__ = ("task_id", "payload", "future", "crashes")

    def __init__(self, task_id: int, payload: Dict[str, Any],
                 future: Future) -> None:
        self.task_id = task_id
        self.payload = payload
        self.future = future
        self.crashes = 0


class _Worker:
    __slots__ = ("proc", "conn", "task")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.task: Optional[_Task] = None


class ForkWorkerPool:
    """A supervised pool of fork worker processes.

    Args:
        graph / config / engine_opts: inherited by workers through fork
            (never pickled) and used to build one engine per process.
        size: worker process count.
        max_requeues: crash re-queues one task may consume before its
            future fails with :class:`WorkerCrashError`.
    """

    backend = "fork"

    def __init__(self, graph, config=None,
                 engine_opts: Optional[Dict[str, Any]] = None,
                 size: int = 2, max_requeues: int = 1) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self._graph = graph
        self._config = config
        self._engine_opts = dict(engine_opts or {})
        self.size = size
        self.max_requeues = max_requeues
        self._ctx = multiprocessing.get_context("fork")
        self._lock = threading.Lock()
        self._workers: List[_Worker] = []
        self._pending: deque = deque()
        self._ids = itertools.count()
        self._closing = False
        self._started = False
        self._dispatcher: Optional[threading.Thread] = None
        self._wake_r: Optional[socket.socket] = None
        self._wake_w: Optional[socket.socket] = None
        # Supervision counters (exported by stats()).
        self.tasks_done = 0
        self.worker_crashes = 0
        self.requeued = 0
        self.crash_failures = 0
        self.replacements = 0

    # ------------------------------------------------------------------
    def start(self) -> "ForkWorkerPool":
        if self._started:
            return self
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        for _ in range(self.size):
            self._workers.append(self._spawn())
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="serve-pool-dispatcher",
            daemon=True,
        )
        self._started = True
        self._dispatcher.start()
        return self

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self._graph, self._config, self._engine_opts),
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    def submit(self, payload: Dict[str, Any]) -> Future:
        """Enqueue one task; thread-safe; resolves with the result dict."""
        future: Future = Future()
        with self._lock:
            if self._closing or not self._started:
                future.set_exception(ReproError("worker pool is not running"))
                return future
            self._pending.append(_Task(next(self._ids), payload, future))
        self._wake()
        return future

    def _wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except (BlockingIOError, OSError):
            pass  # wake channel saturated or closing: dispatcher is awake

    # ------------------------------------------------------------------
    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                if self._closing:
                    break
                conns = {w.conn: w for w in self._workers}
            ready = connection.wait(
                list(conns) + [self._wake_r], timeout=0.5
            )
            with self._lock:
                for obj in ready:
                    if obj is self._wake_r:
                        try:
                            while self._wake_r.recv(4096):
                                pass
                        except (BlockingIOError, OSError):
                            pass
                        continue
                    worker = conns.get(obj)
                    if worker is None or worker not in self._workers:
                        continue
                    self._drain_worker(worker)
                self._assign()
        self._fail_pending(ReproError("worker pool stopped"))

    def _drain_worker(self, worker: _Worker) -> None:
        try:
            task_id, result = worker.conn.recv()
        except (EOFError, OSError):
            self._handle_death(worker)
            return
        task = worker.task
        worker.task = None
        self.tasks_done += 1
        if task is not None and task.task_id == task_id:
            if not task.future.cancelled():
                task.future.set_result(result)
        # A result for a stale task id (pre-crash duplicate) is dropped.

    def _handle_death(self, worker: _Worker) -> None:
        """A worker's pipe hit EOF: account, re-queue, replenish."""
        self.worker_crashes += 1
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.proc.join(timeout=1.0)
        if worker in self._workers:
            self._workers.remove(worker)
        task = worker.task
        worker.task = None
        if task is not None:
            task.crashes += 1
            if task.crashes <= self.max_requeues:
                # Recovery path: strip transient/crash faults so the
                # re-queued task cannot kill the survivor too.
                task.payload = strip_transient_faults(task.payload)
                self._pending.appendleft(task)
                self.requeued += 1
            else:
                self.crash_failures += 1
                if not task.future.cancelled():
                    task.future.set_exception(WorkerCrashError(
                        f"worker died {task.crashes} time(s) executing "
                        f"task {task.task_id} "
                        f"(exitcode {worker.proc.exitcode})"
                    ))
        if not self._closing:
            self._workers.append(self._spawn())
            self.replacements += 1

    def _assign(self) -> None:
        idle = [w for w in self._workers if w.task is None]
        while self._pending and idle:
            worker = idle.pop()
            task = self._pending.popleft()
            if task.future.cancelled():
                idle.append(worker)
                continue
            worker.task = task
            try:
                worker.conn.send((task.task_id, task.payload))
            except (BrokenPipeError, OSError):
                self._handle_death(worker)
                idle = [w for w in self._workers if w.task is None]

    def _fail_pending(self, exc: Exception) -> None:
        with self._lock:
            tasks = list(self._pending)
            self._pending.clear()
            for worker in self._workers:
                if worker.task is not None:
                    tasks.append(worker.task)
                    worker.task = None
        for task in tasks:
            if not task.future.done():
                task.future.set_exception(exc)

    # ------------------------------------------------------------------
    def stop(self) -> None:
        if not self._started or self._closing:
            return
        with self._lock:
            self._closing = True
        self._wake()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5.0)
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
            worker.proc.join(timeout=1.0)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=1.0)
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers.clear()
        for sock in (self._wake_r, self._wake_w):
            if sock is not None:
                sock.close()

    def alive(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers if w.proc.is_alive())

    def stats(self) -> Dict[str, int]:
        """JSON-safe supervision counters for ``/statz``."""
        return {
            "backend": self.backend,
            "size": self.size,
            "alive": self.alive(),
            "tasks_done": self.tasks_done,
            "worker_crashes": self.worker_crashes,
            "requeued": self.requeued,
            "crash_failures": self.crash_failures,
            "replacements": self.replacements,
        }


class ThreadWorkerPool:
    """Thread fallback with the fork pool's interface.

    No crash isolation: a ``crash`` fault here would take the whole
    process down.  Exists so the server runs on platforms without fork.
    """

    backend = "thread"

    def __init__(self, graph, config=None,
                 engine_opts: Optional[Dict[str, Any]] = None,
                 size: int = 2, max_requeues: int = 1) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self._graph = graph
        self._config = config
        self._engine_opts = dict(engine_opts or {})
        self.size = size
        self._local = threading.local()
        self._executor = None
        self.tasks_done = 0
        self.worker_crashes = 0
        self.requeued = 0
        self.crash_failures = 0
        self.replacements = 0

    def start(self) -> "ThreadWorkerPool":
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.size, thread_name_prefix="serve-worker"
            )
        return self

    def _run(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        ctx = getattr(self._local, "ctx", None)
        if ctx is None:
            ctx = EngineContext(self._graph, self._config, self._engine_opts)
            self._local.ctx = ctx
        result = execute_payload(ctx, payload)
        self.tasks_done += 1
        return result

    def submit(self, payload: Dict[str, Any]) -> Future:
        if self._executor is None:
            future: Future = Future()
            future.set_exception(ReproError("worker pool is not running"))
            return future
        return self._executor.submit(self._run, payload)

    def stop(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    def alive(self) -> int:
        return self.size if self._executor is not None else 0

    def stats(self) -> Dict[str, int]:
        return {
            "backend": self.backend,
            "size": self.size,
            "alive": self.alive(),
            "tasks_done": self.tasks_done,
            "worker_crashes": 0,
            "requeued": 0,
            "crash_failures": 0,
            "replacements": 0,
        }


def make_pool(graph, config=None, engine_opts=None, size: int = 2,
              backend: str = "auto", max_requeues: int = 1):
    """Build the right pool for this platform (fork where available)."""
    if backend not in ("auto", "fork", "thread"):
        raise ReproError(
            f"unknown pool backend {backend!r} (auto, fork or thread)")
    use_fork = backend == "fork" or (backend == "auto" and fork_available())
    if use_fork and not fork_available():
        use_fork = False
    cls = ForkWorkerPool if use_fork else ThreadWorkerPool
    return cls(graph, config=config, engine_opts=engine_opts, size=size,
               max_requeues=max_requeues)
