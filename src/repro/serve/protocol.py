"""Wire protocol of the query service: request/response JSON shapes.

One request describes one top-k search plus its service envelope
(tenant, priority class, execution mode).  Requests arrive as JSON
bodies on ``POST /search`` or as one-JSON-object-per-line on
``POST /batch``; responses mirror the same shape back.  Everything is
stdlib-JSON-safe and deliberately flat so the chaos harness, the CLI
client and tests can craft requests by hand.

Validation is strict at the boundary: a malformed request raises
:class:`~repro.errors.QueryError` *before* touching admission, so bad
input can never consume a pool slot or trip a breaker.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import QueryError
from repro.runtime.faults import FaultSpec
from repro.runtime.slo import MODES

#: Response statuses.  ``ok`` and ``degraded`` are successful answers
#: (degraded = anytime-flagged best-so-far); ``shed`` is an admission
#: reject; ``error`` a structured failure.
STATUSES = ("ok", "degraded", "shed", "error")


@dataclass
class QueryRequest:
    """One search request as received on the wire.

    Args:
        query: edge-pattern query text (see :mod:`repro.query.parser`).
        k: result size.
        request_id: caller-chosen correlation id, echoed back.
        tenant: accounting/isolation key for slots, rate and breaker.
        priority: SLO class name (``gold`` / ``silver`` / ``bronze``).
        mode: ``anytime`` (default) or ``exact``.
        timeout_ms: optional per-request deadline override (tightening
            only -- the class deadline is the ceiling).
        fault_specs: chaos-only injected faults, executed in the worker.
    """

    query: str
    k: int = 5
    request_id: str = ""
    tenant: str = "default"
    priority: str = "silver"
    mode: str = "anytime"
    timeout_ms: Optional[float] = None
    fault_specs: List[FaultSpec] = field(default_factory=list)

    @classmethod
    def from_dict(cls, data: Any) -> "QueryRequest":
        """Parse and validate one request object.

        Raises:
            QueryError: on a non-object body, missing/empty query text,
                non-positive k, unknown mode, or malformed fault specs.
        """
        if not isinstance(data, dict):
            raise QueryError(f"request body must be a JSON object, "
                             f"got {type(data).__name__}")
        unknown = set(data) - {
            "query", "k", "request_id", "id", "tenant", "priority", "mode",
            "timeout_ms", "fault_specs",
        }
        if unknown:
            raise QueryError(f"unknown request field(s): {sorted(unknown)}")
        query = data.get("query")
        if not isinstance(query, str) or not query.strip():
            raise QueryError("request needs a non-empty 'query' string")
        try:
            k = int(data.get("k", 5))
        except (TypeError, ValueError):
            raise QueryError(f"k must be an integer, got {data.get('k')!r}") \
                from None
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        mode = data.get("mode", "anytime")
        if mode not in MODES:
            raise QueryError(f"unknown mode {mode!r}; choose from {MODES}")
        timeout_ms = data.get("timeout_ms")
        if timeout_ms is not None:
            try:
                timeout_ms = float(timeout_ms)
            except (TypeError, ValueError):
                raise QueryError(
                    f"timeout_ms must be a number, got {timeout_ms!r}"
                ) from None
            if timeout_ms <= 0:
                raise QueryError(f"timeout_ms must be > 0, got {timeout_ms}")
        raw_specs = data.get("fault_specs") or []
        if not isinstance(raw_specs, list):
            raise QueryError("fault_specs must be a list of objects")
        try:
            specs = [FaultSpec.from_dict(s) for s in raw_specs]
        except Exception as exc:  # SearchError et al. -> boundary error
            raise QueryError(f"bad fault_specs: {exc}") from None
        return cls(
            query=query,
            k=k,
            request_id=str(data.get("request_id", data.get("id", ""))),
            tenant=str(data.get("tenant", "default")) or "default",
            priority=str(data.get("priority", "silver")),
            mode=mode,
            timeout_ms=timeout_ms,
            fault_specs=specs,
        )

    @classmethod
    def from_json(cls, text: str) -> "QueryRequest":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise QueryError(f"request body is not valid JSON: {exc}") \
                from None
        return cls.from_dict(data)

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "query": self.query, "k": self.k, "tenant": self.tenant,
            "priority": self.priority, "mode": self.mode,
        }
        if self.request_id:
            out["request_id"] = self.request_id
        if self.timeout_ms is not None:
            out["timeout_ms"] = self.timeout_ms
        if self.fault_specs:
            out["fault_specs"] = [s.as_dict() for s in self.fault_specs]
        return out


@dataclass
class QueryResponse:
    """One search response as sent on the wire.

    ``matches`` rows are ``{"assignment": {qid: data_node_id}, "score":
    float}``; ``report`` is the :class:`SearchReport`-shaped dict from
    the worker (None for sheds and pre-execution errors).
    """

    status: str
    request_id: str = ""
    matches: List[Dict[str, Any]] = field(default_factory=list)
    report: Optional[Dict[str, Any]] = None
    degrade_level: int = 0
    attempts: int = 0
    hedged: bool = False
    reason: Optional[str] = None
    retry_after_s: Optional[float] = None
    error_kind: Optional[str] = None
    error: Optional[str] = None
    elapsed_ms: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "status": self.status,
            "request_id": self.request_id,
            "degrade_level": self.degrade_level,
            "attempts": self.attempts,
            "elapsed_ms": round(self.elapsed_ms, 3),
        }
        if self.status in ("ok", "degraded"):
            out["matches"] = self.matches
            out["report"] = self.report
        if self.hedged:
            out["hedged"] = True
        if self.reason is not None:
            out["reason"] = self.reason
        if self.retry_after_s is not None:
            out["retry_after_s"] = round(self.retry_after_s, 3)
        if self.error_kind is not None:
            out["error_kind"] = self.error_kind
            out["error"] = self.error
        return out

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueryResponse":
        """Rehydrate a response dict (client side)."""
        return cls(
            status=data.get("status", "error"),
            request_id=data.get("request_id", ""),
            matches=data.get("matches", []) or [],
            report=data.get("report"),
            degrade_level=int(data.get("degrade_level", 0)),
            attempts=int(data.get("attempts", 0)),
            hedged=bool(data.get("hedged", False)),
            reason=data.get("reason"),
            retry_after_s=data.get("retry_after_s"),
            error_kind=data.get("error_kind"),
            error=data.get("error"),
            elapsed_ms=float(data.get("elapsed_ms", 0.0)),
        )

    @property
    def answered(self) -> bool:
        """True for a valid (possibly degraded) result payload."""
        return self.status in ("ok", "degraded")


def http_status_for(response: QueryResponse) -> int:
    """Map a response to its HTTP status code.

    Validation failures (``error_kind == "QueryError"``: bad JSON,
    missing query, unknown priority/mode, ...) are the client's fault
    and map to 400; only execution-side failures are 500.
    """
    if response.answered:
        return 200
    if response.status == "shed":
        return 503 if response.reason == "breaker_open" else 429
    if response.error_kind == "QueryError":
        return 400
    return 500
