"""The async query service: admission -> schedule -> execute -> respond.

:class:`ServeApp` is the loop-agnostic application core -- parse,
breaker check, admission decision, budget derivation, priority-gated
execution with retries/hedging, breaker/metric accounting.  Around it,
a deliberately small stdlib-only HTTP layer (:func:`serve_forever`,
:class:`ServerHandle`) speaks just enough HTTP/1.1 for the four
endpoints:

* ``GET /healthz`` -- liveness + worker census (cheap, no admission);
* ``GET /statz``   -- metrics, admission, breaker and pool snapshots;
* ``POST /search`` -- one JSON request, one JSON response;
* ``POST /batch``  -- JSONL in, JSONL out, order preserved, each line
  admitted independently.

Request lifecycle (the admission state machine)::

    parse --400--> | breaker --503--> | admission --429--> |
      admit(level) -> derive budget -> priority gate -> pool attempt(s)
      -> ok / degraded / error  (+ breaker & metric accounting)

Degradation always precedes rejection: rising queue pressure shrinks
budgets (anytime flagged results) levels before the shed watermark
rejects anyone, and the top class is shed only when the queue is
physically full.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import QueryError, ReproError
from repro.obs import MetricsRegistry
from repro.runtime.slo import (
    SLO_CLASSES,
    derive_budget_spec,
    resolve_slo,
)
from repro.serve.admission import AdmissionController
from repro.serve.breaker import CircuitBreaker
from repro.serve.protocol import QueryRequest, QueryResponse, http_status_for
from repro.serve.retry import BackoffPolicy
from repro.serve.scheduler import PriorityGate, RequestScheduler
from repro.serve.supervisor import make_pool

#: Error kinds that count as substrate faults for the circuit breaker.
BREAKER_FAULT_KINDS = frozenset((
    "InjectedFaultError",
    "DataCorruptionError",
    "SnapshotCorruptionError",
    "WorkerCrashError",
    "Unhandled",
))


class ServeApp:
    """Application core of the query service.

    Args:
        graph / config / engine_opts: search substrate, shared with pool
            workers through fork.
        workers: pool size; also the concurrency of the priority gate.
        backend: pool backend (``auto`` / ``fork`` / ``thread``).
        max_queue_depth / tenant_rate / tenant_burst / tenant_slots:
            admission knobs (see :class:`AdmissionController`).
        breaker_threshold / breaker_cooldown_s: per-tenant circuit
            breaker knobs.
        slo_classes: priority class table (default ``SLO_CLASSES``).
    """

    def __init__(
        self,
        graph,
        config=None,
        engine_opts: Optional[Dict[str, Any]] = None,
        workers: int = 2,
        backend: str = "auto",
        max_queue_depth: int = 64,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        tenant_slots: Optional[int] = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 1.0,
        slo_classes: Optional[Dict[str, Any]] = None,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.graph = graph
        self.config = config
        self.workers = workers
        self.slo_classes = dict(slo_classes or SLO_CLASSES)
        self.pool = make_pool(graph, config=config, engine_opts=engine_opts,
                              size=workers, backend=backend)
        self.admission = AdmissionController(
            max_queue_depth=max_queue_depth,
            tenant_rate=tenant_rate,
            tenant_burst=tenant_burst,
            tenant_slots=tenant_slots,
        )
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.gate = PriorityGate(capacity=workers)
        self.metrics = MetricsRegistry()
        self.scheduler = RequestScheduler(
            self.pool,
            backoff=backoff,
            on_retry=self.metrics.counter("serve_retries_total").inc,
            on_hedge=self.metrics.counter("serve_hedges_total").inc,
            on_hedge_win=self.metrics.counter("serve_hedge_wins_total").inc,
        )
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> "ServeApp":
        if not self._started:
            self.pool.start()
            self._started = True
        return self

    def stop(self) -> None:
        if self._started:
            self.pool.stop()
            self._started = False

    def breaker(self, tenant: str) -> CircuitBreaker:
        breaker = self._breakers.get(tenant)
        if breaker is None:
            breaker = self._breakers[tenant] = CircuitBreaker(
                failure_threshold=self.breaker_threshold,
                cooldown_s=self.breaker_cooldown_s,
            )
        return breaker

    # ------------------------------------------------------------------
    async def handle_request(self, request: QueryRequest) -> QueryResponse:
        """Run one parsed request through the full admission pipeline."""
        start = time.monotonic()
        self.metrics.counter("serve_requests_total").inc()
        try:
            slo = resolve_slo(request.priority, self.slo_classes)
        except ReproError as exc:
            return self._finish(request, start, QueryResponse(
                status="error", error_kind="QueryError", error=str(exc)))

        breaker = self.breaker(request.tenant)
        if not breaker.allow():
            self.metrics.counter("serve_breaker_rejects_total").inc()
            return self._finish(request, start, QueryResponse(
                status="shed", reason="breaker_open",
                retry_after_s=breaker.retry_after_s()))

        # From here on the request holds a half-open probe slot (when the
        # breaker is half-open); every exit must either record an outcome
        # or abandon the probe, else the breaker sticks half-open with
        # all probes consumed and locks the tenant out forever.
        probe_settled = False
        try:
            decision = self.admission.decide(
                request.tenant, slo.rank, self.gate.queue_depth)
            if not decision.admitted:
                self.metrics.counter("serve_shed_total").inc()
                self.metrics.counter(
                    f"serve_shed_{decision.reason}_total").inc()
                return self._finish(request, start, QueryResponse(
                    status="shed", reason=decision.reason,
                    retry_after_s=decision.retry_after_s))

            try:
                budget_spec = derive_budget_spec(
                    slo, decision.degrade_level, mode=request.mode,
                    deadline_override_ms=request.timeout_ms)
            except ReproError as exc:
                return self._finish(request, start, QueryResponse(
                    status="error", error_kind="QueryError",
                    error=str(exc)))

            payload: Dict[str, Any] = {
                "query": request.query,
                "k": request.k,
                "budget_spec": budget_spec,
            }
            if request.fault_specs:
                payload["fault_specs"] = [s.as_dict()
                                          for s in request.fault_specs]

            self.admission.begin(request.tenant)
            try:
                await self.gate.acquire(slo.rank)
                self.metrics.gauge("serve_queue_depth").set(
                    self.gate.queue_depth)
                try:
                    result = await self.scheduler.execute(payload, slo)
                finally:
                    self.gate.release()
            finally:
                self.admission.end(request.tenant)

            if result.get("ok"):
                breaker.record_success()
                probe_settled = True
                degraded = bool(result.get("degraded")) or \
                    decision.degrade_level > 0
                status = "degraded" if degraded else "ok"
                self.metrics.counter("serve_answered_total").inc()
                if degraded:
                    self.metrics.counter("serve_degraded_total").inc()
                response = QueryResponse(
                    status=status,
                    matches=result.get("matches", []),
                    report=result.get("report"),
                    degrade_level=decision.degrade_level,
                    attempts=result.get("attempts", 1),
                    hedged=bool(result.get("hedged")),
                )
            else:
                error_kind = result.get("error_kind", "Unhandled")
                if error_kind in BREAKER_FAULT_KINDS:
                    breaker.record_failure()
                    probe_settled = True
                self.metrics.counter("serve_errors_total").inc()
                response = QueryResponse(
                    status="error",
                    degrade_level=decision.degrade_level,
                    attempts=result.get("attempts", 1),
                    hedged=bool(result.get("hedged")),
                    error_kind=error_kind,
                    error=result.get("error"),
                )
            return self._finish(request, start, response)
        finally:
            if not probe_settled:
                breaker.abandon_probe()

    def _finish(self, request: QueryRequest, start: float,
                response: QueryResponse) -> QueryResponse:
        response.request_id = request.request_id
        response.elapsed_ms = (time.monotonic() - start) * 1000.0
        self.metrics.histogram(
            f"serve_latency_ms_{request.priority}"
        ).observe(response.elapsed_ms)
        self.metrics.counter(f"serve_status_{response.status}_total").inc()
        return response

    async def handle_search_body(self, body: str) -> QueryResponse:
        """Parse-and-handle one ``POST /search`` body."""
        try:
            request = QueryRequest.from_json(body)
        except QueryError as exc:
            self.metrics.counter("serve_bad_requests_total").inc()
            return QueryResponse(status="error", error_kind="QueryError",
                                 error=str(exc))
        return await self.handle_request(request)

    async def handle_batch_body(self, body: str) -> List[QueryResponse]:
        """Handle one ``POST /batch`` JSONL body, preserving line order.

        Every line is admitted independently and runs concurrently --
        a batch is just a burst of single requests sharing a socket.
        """
        lines = [ln for ln in body.splitlines() if ln.strip()]
        return list(await asyncio.gather(
            *(self.handle_search_body(line) for line in lines)))

    # ------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        alive = self.pool.alive()
        return {
            "status": "ok" if alive > 0 else "degraded",
            "workers_alive": alive,
            "workers": self.workers,
            "backend": self.pool.backend,
        }

    def statz(self) -> Dict[str, Any]:
        """Full observability snapshot: every shed/degrade/retry/breaker/
        crash event of the service's lifetime is visible here."""
        return {
            "metrics": self.metrics.as_dict(),
            "admission": self.admission.state(),
            "queue": {
                "depth": self.gate.queue_depth,
                "active": self.gate.active,
                "capacity": self.gate.capacity,
            },
            "breakers": {tenant: b.as_dict()
                         for tenant, b in sorted(self._breakers.items())},
            "pool": self.pool.stats(),
            "slo_classes": {
                name: {"rank": s.rank, "deadline_ms": s.deadline_ms,
                       "max_retries": s.max_retries, "hedge_ms": s.hedge_ms}
                for name, s in sorted(self.slo_classes.items())
            },
        }


# ----------------------------------------------------------------------
# HTTP layer (stdlib-only, hand-rolled HTTP/1.1 subset)
# ----------------------------------------------------------------------

_MAX_BODY = 16 * 1024 * 1024
_MAX_HEADER = 64 * 1024


async def _read_request(reader: asyncio.StreamReader) \
        -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
    """Read one request; None on clean EOF; ValueError on a bad one."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ValueError("truncated request head") from None
    except asyncio.LimitOverrunError:
        raise ValueError("request head too large") from None
    if len(head) > _MAX_HEADER:
        raise ValueError("request head too large")
    text = head.decode("latin-1")
    request_line, _, header_block = text.partition("\r\n")
    parts = request_line.split()
    if len(parts) != 3:
        raise ValueError(f"malformed request line: {request_line!r}")
    method, path, _version = parts
    headers: Dict[str, str] = {}
    for line in header_block.split("\r\n"):
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length < 0 or length > _MAX_BODY:
        raise ValueError(f"unacceptable content-length {length}")
    body = await reader.readexactly(length) if length else b""
    return method, path, headers, body


def _response_bytes(status: int, payload: bytes,
                    content_type: str = "application/json",
                    extra_headers: Optional[Dict[str, str]] = None) -> bytes:
    reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
               405: "Method Not Allowed", 429: "Too Many Requests",
               500: "Internal Server Error", 503: "Service Unavailable"}
    lines = [
        f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(payload)}",
        "Connection: keep-alive",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + payload


def _retry_after_header(response: QueryResponse) -> Dict[str, str]:
    if response.retry_after_s is None:
        return {}
    return {"Retry-After": f"{max(response.retry_after_s, 0.0):.3f}"}


async def _handle_connection(app: ServeApp,
                             reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
    try:
        while True:
            try:
                parsed = await _read_request(reader)
            except (ValueError, asyncio.IncompleteReadError):
                writer.write(_response_bytes(
                    400, b'{"error": "malformed HTTP request"}'))
                await writer.drain()
                break
            if parsed is None:
                break
            method, path, _headers, body = parsed
            out = await _dispatch(app, method, path, body)
            writer.write(out)
            await writer.drain()
    except (ConnectionResetError, BrokenPipeError):
        pass
    except asyncio.CancelledError:
        pass  # server shutdown reaps parked keep-alive connections
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError,
                RuntimeError, asyncio.CancelledError):
            pass


async def _dispatch(app: ServeApp, method: str, path: str,
                    body: bytes) -> bytes:
    path = path.split("?", 1)[0]
    if path == "/healthz":
        if method != "GET":
            return _response_bytes(405, b'{"error": "use GET"}')
        return _response_bytes(
            200, json.dumps(app.healthz(), sort_keys=True).encode())
    if path == "/statz":
        if method != "GET":
            return _response_bytes(405, b'{"error": "use GET"}')
        return _response_bytes(
            200, json.dumps(app.statz(), sort_keys=True).encode())
    if path == "/search":
        if method != "POST":
            return _response_bytes(405, b'{"error": "use POST"}')
        response = await app.handle_search_body(
            body.decode("utf-8", errors="replace"))
        return _response_bytes(
            http_status_for(response), response.to_json().encode(),
            extra_headers=_retry_after_header(response))
    if path == "/batch":
        if method != "POST":
            return _response_bytes(405, b'{"error": "use POST"}')
        responses = await app.handle_batch_body(
            body.decode("utf-8", errors="replace"))
        payload = "\n".join(r.to_json() for r in responses) + "\n"
        # A batch is 200 end-to-end; per-line status lives in each line.
        return _response_bytes(200, payload.encode(),
                               content_type="application/jsonl")
    return _response_bytes(404, b'{"error": "unknown path"}')


async def serve_forever(app: ServeApp, host: str = "127.0.0.1",
                        port: int = 8571,
                        ready: Optional[Callable] = None) -> None:
    """Run the HTTP server until cancelled (CLI entry point)."""
    app.start()
    server = await asyncio.start_server(
        lambda r, w: _handle_connection(app, r, w), host=host, port=port)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready(bound)
    try:
        async with server:
            await server.serve_forever()
    finally:
        app.stop()


class ServerHandle:
    """A serve app running on a background thread (tests, chaos, bench).

    Binds port 0 by default so parallel test runs never collide; the
    resolved address is available after :meth:`start` as ``.address``.
    """

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self.address: Optional[Tuple[str, int]] = None
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._task: Optional[asyncio.Task] = None

    def start(self, timeout_s: float = 10.0) -> "ServerHandle":
        if self._thread is not None:
            return self

        def _run() -> None:
            loop = asyncio.new_event_loop()
            self._loop = loop
            asyncio.set_event_loop(loop)

            def _on_ready(bound) -> None:
                self.address = (bound[0], bound[1])
                self._ready.set()

            self._task = loop.create_task(serve_forever(
                self.app, host=self.host, port=self.port, ready=_on_ready))
            try:
                loop.run_until_complete(self._task)
            except asyncio.CancelledError:
                pass
            finally:
                # Reap connection handlers still parked on a keep-alive
                # read so the loop closes without "pending task" noise.
                leftovers = asyncio.all_tasks(loop)
                for task in leftovers:
                    task.cancel()
                if leftovers:
                    loop.run_until_complete(asyncio.gather(
                        *leftovers, return_exceptions=True))
                loop.close()

        self._thread = threading.Thread(target=_run, name="serve-http",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=timeout_s):
            raise ReproError("server did not become ready in time")
        return self

    def stop(self, timeout_s: float = 10.0) -> None:
        if self._thread is None or self._loop is None:
            return
        loop, task = self._loop, self._task

        def _cancel() -> None:
            if task is not None:
                task.cancel()

        loop.call_soon_threadsafe(_cancel)
        self._thread.join(timeout=timeout_s)
        self._thread = None
        self._loop = None
        self._task = None

    def __enter__(self) -> "ServerHandle":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
