"""repro.serve -- async query service with admission control.

Layers (each importable and testable on its own):

* :mod:`repro.serve.protocol` -- wire shapes (requests, responses);
* :mod:`repro.serve.admission` -- rate limits, tenant slots and the
  degrade-before-shed pressure state machine;
* :mod:`repro.serve.breaker` -- per-tenant circuit breakers;
* :mod:`repro.serve.retry` -- backoff policy and transient-fault
  stripping;
* :mod:`repro.serve.scheduler` -- priority gate, retries, hedging;
* :mod:`repro.serve.supervisor` -- supervised fork worker pools with
  crash detection, re-queue and replenishment;
* :mod:`repro.serve.server` -- the application core and the stdlib
  HTTP layer;
* :mod:`repro.serve.client` -- blocking HTTP client;
* :mod:`repro.serve.chaos` -- overload/fault acceptance harness.
"""

from repro.serve.admission import AdmissionController, Decision, TokenBucket
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.serve.chaos import (
    ChaosConfig,
    ChaosResult,
    format_result,
    run_chaos,
)
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    QueryRequest,
    QueryResponse,
    STATUSES,
    http_status_for,
)
from repro.serve.retry import (
    BackoffPolicy,
    RETRYABLE_KINDS,
    is_retryable,
    strip_transient_faults,
)
from repro.serve.scheduler import PriorityGate, RequestScheduler
from repro.serve.server import (
    BREAKER_FAULT_KINDS,
    ServeApp,
    ServerHandle,
    serve_forever,
)
from repro.serve.supervisor import (
    EngineContext,
    ForkWorkerPool,
    ThreadWorkerPool,
    execute_payload,
    make_pool,
)

__all__ = [
    "AdmissionController",
    "BackoffPolicy",
    "BREAKER_FAULT_KINDS",
    "ChaosConfig",
    "ChaosResult",
    "CircuitBreaker",
    "CLOSED",
    "Decision",
    "EngineContext",
    "ForkWorkerPool",
    "HALF_OPEN",
    "OPEN",
    "PriorityGate",
    "QueryRequest",
    "QueryResponse",
    "RequestScheduler",
    "RETRYABLE_KINDS",
    "STATUSES",
    "ServeApp",
    "ServeClient",
    "ServerHandle",
    "ThreadWorkerPool",
    "TokenBucket",
    "execute_payload",
    "format_result",
    "http_status_for",
    "is_retryable",
    "make_pool",
    "run_chaos",
    "serve_forever",
    "strip_transient_faults",
]
