"""Chaos harness: overload + fault injection against a live server.

Drives a running serve endpoint through the acceptance scenario of the
serving layer, end to end over real HTTP:

1. **Calibration** -- clean serial requests measure per-query service
   time, from which sustainable capacity (workers / service_time) is
   estimated.
2. **Open-loop overload** -- a mixed-priority request stream paced at
   ``load_multiplier`` x capacity (open loop: the generator does *not*
   slow down when the server does, which is what makes overload real).
   A fraction of requests carry one-shot injected faults; one request
   carries a ``crash`` fault that kills a pool worker mid-burst.
3. **Breaker choreography** -- a burst of persistently-faulted requests
   from a dedicated bad tenant exhausts retries until that tenant's
   circuit breaker opens; after the cooldown a clean probe recloses it.
4. **Gate evaluation** -- invariants checked against the collected
   responses and the server's ``/statz``:

   * every request got a structured response, none ``Unhandled``;
   * every high-priority (rank-0) request was *answered* (possibly
     degraded), none shed;
   * high-priority p99 latency within its SLO deadline;
   * the worker crash was detected and the victim request re-queued;
   * the bad tenant's breaker opened and reclosed;
   * shed / degrade / retry / crash events all visible in ``/statz``.

Deterministic apart from true scheduling: all randomness (priority mix,
fault placement) comes from a seeded RNG.
"""

from __future__ import annotations

import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from random import Random
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime.slo import SLO_CLASSES
from repro.serve.client import ServeClient
from repro.serve.protocol import QueryRequest, QueryResponse

#: Priority mix of the overload stream (must sum to 1).
PRIORITY_MIX = (("gold", 0.2), ("silver", 0.4), ("bronze", 0.4))


@dataclass
class ChaosConfig:
    """Knobs of one chaos run."""

    queries: List[str]
    k: int = 3
    load_multiplier: float = 2.0
    n_requests: int = 120
    fault_rate: float = 0.05
    inject_crash: bool = True
    tenants: Tuple[str, ...] = ("acme", "globex", "initech")
    bad_tenant: str = "hexley"
    bad_burst: int = 8
    breaker_cooldown_s: float = 1.0
    calibration_requests: int = 6
    min_rate: float = 4.0
    max_rate: float = 200.0
    sender_threads: int = 16
    seed: int = 0


@dataclass
class ChaosOutcome:
    """One request/response pair with harness-side timing."""

    request: QueryRequest
    response: Optional[QueryResponse]
    latency_ms: float
    send_error: Optional[str] = None


@dataclass
class ChaosResult:
    """Everything a gate (CI or test) needs to pass judgement."""

    passed: bool
    failures: List[str]
    capacity_rps: float
    offered_rps: float
    outcomes: List[ChaosOutcome] = field(default_factory=list)
    breaker_outcomes: List[ChaosOutcome] = field(default_factory=list)
    statz: Dict[str, Any] = field(default_factory=dict)

    def summary(self) -> Dict[str, Any]:
        """JSON-safe digest (the benchmark embeds this)."""
        by_status: Dict[str, int] = {}
        for outcome in self.outcomes:
            status = (outcome.response.status if outcome.response
                      else "send_error")
            by_status[status] = by_status.get(status, 0) + 1
        return {
            "passed": self.passed,
            "failures": self.failures,
            "capacity_rps": round(self.capacity_rps, 2),
            "offered_rps": round(self.offered_rps, 2),
            "responses_by_status": by_status,
        }


def _percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (matches repro.obs.Histogram)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, int(round(p / 100.0 * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


def _one_shot_fault() -> Dict[str, Any]:
    return {"site": "scorer.node_score", "at_call": 0, "mode": "raise",
            "repeat": False}


def _persistent_fault() -> Dict[str, Any]:
    return {"site": "scorer.node_score", "at_call": 0, "mode": "raise",
            "repeat": True}


def _crash_fault() -> Dict[str, Any]:
    return {"site": "scorer.node_score", "at_call": 0, "mode": "crash",
            "repeat": False}


class _LoadGenerator:
    """Open-loop paced sender: one client per worker thread."""

    def __init__(self, host: str, port: int, threads: int) -> None:
        self.host = host
        self.port = port
        self._local = threading.local()
        self._executor = ThreadPoolExecutor(
            max_workers=threads, thread_name_prefix="chaos-sender")

    def _client(self) -> ServeClient:
        client = getattr(self._local, "client", None)
        if client is None:
            client = ServeClient(self.host, self.port)
            self._local.client = client
        return client

    def _send(self, request: QueryRequest) -> ChaosOutcome:
        start = time.monotonic()
        try:
            response = self._client().search(request)
        except Exception as exc:  # transport-level failure, not a response
            return ChaosOutcome(request, None,
                                (time.monotonic() - start) * 1000.0,
                                send_error=f"{type(exc).__name__}: {exc}")
        return ChaosOutcome(request, response,
                            (time.monotonic() - start) * 1000.0)

    def run_paced(self, requests: List[QueryRequest],
                  rate_rps: float) -> List[ChaosOutcome]:
        """Fire *requests* at fixed inter-arrival 1/rate, open loop."""
        t0 = time.monotonic()
        futures = []
        for i, request in enumerate(requests):
            target = t0 + i / rate_rps
            delay = target - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            futures.append(self._executor.submit(self._send, request))
        return [f.result() for f in futures]

    def run_serial(self, requests: List[QueryRequest]) -> List[ChaosOutcome]:
        return [self._send(r) for r in requests]

    def close(self) -> None:
        self._executor.shutdown(wait=True)


def _build_stream(config: ChaosConfig, rng: Random) -> List[QueryRequest]:
    """The mixed-priority, partially-faulted overload stream."""
    requests: List[QueryRequest] = []
    names = [name for name, _ in PRIORITY_MIX]
    weights = [w for _, w in PRIORITY_MIX]
    crash_slot = (rng.randrange(config.n_requests // 4,
                                max(config.n_requests // 2,
                                    config.n_requests // 4 + 1))
                  if config.inject_crash else -1)
    for i in range(config.n_requests):
        priority = rng.choices(names, weights=weights)[0]
        data: Dict[str, Any] = {
            "query": rng.choice(config.queries),
            "k": config.k,
            "request_id": f"chaos-{i}",
            "tenant": rng.choice(list(config.tenants)),
            "priority": priority,
        }
        if i == crash_slot:
            # The forced worker kill rides a gold request: retries and
            # the crash re-queue must still answer it.
            data["priority"] = "gold"
            data["fault_specs"] = [_crash_fault()]
        elif rng.random() < config.fault_rate and priority != "bronze":
            # One-shot faults only on classes with a retry budget --
            # bronze (max_retries=0) would turn them into honest errors.
            data["fault_specs"] = [_one_shot_fault()]
        requests.append(QueryRequest.from_dict(data))
    return requests


def _breaker_choreography(gen: _LoadGenerator, config: ChaosConfig) \
        -> List[ChaosOutcome]:
    """Open the bad tenant's breaker, wait out the cooldown, reclose it."""
    # Exact mode matters here: anytime budgets *absorb* substrate
    # faults into degraded answers (that is the serving story working),
    # so only strict requests let a persistent fault escape as the
    # error stream that trips the breaker.
    burst = [QueryRequest.from_dict({
        "query": config.queries[0], "k": config.k,
        "request_id": f"bad-{i}", "tenant": config.bad_tenant,
        "priority": "silver", "mode": "exact",
        "fault_specs": [_persistent_fault()],
    }) for i in range(config.bad_burst)]
    outcomes = gen.run_serial(burst)
    time.sleep(config.breaker_cooldown_s + 0.25)
    probe = QueryRequest.from_dict({
        "query": config.queries[0], "k": config.k,
        "request_id": "bad-probe", "tenant": config.bad_tenant,
        "priority": "silver",
    })
    outcomes.extend(gen.run_serial([probe]))
    return outcomes


def _evaluate(config: ChaosConfig, outcomes: List[ChaosOutcome],
              breaker_outcomes: List[ChaosOutcome],
              statz: Dict[str, Any]) -> List[str]:
    """The acceptance gates; returns human-readable failures."""
    failures: List[str] = []

    transport = [o for o in outcomes if o.response is None]
    if transport:
        failures.append(
            f"{len(transport)} request(s) died in transport, e.g. "
            f"{transport[0].send_error}")

    unhandled = [o for o in outcomes if o.response is not None
                 and o.response.error_kind == "Unhandled"]
    if unhandled:
        failures.append(
            f"{len(unhandled)} unhandled exception(s) crossed the wire, "
            f"e.g. {unhandled[0].response.error}")

    gold = [o for o in outcomes if o.request.priority == "gold"
            and o.response is not None]
    gold_not_answered = [o for o in gold if not o.response.answered]
    if gold_not_answered:
        sample = gold_not_answered[0].response
        failures.append(
            f"{len(gold_not_answered)}/{len(gold)} gold request(s) not "
            f"answered (e.g. status={sample.status} "
            f"reason={sample.reason} error_kind={sample.error_kind})")

    gold_lat = [o.latency_ms for o in gold if o.response.answered]
    gold_deadline = SLO_CLASSES["gold"].deadline_ms
    p99 = _percentile(gold_lat, 99.0)
    if p99 > gold_deadline:
        failures.append(
            f"gold p99 {p99:.1f} ms exceeds SLO deadline "
            f"{gold_deadline:.0f} ms")

    pool = statz.get("pool", {})
    if config.inject_crash:
        if pool.get("worker_crashes", 0) < 1:
            failures.append("forced worker crash was not detected")
        if pool.get("requeued", 0) < 1:
            failures.append("crashed worker's task was not re-queued")
        if pool.get("alive", 0) < pool.get("size", 0):
            failures.append(
                f"pool not replenished: {pool.get('alive')}/"
                f"{pool.get('size')} workers alive")

    breakers = statz.get("breakers", {})
    bad = breakers.get(config.bad_tenant, {})
    if bad.get("opened_total", 0) < 1:
        failures.append(
            f"breaker for tenant {config.bad_tenant!r} never opened")
    if bad.get("reclosed_total", 0) < 1:
        failures.append(
            f"breaker for tenant {config.bad_tenant!r} never reclosed")
    probe = breaker_outcomes[-1] if breaker_outcomes else None
    if probe is None or probe.response is None or \
            not probe.response.answered:
        failures.append("post-cooldown clean probe was not answered")

    counters = statz.get("metrics", {}).get("counters", {})

    def _count(name: str) -> int:
        return int(counters.get(name, 0))

    if _count("serve_retries_total") < 1:
        failures.append("no retries visible in /statz "
                        "(serve_retries_total == 0)")
    shed_visible = _count("serve_shed_total") + \
        _count("serve_breaker_rejects_total")
    degraded = [o for o in outcomes if o.response is not None
                and o.response.status == "degraded"]
    if not degraded and shed_visible == 0:
        failures.append("overload left no trace: nothing degraded and "
                        "nothing shed at "
                        f"{config.load_multiplier}x capacity")
    return failures


def run_chaos(host: str, port: int, config: ChaosConfig) -> ChaosResult:
    """Run the full chaos scenario against a live endpoint."""
    if not config.queries:
        raise ValueError("chaos needs at least one query")
    rng = Random(config.seed)
    gen = _LoadGenerator(host, port, threads=config.sender_threads)
    try:
        probe_client = ServeClient(host, port)
        health = probe_client.healthz()
        workers = max(1, int(health.get("workers_alive", 1)))

        calibration = gen.run_serial([
            QueryRequest.from_dict({
                "query": rng.choice(config.queries), "k": config.k,
                "request_id": f"cal-{i}", "tenant": "calibration",
                "priority": "gold",
            }) for i in range(config.calibration_requests)
        ])
        service_ms = [o.latency_ms for o in calibration
                      if o.response is not None and o.response.answered]
        mean_ms = (sum(service_ms) / len(service_ms)) if service_ms else 50.0
        capacity = workers / max(mean_ms / 1000.0, 1e-3)
        rate = min(max(capacity * config.load_multiplier, config.min_rate),
                   config.max_rate)

        stream = _build_stream(config, rng)
        outcomes = gen.run_paced(stream, rate)
        breaker_outcomes = _breaker_choreography(gen, config)
        statz = probe_client.statz()
        probe_client.close()

        failures = _evaluate(config, outcomes, breaker_outcomes, statz)
        return ChaosResult(
            passed=not failures,
            failures=failures,
            capacity_rps=capacity,
            offered_rps=rate,
            outcomes=outcomes,
            breaker_outcomes=breaker_outcomes,
            statz=statz,
        )
    finally:
        gen.close()


def format_result(result: ChaosResult) -> str:
    """Human-readable run report (CLI + CI log output)."""
    lines = [f"chaos: capacity ~{result.capacity_rps:.1f} rps, "
             f"offered {result.offered_rps:.1f} rps"]
    lines.append("responses: " + json.dumps(
        result.summary()["responses_by_status"], sort_keys=True))
    if result.passed:
        lines.append("chaos: PASS (all gates held)")
    else:
        lines.append(f"chaos: FAIL ({len(result.failures)} gate(s) broken)")
        for failure in result.failures:
            lines.append(f"  - {failure}")
    return "\n".join(lines)
