"""Retry policy: exponential backoff with deterministic jitter.

The scheduler retries *fault-class* failures only (injected faults,
detected corruption, worker crashes) -- a degraded-but-valid anytime
answer is a success, and overload rejections must surface to the
client, not burn more capacity.  Jitter decorrelates retry storms;
the RNG is injectable so tests see fixed delays.

Transient-vs-persistent semantics: one-shot faults (``repeat=False``)
model transient substrate failures, so a retry (or a crash re-queue)
strips them and probes a clean path.  ``repeat=True`` specs model a
persistently broken dependency and survive the strip -- such requests
exhaust their retries and feed the circuit breaker.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List

#: Error kinds (exception class names crossing the worker boundary)
#: that a retry may plausibly fix.
RETRYABLE_KINDS = frozenset((
    "InjectedFaultError",
    "DataCorruptionError",
    "SnapshotCorruptionError",
    "WorkerCrashError",
    "GraphError",
    "ScoringError",
    "Timeout",
))


@dataclass
class BackoffPolicy:
    """Exponential backoff: ``base * factor**attempt``, capped, jittered.

    ``jitter`` is the fraction of the delay randomly *subtracted*
    (decorrelation without ever exceeding the cap); 0 disables it.
    """

    base_ms: float = 10.0
    factor: float = 2.0
    max_ms: float = 1000.0
    jitter: float = 0.5
    rng: random.Random = field(default_factory=lambda: random.Random(0))

    def delay_ms(self, attempt: int) -> float:
        """Backoff before retry number *attempt* (0-based)."""
        delay = min(self.base_ms * (self.factor ** attempt), self.max_ms)
        if self.jitter > 0.0:
            delay *= 1.0 - self.jitter * self.rng.random()
        return delay


def is_retryable(error_kind: str) -> bool:
    return error_kind in RETRYABLE_KINDS


def strip_transient_faults(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Copy *payload* for a retry/re-queue, dropping transient faults.

    Drops one-shot specs (``repeat=False``) and *every* crash spec --
    a crash re-queue that re-crashes the survivor would let one poisoned
    request serially kill the whole pool.  Persistent (``repeat=True``,
    non-crash) specs are kept.
    """
    specs: List[Dict[str, Any]] = payload.get("fault_specs") or []
    kept = [s for s in specs
            if s.get("repeat", False) and s.get("mode") != "crash"]
    out = dict(payload)
    if kept:
        out["fault_specs"] = kept
    else:
        out.pop("fault_specs", None)
    return out
