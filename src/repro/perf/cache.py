"""Cross-query candidate cache: memoized scored candidate lists.

Template-generated workloads repeat the same query-node constraints across
hundreds of queries, yet the seed engine re-scores every (descriptor,
node) pair per query -- online scoring dominates per-query latency
(Section V-A).  Wang et al. ("Semantic Guided and Response Times Bounded
Top-k Similarity Search over Knowledge Graphs") obtain their response-time
bounds precisely by reusing semantic indexes across queries; this module
is that lever for our engine.

:class:`CandidateCache` is an LRU keyed on::

    (kind, graph.uid, scoring-config fingerprint,
     canonical descriptor key, limit)

so entries are never shared between graphs (uid) or scoring
configurations (fingerprint) and distinguish candidate cutoffs (limit).
The descriptor key is the interned, pre-hashed
:class:`repro.similarity.descriptors.DescriptorKey` -- it canonicalizes
``(name, type, keywords)``, so equal constraints from different query
objects hit the same entry.

Graph *mutation* no longer appears in the key at all.  Each entry
remembers the structural version it was computed at plus a dependency
footprint ``(candidate node ids, expanded query tokens, query type)``;
on lookup the cache diffs that version against the graph's delta
journal (:meth:`KnowledgeGraph.delta_since`) and the entry **survives**
unless the merged delta could have changed it:

* ``stats_changed`` -- corpus statistics moved (node count backs every
  IDF; max degree backs the degree prior), all scores are suspect;
* a touched node intersects the entry's candidate footprint (its score
  or membership may have changed) -- the footprint is the *shortlist*
  set, a superset of the scored list, so nodes hovering below the score
  threshold are covered;
* a touched token intersects the entry's expanded query tokens (the
  shortlist could gain/lose members through the inverted index);
* a touched type descends into the entry's query type (subtype-closure
  membership could change).

Survivals and invalidations are counted in :class:`CacheStats` and as
``dynamic.survivals`` / ``dynamic.invalidations`` obs counters.  An
entry whose version has fallen off the bounded journal is invalidated
conservatively.  Entries cached through the legacy ``get(key)`` /
``put(key, value)`` API (no graph, no deps) are never validated --
callers of that form bake their own freshness into the key.

Correctness contract (asserted by the parity suite):

* a cache hit returns a defensive copy of a list computed by the exact
  uncached code path -- byte-identical scores and ordering;
* **budgeted runs bypass the scored-candidate entries** (reads and
  writes): budget charging is part of the observable result under
  deadlines, and a partial, anytime-degraded candidate list must never
  poison the cache.  Unscored *shortlist* entries are still served --
  building a shortlist charges nothing and is budget-independent, and a
  hit returns the identical set object, preserving the iteration order
  that anytime truncation depends on;
* a detached cache (``scorer.candidate_cache is None``, the default) is
  a single ``is None`` test on the hot path -- the seed behavior.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs

#: Estimated bytes per cached ``(node_id, score)`` entry: the pair tuple
#: plus a boxed int and float.  An estimate, not an exact account -- it
#: exists so ``max_bytes`` bounds memory within a small constant factor.
ENTRY_BYTES = sys.getsizeof((0, 0.0)) + 28 + 24


@dataclass
class CacheStats:
    """Hit/miss/eviction counters plus byte-size accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    entries: int = 0
    bytes: int = 0
    #: Entries revalidated against the delta journal and kept (the
    #: mutation since their computation provably could not affect them).
    survivals: int = 0
    #: Entries dropped by journal validation (counted as misses too).
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions, "inserts": self.inserts,
            "entries": self.entries, "bytes": self.bytes,
            "survivals": self.survivals,
            "invalidations": self.invalidations,
        }

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Accumulate *other* into self (cross-worker aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.inserts += other.inserts
        self.entries += other.entries
        self.bytes += other.bytes
        self.survivals += other.survivals
        self.invalidations += other.invalidations
        return self

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CacheStats":
        return cls(**data)

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hit(s) / {self.misses} miss(es) "
            f"({self.hit_rate:.0%}), {self.entries} entrie(s), "
            f"~{self.bytes / 1024:.1f} KiB, {self.evictions} eviction(s)"
        )


class _Entry:
    """A cached payload plus what it depends on.

    ``version`` is the graph structural version the payload was computed
    at (bumped forward on every successful revalidation so later diffs
    stay short).  ``deps`` is ``(nodes, tokens, qtype)``: the candidate
    node footprint, the synonym/abbreviation-expanded query tokens, and
    the query type whose subtype closure fed the shortlist.  ``None``
    for either means "unknown -- never try to prove survival".
    """

    __slots__ = ("payload", "version", "deps")

    def __init__(self, payload, version: Optional[int],
                 deps: Optional[Tuple]) -> None:
        self.payload = payload
        self.version = version
        self.deps = deps


class CandidateCache:
    """LRU cache of scored candidate lists, shared across queries.

    Args:
        max_entries: entry-count bound (least recently used evicts first).
        max_bytes: approximate byte bound on cached payloads.

    Attach to a scorer with :func:`attach_cache` (or by assigning
    ``scorer.candidate_cache``); ``repro.core.candidates`` consults it on
    every unbudgeted call.  One instance may serve many scorers and
    graphs -- keys carry graph uid and config fingerprint.
    """

    def __init__(self, max_entries: int = 4096,
                 max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._data: "OrderedDict[Tuple, _Entry]" = OrderedDict()

    # ------------------------------------------------------------------
    def candidate_key(self, scorer, qnode, limit: Optional[int]) -> Tuple:
        """Cache key for a ``node_candidates(scorer, qnode, limit)`` call.

        The trailing element is the attached semantic tier's
        configuration token (``None`` for a detached scorer): candidate
        unions computed with ANN augmentation engaged must never serve a
        tier-less scorer, nor one with a different tier configuration.
        """
        tier = getattr(scorer, "semantic_tier", None)
        return ("cand", scorer.graph.uid, scorer.fingerprint,
                qnode.descriptor.cache_key, limit,
                tier.cache_token if tier is not None else None)

    def shortlist_key(self, scorer, qnode) -> Tuple:
        """Cache key for a ``shortlist(scorer, qnode)`` call."""
        return ("short", scorer.graph.uid, scorer.fingerprint,
                qnode.descriptor.cache_key, None)

    # ------------------------------------------------------------------
    def get(self, key: Tuple, graph=None):
        """Cached payload for *key* (marks it most recently used).

        When *graph* is supplied and the entry carries a version, the
        entry is first revalidated against the graph's delta journal;
        an entry the deltas may have affected is dropped and counted as
        an invalidation + miss.
        """
        entry = self._data.get(key)
        if entry is None:
            self.stats.misses += 1
            obs.count("cache.misses")
            return None
        if (graph is not None and entry.version is not None
                and entry.version != graph.version
                and not self._revalidate(entry, graph)):
            self._drop(key, entry)
            self.stats.invalidations += 1
            obs.count("dynamic.invalidations")
            self.stats.misses += 1
            obs.count("cache.misses")
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        obs.count("cache.hits")
        return entry.payload

    def _revalidate(self, entry: _Entry, graph) -> bool:
        """True iff *entry* provably survives every delta since its version."""
        summary = graph.delta_since(entry.version)
        if summary is None:  # journal trimmed past the entry: can't prove
            return False
        if not summary.empty:
            if summary.stats_changed or entry.deps is None:
                return False
            dep_nodes, dep_tokens, dep_type = entry.deps
            if not summary.nodes.isdisjoint(dep_nodes):
                return False
            if not summary.tokens.isdisjoint(dep_tokens):
                return False
            if summary.types and self._types_touch(summary.types, dep_type):
                return False
        entry.version = graph.version
        self.stats.survivals += 1
        obs.count("dynamic.survivals")
        return True

    @staticmethod
    def _types_touch(touched_types, dep_type: str) -> bool:
        if not dep_type:
            return False
        if dep_type in touched_types:
            return True
        # Local import: the similarity package pulls in the graph layer;
        # importing it at module scope from here would tangle package
        # initialization.  This branch only runs when a delta actually
        # touched type membership.
        from repro.similarity import ontology

        return any(ontology.is_subtype(t, dep_type) for t in touched_types)

    def put(self, key: Tuple, value, graph=None, deps: Optional[Tuple] = None
            ) -> None:
        """Insert an (immutable) payload, evicting LRU entries as needed.

        Args:
            graph: the graph *value* was computed from; stamps the entry
                with the current structural version for journal
                revalidation.  Omitted (legacy callers): the entry is
                served as-is forever, freshness is the caller's problem.
            deps: ``(candidate node ids, expanded query tokens, query
                type)`` dependency footprint for fine-grained survival.
        """
        old = self._data.pop(key, None)
        if old is not None:
            self.stats.bytes -= self._payload_bytes(old.payload)
            self.stats.entries -= 1
        version = graph.version if graph is not None else None
        self._data[key] = _Entry(value, version, deps)
        self.stats.inserts += 1
        obs.count("cache.inserts")
        self.stats.entries += 1
        self.stats.bytes += self._payload_bytes(value)
        while self._data and (
            self.stats.entries > self.max_entries
            or self.stats.bytes > self.max_bytes
        ):
            _k, evicted = self._data.popitem(last=False)
            self.stats.evictions += 1
            obs.count("cache.evictions")
            self.stats.entries -= 1
            self.stats.bytes -= self._payload_bytes(evicted.payload)

    def _drop(self, key: Tuple, entry: _Entry) -> None:
        """Remove a journal-invalidated entry (not an LRU eviction)."""
        del self._data[key]
        self.stats.entries -= 1
        self.stats.bytes -= self._payload_bytes(entry.payload)

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        self._data.clear()
        self.stats.entries = 0
        self.stats.bytes = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    @staticmethod
    def _payload_bytes(value) -> int:
        return sys.getsizeof(value) + len(value) * ENTRY_BYTES

    def __repr__(self) -> str:
        return (
            f"CandidateCache(entries={self.stats.entries}/{self.max_entries}, "
            f"bytes~{self.stats.bytes}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )


def attach_cache(scorer, cache: Optional[CandidateCache] = None,
                 **kwargs) -> CandidateCache:
    """Attach a :class:`CandidateCache` to *scorer* and return it.

    Builds a fresh cache (forwarding **kwargs**) when none is supplied.
    """
    if cache is None:
        cache = CandidateCache(**kwargs)
    scorer.candidate_cache = cache
    return cache


def detach_cache(scorer) -> Optional[CandidateCache]:
    """Detach and return *scorer*'s cache (restores the seed code path)."""
    cache = scorer.candidate_cache
    scorer.candidate_cache = None
    return cache
