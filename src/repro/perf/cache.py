"""Cross-query candidate cache: memoized scored candidate lists.

Template-generated workloads repeat the same query-node constraints across
hundreds of queries, yet the seed engine re-scores every (descriptor,
node) pair per query -- online scoring dominates per-query latency
(Section V-A).  Wang et al. ("Semantic Guided and Response Times Bounded
Top-k Similarity Search over Knowledge Graphs") obtain their response-time
bounds precisely by reusing semantic indexes across queries; this module
is that lever for our engine.

:class:`CandidateCache` is an LRU keyed on::

    (kind, graph.uid, graph.version, scoring-config fingerprint,
     canonical descriptor key, limit)

so entries are invalidated by graph mutation (version bump), never shared
between graphs (uid) or between scoring configurations (fingerprint), and
distinguish candidate cutoffs (limit).  The descriptor key is the
interned, pre-hashed :class:`repro.similarity.descriptors.DescriptorKey`
-- it canonicalizes ``(name, type, keywords)``, so equal constraints from
different query objects hit the same entry.

Correctness contract (asserted by the parity suite):

* a cache hit returns a defensive copy of a list computed by the exact
  uncached code path -- byte-identical scores and ordering;
* **budgeted runs bypass the scored-candidate entries** (reads and
  writes): budget charging is part of the observable result under
  deadlines, and a partial, anytime-degraded candidate list must never
  poison the cache.  Unscored *shortlist* entries are still served --
  building a shortlist charges nothing and is budget-independent, and a
  hit returns the identical set object, preserving the iteration order
  that anytime truncation depends on;
* a detached cache (``scorer.candidate_cache is None``, the default) is
  a single ``is None`` test on the hot path -- the seed behavior.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import obs

#: Estimated bytes per cached ``(node_id, score)`` entry: the pair tuple
#: plus a boxed int and float.  An estimate, not an exact account -- it
#: exists so ``max_bytes`` bounds memory within a small constant factor.
ENTRY_BYTES = sys.getsizeof((0, 0.0)) + 28 + 24


@dataclass
class CacheStats:
    """Hit/miss/eviction counters plus byte-size accounting."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    inserts: int = 0
    entries: int = 0
    bytes: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits, "misses": self.misses,
            "evictions": self.evictions, "inserts": self.inserts,
            "entries": self.entries, "bytes": self.bytes,
        }

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Accumulate *other* into self (cross-worker aggregation)."""
        self.hits += other.hits
        self.misses += other.misses
        self.evictions += other.evictions
        self.inserts += other.inserts
        self.entries += other.entries
        self.bytes += other.bytes
        return self

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "CacheStats":
        return cls(**data)

    def summary(self) -> str:
        return (
            f"cache: {self.hits} hit(s) / {self.misses} miss(es) "
            f"({self.hit_rate:.0%}), {self.entries} entrie(s), "
            f"~{self.bytes / 1024:.1f} KiB, {self.evictions} eviction(s)"
        )


class CandidateCache:
    """LRU cache of scored candidate lists, shared across queries.

    Args:
        max_entries: entry-count bound (least recently used evicts first).
        max_bytes: approximate byte bound on cached payloads.

    Attach to a scorer with :func:`attach_cache` (or by assigning
    ``scorer.candidate_cache``); ``repro.core.candidates`` consults it on
    every unbudgeted call.  One instance may serve many scorers and
    graphs -- keys carry graph uid/version and config fingerprint.
    """

    def __init__(self, max_entries: int = 4096,
                 max_bytes: int = 64 * 1024 * 1024) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.stats = CacheStats()
        self._data: "OrderedDict[Tuple, Tuple]" = OrderedDict()

    # ------------------------------------------------------------------
    def candidate_key(self, scorer, qnode, limit: Optional[int]) -> Tuple:
        """Cache key for a ``node_candidates(scorer, qnode, limit)`` call."""
        graph = scorer.graph
        return ("cand", graph.uid, graph.version, scorer.fingerprint,
                qnode.descriptor.cache_key, limit)

    def shortlist_key(self, scorer, qnode) -> Tuple:
        """Cache key for a ``shortlist(scorer, qnode)`` call."""
        graph = scorer.graph
        return ("short", graph.uid, graph.version, scorer.fingerprint,
                qnode.descriptor.cache_key, None)

    # ------------------------------------------------------------------
    def get(self, key: Tuple):
        """Cached payload for *key* (marks it most recently used)."""
        value = self._data.get(key)
        if value is None:
            self.stats.misses += 1
            obs.count("cache.misses")
            return None
        self._data.move_to_end(key)
        self.stats.hits += 1
        obs.count("cache.hits")
        return value

    def put(self, key: Tuple, value: Tuple) -> None:
        """Insert an (immutable) payload, evicting LRU entries as needed."""
        old = self._data.pop(key, None)
        if old is not None:
            self.stats.bytes -= self._payload_bytes(old)
            self.stats.entries -= 1
        self._data[key] = value
        self.stats.inserts += 1
        obs.count("cache.inserts")
        self.stats.entries += 1
        self.stats.bytes += self._payload_bytes(value)
        while self._data and (
            self.stats.entries > self.max_entries
            or self.stats.bytes > self.max_bytes
        ):
            _k, evicted = self._data.popitem(last=False)
            self.stats.evictions += 1
            obs.count("cache.evictions")
            self.stats.entries -= 1
            self.stats.bytes -= self._payload_bytes(evicted)

    def clear(self) -> None:
        """Drop all entries (counters keep accumulating)."""
        self._data.clear()
        self.stats.entries = 0
        self.stats.bytes = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: object) -> bool:
        return key in self._data

    @staticmethod
    def _payload_bytes(value: Tuple) -> int:
        return sys.getsizeof(value) + len(value) * ENTRY_BYTES

    def __repr__(self) -> str:
        return (
            f"CandidateCache(entries={self.stats.entries}/{self.max_entries}, "
            f"bytes~{self.stats.bytes}, hits={self.stats.hits}, "
            f"misses={self.stats.misses})"
        )


def attach_cache(scorer, cache: Optional[CandidateCache] = None,
                 **kwargs) -> CandidateCache:
    """Attach a :class:`CandidateCache` to *scorer* and return it.

    Builds a fresh cache (forwarding **kwargs**) when none is supplied.
    """
    if cache is None:
        cache = CandidateCache(**kwargs)
    scorer.candidate_cache = cache
    return cache


def detach_cache(scorer) -> Optional[CandidateCache]:
    """Detach and return *scorer*'s cache (restores the seed code path)."""
    cache = scorer.candidate_cache
    scorer.candidate_cache = None
    return cache
